#include "obs/slo.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/flight_recorder.hpp"

namespace gv {

SloMonitor::SloMonitor(const TimeSeriesRing& ring, MetricsRegistry& registry)
    : ring_(&ring), registry_(&registry) {}

void SloMonitor::add(SloObjective objective) {
  GV_CHECK(!objective.name.empty(), "SLO objective needs a name");
  GV_CHECK(objective.target < 1.0, "SLO target must leave an error budget");
  GV_CHECK(objective.short_windows >= 1 && objective.long_windows >= 1,
           "SLO window spans must cover at least one window");
  objectives_.push_back(std::move(objective));
}

void SloMonitor::set_alert_handler(AlertHandler handler) {
  handler_ = std::move(handler);
}

double SloMonitor::burn_over(const SloObjective& o, std::size_t n) const {
  const std::size_t have = ring_->windows();
  const std::size_t take = std::min(n, have);
  std::uint64_t bad = 0, total = 0;
  for (std::size_t age = 0; age < take; ++age) {
    const TimeSeriesRing::Window w = ring_->window(age);
    switch (o.kind) {
      case SloObjective::Kind::kCounterRatio: {
        const auto bit = w.counters.find(o.bad_series);
        if (bit != w.counters.end()) bad += bit->second.delta;
        const auto tit = w.counters.find(o.total_series);
        if (tit != w.counters.end()) total += tit->second.delta;
        break;
      }
      case SloObjective::Kind::kHistogramThreshold: {
        const auto hit = w.histograms.find(o.histogram_series);
        if (hit == w.histograms.end()) break;
        total += hit->second.count_delta;
        for (const auto& [upper, c] : hit->second.bucket_deltas) {
          if (upper > o.threshold) bad += c;
        }
        break;
      }
    }
  }
  // An empty span (no traffic, or an empty ring) burns nothing: absence of
  // evidence never pages.
  if (total == 0) return 0.0;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  return bad_fraction / (1.0 - o.target);
}

std::vector<SloEvaluation> SloMonitor::evaluate() {
  std::vector<SloEvaluation> out;
  out.reserve(objectives_.size());
  for (const auto& o : objectives_) {
    SloEvaluation ev;
    ev.name = o.name;
    ev.long_burn = burn_over(o, o.long_windows);
    ev.short_burn = burn_over(o, o.short_windows);
    ev.alert = ev.long_burn >= o.burn_threshold &&
               ev.short_burn >= o.burn_threshold;
    ++evaluations_;
    registry_->counter("slo.evaluations").add(1);
    registry_->gauge("slo.burn_rate", {{"slo", o.name}, {"span", "long"}})
        .set(ev.long_burn);
    registry_->gauge("slo.burn_rate", {{"slo", o.name}, {"span", "short"}})
        .set(ev.short_burn);
    if (ev.alert) {
      ++alerts_;
      registry_->counter("slo.alerts", MetricLabels::of("slo", o.name)).add(1);
      if (handler_) {
        handler_(o, ev);
      } else {
        // A paging objective with no custom handler leaves a postmortem
        // bundle (no-op when the recorder is not armed).
        FlightRecorder::instance().trip(
            FaultKind::kSloPage, -1,
            "SLO '" + o.name + "' burn long=" + std::to_string(ev.long_burn) +
                " short=" + std::to_string(ev.short_burn));
      }
    }
    out.push_back(std::move(ev));
  }
  return out;
}

}  // namespace gv
