// VaultScope TraceRecorder: fleet-wide dual-clock span tracing.
//
// Every interesting interval in the serving stack — queue wait, batch
// flush, per-shard ecall, per-layer halo exchange, cold-path frontier
// recursion, migration fences, promotion phases — is wrapped in a TraceSpan
// that records TWO clocks:
//
//   wall nanoseconds     what the host actually spent (steady_clock);
//   modeled SGX seconds  what the simulated hardware would have spent,
//                        taken from the CostMeter delta the instrumented
//                        code already computes (ecall transitions,
//                        MEE-encrypted copies, EPC paging) — the clock the
//                        paper's Fig. 6 breakdown is denominated in.
//
// Spans land in per-thread ring buffers (one uncontended mutex each, so a
// concurrent exporter stays TSan-clean without slowing the owner thread)
// and export to Chrome/Perfetto trace-event JSON: load trace_serve.json in
// https://ui.perfetto.dev or chrome://tracing and a single cold query's
// cross-shard cascade is visually inspectable, with both clocks attached to
// every slice.
//
// Cost discipline: when disabled (the default), constructing a TraceSpan is
// ONE relaxed atomic load and destruction is one branch — the serving hot
// path pays nothing measurable.  When enabled, emission happens OUTSIDE any
// cost-model stopwatch window wherever possible, so tracing observes the
// modeled clocks instead of inflating them; bench/obs_overhead.cpp pins the
// residual wall cost below 3% of modeled throughput.
//
// Runtime switch: TraceRecorder::instance().set_enabled(bool), seeded from
// GNNVAULT_TRACE=1 at first use.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/query_trace.hpp"
#include "common/annotations.hpp"

namespace gv {

/// One completed span.  Names and arg keys must be pointers to storage that
/// outlives every export (string literals, or runtime-built names interned
/// via TraceRecorder::intern — e.g. an enclave's name, whose owner may be
/// destroyed before the trace is written) — the ring stores the pointer,
/// not a copy, to keep emission allocation-free.
struct TraceEvent {
  // Must leave headroom past a span's explicit args for the two slots the
  // pipeline appends implicitly: the QueryScope-attached "query_id" (span
  // destructor) and the per-ring "tid" (snapshot()).  If a full event drops
  // the tid slot, the exporter collapses that event onto tid 0 and
  // concurrent threads' slices appear to partially overlap, which the
  // nesting validator rejects.
  static constexpr int kMaxArgs = 6;
  struct Arg {
    const char* key = nullptr;
    double value = 0.0;
  };

  const char* category = "";
  const char* name = "";
  std::uint64_t start_ns = 0;  // since the recorder's epoch
  std::uint64_t dur_ns = 0;
  /// Modeled SGX seconds attributed to this span (0 when not applicable).
  double modeled_s = 0.0;
  /// Exported as a Chrome ASYNC event pair (ph "b"/"e") instead of a
  /// complete slice.  For intervals that legitimately overlap the thread's
  /// synchronous slice stack — e.g. a queue wait measured from an enqueue
  /// timestamp taken on another thread — which would otherwise violate the
  /// well-nested invariant the slice validator enforces.
  bool async = false;
  Arg args[kMaxArgs];
  int num_args = 0;

  void add_arg(const char* key, double value) {
    if (num_args < kMaxArgs) args[num_args++] = {key, value};
  }
};

class TraceRecorder {
 public:
  /// Events retained per thread; older events are overwritten (dropped()
  /// counts the overwrites) so a long-running server bounds its memory.
  static constexpr std::size_t kRingCapacity = std::size_t{1} << 16;

  static TraceRecorder& instance();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Emit a complete span with caller-supplied timestamps (e.g. a queue
  /// wait measured from an enqueue timestamp taken before the span type
  /// existed on that thread).  No-op when disabled.
  void emit(const char* category, const char* name,
            std::chrono::steady_clock::time_point start,
            std::chrono::steady_clock::time_point end, double modeled_s = 0.0,
            std::initializer_list<TraceEvent::Arg> args = {});

  /// Like emit(), but exported as an async event pair (see
  /// TraceEvent::async): the interval may overlap the emitting thread's
  /// synchronous slices without breaking their nesting.
  void emit_async(const char* category, const char* name,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end,
                  double modeled_s = 0.0,
                  std::initializer_list<TraceEvent::Arg> args = {});

  /// Nanoseconds since the recorder's epoch (process-stable steady clock).
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }
  std::uint64_t to_ns(std::chrono::steady_clock::time_point tp) const {
    const auto d =
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_).count();
    return d > 0 ? static_cast<std::uint64_t>(d) : 0;
  }

  /// Append a finished event to the calling thread's ring (enabled() is NOT
  /// rechecked: the caller sampled it at span start).
  void append(const TraceEvent& ev);

  /// Copy out every thread's retained events, sorted by start time.
  std::vector<TraceEvent> snapshot() const;
  /// Events overwritten by ring wrap-around since the last clear().
  std::uint64_t dropped() const { return dropped_.load(); }
  /// Discard all retained events (drop counter included).
  void clear();

  /// Number of threads that have emitted at least one span.
  std::size_t num_threads() const;

  /// Intern a dynamic string (e.g. an enclave name used as a span category)
  /// into recorder-lifetime storage and return a stable pointer.  Events
  /// store raw const char*, so any name built at runtime MUST be interned —
  /// pointing at a member string dangles once its owner is destroyed, and
  /// exports routinely outlive the servers that emitted the spans.  Call
  /// once per name (construction time), not per span: it takes a lock.
  const char* intern(const std::string& s);

  /// Chrome trace-event JSON ({"traceEvents":[...]}), loadable by Perfetto
  /// and chrome://tracing.  Slices carry ts/dur in microseconds plus args
  /// {wall_ns, modeled_sgx_s, ...}.
  std::string to_chrome_json() const;
  void write_chrome_json(const std::string& path) const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mu GV_LOCK_RANK(gv::lockrank::kTelemetry);
    std::vector<TraceEvent> ring;  // grows to kRingCapacity, then wraps
    std::uint64_t appended = 0;    // lifetime count; write head = % capacity
    std::uint32_t tid = 0;
  };

  TraceRecorder();
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex registry_mu_ GV_LOCK_RANK(gv::lockrank::kTelemetry);
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint64_t> dropped_{0};
  /// Interned names: node-based so c_str() pointers stay stable, and never
  /// cleared — clear() drops events, but an interned pointer may still be
  /// held by a live emitter (an Enclave's cached category).
  std::set<std::string> interned_;
};

/// RAII span emitter.  Construction samples the enabled flag once; every
/// other member is a no-op on a disabled span.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name)
      : active_(TraceRecorder::instance().enabled()) {
    if (active_) {
      ev_.category = category;
      ev_.name = name;
      start_ = std::chrono::steady_clock::now();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a numeric attribute (shard index, layer, bytes, rows...).
  void arg(const char* key, double value) {
    if (active_) ev_.add_arg(key, value);
  }
  /// Attach the span's modeled-SGX-seconds delta (the second clock).
  void modeled_seconds(double s) {
    if (active_) ev_.modeled_s = s;
  }
  /// Suppress emission (e.g. a probe that turned out to be a no-op).
  void cancel() { active_ = false; }
  bool active() const { return active_; }

  ~TraceSpan() {
    if (!active_) return;
    // QueryLens: any span closing under a query scope is part of that
    // query's causal chain — attach the id unless the caller already did.
    if (const std::uint64_t qid = current_query_id(); qid != 0) {
      bool tagged = false;
      for (int i = 0; i < ev_.num_args; ++i) {
        if (std::strcmp(ev_.args[i].key, "query_id") == 0) tagged = true;
      }
      if (!tagged) ev_.add_arg("query_id", static_cast<double>(qid));
    }
    auto& rec = TraceRecorder::instance();
    ev_.start_ns = rec.to_ns(start_);
    const std::uint64_t end_ns = rec.now_ns();
    ev_.dur_ns = end_ns > ev_.start_ns ? end_ns - ev_.start_ns : 0;
    rec.append(ev_);
  }

 private:
  bool active_;
  std::chrono::steady_clock::time_point start_;
  TraceEvent ev_{};
};

/// Validate that `json` parses as a Chrome trace document and that, per
/// thread, every pair of slices either nests or is disjoint (well-nested
/// timestamps — the invariant RAII emission guarantees and exporters rely
/// on).  Returns true on success; on failure fills `error` (when non-null)
/// with a human-readable reason.
bool validate_trace_json(const std::string& json, std::string* error = nullptr);

}  // namespace gv
