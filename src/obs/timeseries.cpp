#include "obs/timeseries.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace gv {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

TimeSeriesRing::TimeSeriesRing(MetricsRegistry& registry, TimeSeriesConfig cfg)
    : registry_(&registry), cfg_(cfg) {
  GV_CHECK(cfg_.interval_seconds > 0.0,
           "time-series window interval must be positive");
  GV_CHECK(cfg_.capacity > 0, "time-series ring needs capacity >= 1");
}

std::string TimeSeriesRing::series_key(const std::string& name,
                                       const MetricLabels& labels) {
  return name + "|" + labels.canonical();
}

double TimeSeriesRing::HistogramWindow::percentile(double p) const {
  if (count_delta == 0 || bucket_deltas.empty()) return 0.0;
  const double rank = p * static_cast<double>(count_delta - 1) + 0.5;
  std::uint64_t seen = 0;
  for (const auto& [upper, c] : bucket_deltas) {
    seen += c;
    if (static_cast<double>(seen) >= rank) {
      return upper <= Histogram::kMinValue ? 0.0 : upper;
    }
  }
  return bucket_deltas.back().first;
}

void TimeSeriesRing::sample(double now_seconds) {
  const RegistrySample cur = registry_->sample();
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  if (!started_) {
    // Baseline only: counters/histograms diff against this snapshot, and
    // gauge observation starts with the NEXT sample — folding the opening
    // reading here would charge windows with pre-window state (usually a
    // default-constructed 0).
    started_ = true;
    cur_start_ = now_seconds;
    baseline_ = cur;
    return;
  }
  // This observation happened during the currently open window, so fold it
  // BEFORE closing any boundary the clock has crossed: a sample landing
  // exactly on (or past) a boundary describes the window it closes.
  for (const auto& g : cur.gauges) {
    auto& p = gauge_partial_[g.name + "|" + g.labels];
    if (p.samples == 0) {
      p.last = p.min = p.max = g.value;
    } else {
      p.last = g.value;
      p.min = std::min(p.min, g.value);
      p.max = std::max(p.max, g.value);
    }
    ++p.samples;
  }
  // Close every boundary the clock has crossed.  The first closed window
  // absorbs the full delta since the baseline; any further windows the
  // clock skipped over close empty (zero deltas, carried-over gauges) —
  // a quiet period reads as quiet, not as one aliased burst.
  while (now_seconds >= cur_start_ + cfg_.interval_seconds) {
    close_window_locked(cur_start_ + cfg_.interval_seconds, cur);
    baseline_ = cur;
    gauge_partial_.clear();
    cur_start_ += cfg_.interval_seconds;
  }
}

void TimeSeriesRing::close_window_locked(double end_seconds,
                                         const RegistrySample& cur) {
  Window w;
  w.start_seconds = cur_start_;
  w.end_seconds = end_seconds;

  std::map<std::string, std::uint64_t> base_counters;
  for (const auto& c : baseline_.counters) {
    base_counters[c.name + "|" + c.labels] = c.value;
  }
  for (const auto& c : cur.counters) {
    const std::string key = c.name + "|" + c.labels;
    const auto it = base_counters.find(key);
    const std::uint64_t base = it != base_counters.end() ? it->second : 0;
    CounterWindow cw;
    // Reset-aware: a counter below its baseline restarted from zero (e.g.
    // MetricsRegistry::reset() between samples) — its whole current value
    // is this window's delta, never a wrapped negative.
    cw.delta = c.value >= base ? c.value - base : c.value;
    cw.rate = static_cast<double>(cw.delta) / cfg_.interval_seconds;
    cw.last = c.value;
    w.counters.emplace(key, cw);
  }

  for (const auto& g : cur.gauges) {
    const std::string key = g.name + "|" + g.labels;
    GaugeWindow gw;
    const auto it = gauge_partial_.find(key);
    if (it != gauge_partial_.end()) {
      gw.last = it->second.last;
      gw.min = it->second.min;
      gw.max = it->second.max;
      gw.samples = it->second.samples;
    } else {
      gw.last = gw.min = gw.max = g.value;
      gw.samples = 0;
    }
    w.gauges.emplace(key, gw);
  }

  std::map<std::string, const Histogram::Snapshot*> base_hists;
  for (const auto& h : baseline_.histograms) {
    base_hists[h.name + "|" + h.labels] = &h.snap;
  }
  for (const auto& h : cur.histograms) {
    const std::string key = h.name + "|" + h.labels;
    HistogramWindow hw;
    const auto it = base_hists.find(key);
    const Histogram::Snapshot* base = it != base_hists.end() ? it->second : nullptr;
    const bool reset = base != nullptr && h.snap.count < base->count;
    if (base == nullptr || reset) {
      hw.count_delta = h.snap.count;
      hw.sum_delta = h.snap.sum;
      hw.bucket_deltas = h.snap.buckets;
    } else {
      hw.count_delta = h.snap.count - base->count;
      hw.sum_delta = h.snap.sum - base->sum;
      std::map<double, std::uint64_t> base_buckets(base->buckets.begin(),
                                                   base->buckets.end());
      for (const auto& [upper, c] : h.snap.buckets) {
        const auto bit = base_buckets.find(upper);
        const std::uint64_t bc = bit != base_buckets.end() ? bit->second : 0;
        if (c > bc) hw.bucket_deltas.emplace_back(upper, c - bc);
      }
    }
    w.histograms.emplace(key, std::move(hw));
  }

  ring_.push_back(std::move(w));
  while (ring_.size() > cfg_.capacity) ring_.pop_front();
}

std::size_t TimeSeriesRing::windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  return ring_.size();
}

TimeSeriesRing::Window TimeSeriesRing::window(std::size_t age) const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  GV_CHECK(age < ring_.size(), "time-series window age out of range");
  return ring_[ring_.size() - 1 - age];
}

double TimeSeriesRing::rate(const std::string& name, const MetricLabels& labels,
                            std::size_t age) const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  if (age >= ring_.size()) return 0.0;
  const auto& w = ring_[ring_.size() - 1 - age];
  const auto it = w.counters.find(series_key(name, labels));
  return it != w.counters.end() ? it->second.rate : 0.0;
}

std::uint64_t TimeSeriesRing::delta(const std::string& name,
                                    const MetricLabels& labels,
                                    std::size_t age) const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  if (age >= ring_.size()) return 0;
  const auto& w = ring_[ring_.size() - 1 - age];
  const auto it = w.counters.find(series_key(name, labels));
  return it != w.counters.end() ? it->second.delta : 0;
}

std::uint64_t TimeSeriesRing::delta_over(const std::string& name,
                                         const MetricLabels& labels,
                                         std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  const std::string key = series_key(name, labels);
  std::uint64_t sum = 0;
  const std::size_t take = std::min(n, ring_.size());
  for (std::size_t i = 0; i < take; ++i) {
    const auto& w = ring_[ring_.size() - 1 - i];
    const auto it = w.counters.find(key);
    if (it != w.counters.end()) sum += it->second.delta;
  }
  return sum;
}

std::string TimeSeriesRing::to_json(std::size_t max_windows) const {
  std::lock_guard<std::mutex> lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  std::string out = "{\"interval_seconds\": ";
  append_number(out, cfg_.interval_seconds);
  out += ", \"windows\": [";
  const std::size_t take = std::min(max_windows, ring_.size());
  for (std::size_t i = ring_.size() - take; i < ring_.size(); ++i) {
    const auto& w = ring_[i];
    if (i != ring_.size() - take) out += ", ";
    out += "{\"start_s\": ";
    append_number(out, w.start_seconds);
    out += ", \"end_s\": ";
    append_number(out, w.end_seconds);
    out += ", \"counters\": {";
    bool first = true;
    for (const auto& [key, cw] : w.counters) {
      if (!first) out += ", ";
      first = false;
      out.push_back('"');
      append_escaped(out, key);
      out += "\": {\"delta\": " + std::to_string(cw.delta) + ", \"rate\": ";
      append_number(out, cw.rate);
      out += "}";
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto& [key, gw] : w.gauges) {
      if (!first) out += ", ";
      first = false;
      out.push_back('"');
      append_escaped(out, key);
      out += "\": {\"last\": ";
      append_number(out, gw.last);
      out += ", \"min\": ";
      append_number(out, gw.min);
      out += ", \"max\": ";
      append_number(out, gw.max);
      out += "}";
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const auto& [key, hw] : w.histograms) {
      if (!first) out += ", ";
      first = false;
      out.push_back('"');
      append_escaped(out, key);
      out += "\": {\"count\": " + std::to_string(hw.count_delta) +
             ", \"sum\": ";
      append_number(out, hw.sum_delta);
      out += ", \"p99\": ";
      append_number(out, hw.percentile(0.99));
      out += "}";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace gv
