// QueryLens SloMonitor: declarative service-level objectives evaluated as
// multi-window burn rates over a TimeSeriesRing.
//
// An objective is either a counter ratio (bad events / total events: failed
// batches per batch, stale-label serves per query) or a histogram threshold
// (fraction of a latency histogram's window recordings above a bound: p99
// warm-lookup modeled seconds).  Each evaluation computes the bad fraction
// over a LONG and a SHORT trailing window span and divides by the error
// budget (1 - target) — the classic SRE burn rate, where burn 1.0 spends
// the budget exactly at the objective's horizon.  An alert fires only when
// BOTH windows burn at or above the threshold (>=, inclusive — pinned by
// tests): the long window proves the problem is real, the short window
// proves it is still happening.
//
// Every evaluation increments `slo.evaluations` and publishes
// `slo.burn_rate{slo=,span=long|short}` gauges; an alert increments
// `slo.alerts{slo=}` and invokes the registered handler — or, when none is
// set, trips the FlightRecorder (kSloPage) so a paging objective leaves a
// postmortem bundle with no extra wiring.  Empty windows (no total events,
// or an empty ring) burn 0 and never alert.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace gv {

struct SloObjective {
  std::string name;

  enum class Kind {
    /// bad_series / total_series counter deltas.
    kCounterRatio,
    /// Fraction of histogram_series window recordings above `threshold`.
    kHistogramThreshold,
  };
  Kind kind = Kind::kCounterRatio;

  /// TimeSeriesRing::series_key(...) of the counters (kCounterRatio).
  std::string bad_series;
  std::string total_series;

  /// series_key of the histogram + the "bad above this" bound
  /// (kHistogramThreshold).
  std::string histogram_series;
  double threshold = 0.0;

  /// Success-ratio objective; the error budget is 1 - target.
  double target = 0.999;
  /// Alert when both window spans burn at or above this (inclusive).
  double burn_threshold = 1.0;
  /// Trailing closed-window counts of the two spans.
  std::size_t short_windows = 1;
  std::size_t long_windows = 6;
};

struct SloEvaluation {
  std::string name;
  double long_burn = 0.0;
  double short_burn = 0.0;
  bool alert = false;
};

class SloMonitor {
 public:
  using AlertHandler =
      std::function<void(const SloObjective&, const SloEvaluation&)>;

  SloMonitor(const TimeSeriesRing& ring, MetricsRegistry& registry);

  void add(SloObjective objective);
  std::size_t objectives() const { return objectives_.size(); }

  /// Replaces the default alert action (FlightRecorder kSloPage trip).
  void set_alert_handler(AlertHandler handler);

  /// Evaluate every objective against the ring's current closed windows.
  std::vector<SloEvaluation> evaluate();

  std::uint64_t evaluations() const { return evaluations_; }
  std::uint64_t alerts() const { return alerts_; }

 private:
  double burn_over(const SloObjective& o, std::size_t n) const;

  const TimeSeriesRing* ring_;
  MetricsRegistry* registry_;
  std::vector<SloObjective> objectives_;
  AlertHandler handler_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t alerts_ = 0;
};

}  // namespace gv
