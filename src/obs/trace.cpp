#include "obs/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string_view>

#include "common/env.hpp"
#include "common/error.hpp"

namespace gv {

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {
  enabled_.store(env_int("GNNVAULT_TRACE", 0) != 0, std::memory_order_relaxed);
}

TraceRecorder& TraceRecorder::instance() {
  // Leaked on purpose: worker threads may emit spans during static
  // destruction of other objects; the recorder must outlive them all.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer) {
    buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(registry_mu_);
    GV_RANK_SCOPE(lockrank::kTelemetry);
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void TraceRecorder::append(const TraceEvent& ev) {
  ThreadBuffer& buf = local_buffer();
  // The buffer's mutex is only ever contended by a snapshotting exporter;
  // for the owning thread this is an uncontended lock (tens of ns).
  std::lock_guard<std::mutex> lock(buf.mu);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  if (buf.ring.size() < kRingCapacity) {
    buf.ring.push_back(ev);
  } else {
    buf.ring[buf.appended % kRingCapacity] = ev;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ++buf.appended;
}

void TraceRecorder::emit(const char* category, const char* name,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end,
                         double modeled_s,
                         std::initializer_list<TraceEvent::Arg> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.category = category;
  ev.name = name;
  ev.start_ns = to_ns(start);
  const std::uint64_t end_ns = to_ns(end);
  ev.dur_ns = end_ns > ev.start_ns ? end_ns - ev.start_ns : 0;
  ev.modeled_s = modeled_s;
  for (const auto& a : args) ev.add_arg(a.key, a.value);
  append(ev);
}

void TraceRecorder::emit_async(const char* category, const char* name,
                               std::chrono::steady_clock::time_point start,
                               std::chrono::steady_clock::time_point end,
                               double modeled_s,
                               std::initializer_list<TraceEvent::Arg> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.category = category;
  ev.name = name;
  ev.async = true;
  ev.start_ns = to_ns(start);
  const std::uint64_t end_ns = to_ns(end);
  ev.dur_ns = end_ns > ev.start_ns ? end_ns - ev.start_ns : 0;
  ev.modeled_s = modeled_s;
  for (const auto& a : args) ev.add_arg(a.key, a.value);
  append(ev);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    GV_RANK_SCOPE(lockrank::kTelemetry);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    GV_RANK_SCOPE(lockrank::kTelemetry);
    // Oldest-first: after a wrap the head of the ring is the write cursor.
    const std::size_t n = buf->ring.size();
    const std::size_t head = buf->appended >= kRingCapacity
                                 ? buf->appended % kRingCapacity
                                 : 0;
    for (std::size_t i = 0; i < n; ++i) {
      TraceEvent ev = buf->ring[(head + i) % n];
      // Thread id rides in a spare arg slot so snapshot() consumers (and
      // the JSON exporter) know which ring each event came from.
      ev.add_arg("tid", static_cast<double>(buf->tid));
      out.push_back(ev);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                     : a.dur_ns > b.dur_ns;
                   });
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> b(buf->mu);
    GV_RANK_SCOPE(lockrank::kTelemetry);
    buf->ring.clear();
    buf->appended = 0;
  }
  dropped_.store(0);
}

std::size_t TraceRecorder::num_threads() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  return buffers_.size();
}

const char* TraceRecorder::intern(const std::string& s) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  return interned_.insert(s).first->c_str();
}

namespace {

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string TraceRecorder::to_chrome_json() const {
  const auto events = snapshot();
  std::string out;
  out.reserve(events.size() * 160 + 256);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  out +=
      "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"gnnvault\"}}";
  std::uint64_t async_id = 0;
  for (const auto& ev : events) {
    // The exporter filed the source thread id in the last arg slot.
    double tid = 0.0;
    int nargs = ev.num_args;
    if (nargs > 0 && ev.args[nargs - 1].key != nullptr &&
        std::string_view(ev.args[nargs - 1].key) == "tid") {
      tid = ev.args[nargs - 1].value;
      --nargs;
    }
    char head[192];
    if (ev.async) {
      // Async begin: intervals like queue waits overlap the thread's slice
      // stack, so they get a "b"/"e" pair (own Perfetto track, exempt from
      // the slice-nesting invariant) instead of a complete "X" slice.
      std::snprintf(head, sizeof(head),
                    ", {\"ph\": \"b\", \"pid\": 1, \"tid\": %.0f, "
                    "\"id\": %llu, \"ts\": %.3f, ",
                    tid, static_cast<unsigned long long>(async_id),
                    ev.start_ns / 1e3);
    } else {
      std::snprintf(head, sizeof(head),
                    ", {\"ph\": \"X\", \"pid\": 1, \"tid\": %.0f, \"ts\": %.3f, "
                    "\"dur\": %.3f, ",
                    tid, ev.start_ns / 1e3, ev.dur_ns / 1e3);
    }
    out += head;
    out += "\"cat\": \"";
    append_json_escaped(out, ev.category);
    out += "\", \"name\": \"";
    append_json_escaped(out, ev.name);
    out += "\", \"args\": {\"wall_ns\": ";
    append_double(out, static_cast<double>(ev.dur_ns));
    out += ", \"modeled_sgx_s\": ";
    append_double(out, ev.modeled_s);
    for (int i = 0; i < nargs; ++i) {
      out += ", \"";
      append_json_escaped(out, ev.args[i].key);
      out += "\": ";
      append_double(out, ev.args[i].value);
    }
    out += "}}";
    if (ev.async) {
      std::snprintf(head, sizeof(head),
                    ", {\"ph\": \"e\", \"pid\": 1, \"tid\": %.0f, "
                    "\"id\": %llu, \"ts\": %.3f, ",
                    tid, static_cast<unsigned long long>(async_id),
                    (ev.start_ns + ev.dur_ns) / 1e3);
      out += head;
      out += "\"cat\": \"";
      append_json_escaped(out, ev.category);
      out += "\", \"name\": \"";
      append_json_escaped(out, ev.name);
      out += "\", \"args\": {}}";
      ++async_id;
    }
  }
  out += "]}\n";
  return out;
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  GV_CHECK(f.good(), "cannot open trace output file: " + path);
  f << to_chrome_json();
  GV_CHECK(f.good(), "failed writing trace output file: " + path);
}

// --- Trace JSON validation (parser + nesting check). -------------------------
//
// A deliberately small recursive-descent JSON reader: the golden-file test
// and the CI nesting check need "does this parse, and do the slices nest",
// not a general-purpose DOM.

namespace {

struct JsonCursor {
  const char* p;
  const char* end;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty()) {
      err = what + " at offset " +
            std::to_string(static_cast<std::size_t>(p - start));
    }
    return false;
  }
  const char* start = nullptr;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
};

struct SliceEvent {
  double tid = 0.0;
  double ts = 0.0;
  double dur = 0.0;
  std::string name;
};

struct TraceDoc {
  std::vector<SliceEvent> slices;
  bool saw_trace_events = false;
};

bool parse_value(JsonCursor& c, TraceDoc& doc, int depth, bool in_trace_events,
                 SliceEvent* current);

bool parse_string(JsonCursor& c, std::string* out) {
  if (!c.consume('"')) return false;
  std::string s;
  while (c.p < c.end && *c.p != '"') {
    if (*c.p == '\\') {
      ++c.p;
      if (c.p >= c.end) return c.fail("truncated escape");
      switch (*c.p) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u':
          if (c.end - c.p < 5) return c.fail("truncated \\u escape");
          c.p += 4;  // code point value is irrelevant for validation
          s.push_back('?');
          break;
        default: return c.fail("bad escape");
      }
      ++c.p;
    } else {
      s.push_back(*c.p++);
    }
  }
  if (c.p >= c.end) return c.fail("unterminated string");
  ++c.p;  // closing quote
  if (out != nullptr) *out = std::move(s);
  return true;
}

bool parse_number(JsonCursor& c, double* out) {
  c.skip_ws();
  char* after = nullptr;
  const double v = std::strtod(c.p, &after);
  if (after == c.p) return c.fail("expected number");
  c.p = after;
  if (out != nullptr) *out = v;
  return true;
}

bool parse_object(JsonCursor& c, TraceDoc& doc, int depth, bool in_trace_events) {
  if (!c.consume('{')) return false;
  SliceEvent ev;
  std::string ph;
  if (c.peek('}')) {
    ++c.p;
    return true;
  }
  for (;;) {
    std::string key;
    if (!parse_string(c, &key)) return false;
    if (!c.consume(':')) return false;
    c.skip_ws();
    const bool top_level = depth == 0;
    if (top_level && key == "traceEvents") {
      doc.saw_trace_events = true;
      if (!c.peek('[')) return c.fail("traceEvents must be an array");
      if (!parse_value(c, doc, depth + 1, /*in_trace_events=*/true, nullptr)) {
        return false;
      }
    } else if (in_trace_events && key == "ph") {
      if (!parse_string(c, &ph)) return false;
    } else if (in_trace_events && key == "name") {
      if (!parse_string(c, &ev.name)) return false;
    } else if (in_trace_events && key == "tid") {
      if (!parse_number(c, &ev.tid)) return false;
    } else if (in_trace_events && key == "ts") {
      if (!parse_number(c, &ev.ts)) return false;
    } else if (in_trace_events && key == "dur") {
      if (!parse_number(c, &ev.dur)) return false;
    } else {
      if (!parse_value(c, doc, depth + 1, /*in_trace_events=*/false, nullptr)) {
        return false;
      }
    }
    if (c.peek(',')) {
      ++c.p;
      continue;
    }
    break;
  }
  if (!c.consume('}')) return false;
  if (in_trace_events && ph == "X") doc.slices.push_back(std::move(ev));
  return true;
}

bool parse_value(JsonCursor& c, TraceDoc& doc, int depth, bool in_trace_events,
                 SliceEvent*) {
  c.skip_ws();
  if (c.p >= c.end) return c.fail("unexpected end of input");
  switch (*c.p) {
    case '{':
      return parse_object(c, doc, depth, in_trace_events);
    case '[': {
      ++c.p;
      if (c.peek(']')) {
        ++c.p;
        return true;
      }
      for (;;) {
        if (!parse_value(c, doc, depth + 1, in_trace_events, nullptr)) {
          return false;
        }
        if (c.peek(',')) {
          ++c.p;
          continue;
        }
        break;
      }
      return c.consume(']');
    }
    case '"':
      return parse_string(c, nullptr);
    case 't':
      if (c.end - c.p >= 4 && std::string_view(c.p, 4) == "true") {
        c.p += 4;
        return true;
      }
      return c.fail("bad literal");
    case 'f':
      if (c.end - c.p >= 5 && std::string_view(c.p, 5) == "false") {
        c.p += 5;
        return true;
      }
      return c.fail("bad literal");
    case 'n':
      if (c.end - c.p >= 4 && std::string_view(c.p, 4) == "null") {
        c.p += 4;
        return true;
      }
      return c.fail("bad literal");
    default:
      return parse_number(c, nullptr);
  }
}

}  // namespace

bool validate_trace_json(const std::string& json, std::string* error) {
  JsonCursor c{json.data(), json.data() + json.size(), {}};
  c.start = json.data();
  TraceDoc doc;
  if (!parse_value(c, doc, 0, false, nullptr)) {
    if (error != nullptr) *error = "JSON parse error: " + c.err;
    return false;
  }
  c.skip_ws();
  if (c.p != c.end) {
    if (error != nullptr) *error = "trailing garbage after JSON document";
    return false;
  }
  if (!doc.saw_trace_events) {
    if (error != nullptr) *error = "no traceEvents array";
    return false;
  }
  // Per-thread nesting: sorted by (ts asc, dur desc), every slice must lie
  // entirely inside the enclosing open slice or after it — a partial
  // overlap means a span outlived its parent, which RAII emission forbids.
  std::map<double, std::vector<const SliceEvent*>> by_tid;
  for (const auto& ev : doc.slices) by_tid[ev.tid].push_back(&ev);
  for (auto& [tid, evs] : by_tid) {
    std::sort(evs.begin(), evs.end(),
              [](const SliceEvent* a, const SliceEvent* b) {
                return a->ts != b->ts ? a->ts < b->ts : a->dur > b->dur;
              });
    std::vector<const SliceEvent*> stack;
    for (const SliceEvent* ev : evs) {
      while (!stack.empty() &&
             stack.back()->ts + stack.back()->dur <= ev->ts) {
        stack.pop_back();
      }
      if (!stack.empty() &&
          ev->ts + ev->dur > stack.back()->ts + stack.back()->dur + 1e-6) {
        if (error != nullptr) {
          *error = "slice '" + ev->name + "' (tid " + std::to_string(tid) +
                   ") partially overlaps enclosing slice '" +
                   stack.back()->name + "'";
        }
        return false;
      }
      stack.push_back(ev);
    }
  }
  return true;
}

}  // namespace gv
