#include "obs/profile_export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "obs/engine_probe.hpp"
#include "obs/metrics.hpp"
#include "obs/tenant_ledger.hpp"

namespace gv {

// --- Folded-stack export. ----------------------------------------------------

namespace {

/// "category/name" with the folded format's structural characters (';'
/// separates frames, ' ' separates stack from count) replaced.
std::string frame_name(const TraceEvent& ev) {
  std::string out;
  out.reserve(32);
  for (const char* p : {ev.category, ev.name}) {
    if (!out.empty()) out += '/';
    for (; p != nullptr && *p != '\0'; ++p) {
      const char c = *p;
      out += (c == ';' || c == ' ' || c == '\n' || c == '\t') ? '_' : c;
    }
  }
  return out.empty() ? std::string("unknown") : out;
}

std::uint32_t event_tid(const TraceEvent& ev) {
  for (int i = 0; i < ev.num_args; ++i) {
    if (std::strcmp(ev.args[i].key, "tid") == 0) {
      return static_cast<std::uint32_t>(ev.args[i].value);
    }
  }
  return 0;
}

struct OpenFrame {
  std::uint64_t end_ns = 0;
  std::uint64_t children_ns = 0;
  std::uint64_t dur_ns = 0;
  std::string stack;  // full ';'-joined path including this frame
};

void close_frame(std::map<std::string, std::uint64_t>& self_ns,
                 const OpenFrame& f) {
  const std::uint64_t self =
      f.dur_ns > f.children_ns ? f.dur_ns - f.children_ns : 0;
  if (self > 0) self_ns[f.stack] += self;
}

}  // namespace

std::string folded_profile(const std::vector<TraceEvent>& events) {
  // Bucket by emitting thread; snapshot() appended a "tid" arg per ring.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& ev : events) {
    if (ev.async) continue;  // overlaps the sync stack by design
    by_tid[event_tid(ev)].push_back(&ev);
  }

  std::map<std::string, std::uint64_t> self_ns;  // merged + sorted output
  for (auto& [tid, evs] : by_tid) {
    // Start ascending; ties broken longer-first so a parent precedes the
    // child that starts at the same instant.
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->start_ns != b->start_ns) {
                         return a->start_ns < b->start_ns;
                       }
                       return a->dur_ns > b->dur_ns;
                     });
    const std::string root = "tid_" + std::to_string(tid);
    std::vector<OpenFrame> stack;
    for (const TraceEvent* ev : evs) {
      // Close frames this event starts at or after.
      while (!stack.empty() && ev->start_ns >= stack.back().end_ns) {
        close_frame(self_ns, stack.back());
        stack.pop_back();
      }
      OpenFrame f;
      f.dur_ns = ev->dur_ns;
      f.end_ns = ev->start_ns + ev->dur_ns;
      if (!stack.empty()) {
        // Defensive clamp: a slightly-overhanging child (clock skew at ns
        // granularity) is trimmed to its parent rather than corrupting the
        // parent's self-time.
        if (f.end_ns > stack.back().end_ns) {
          f.end_ns = stack.back().end_ns;
          f.dur_ns = f.end_ns > ev->start_ns ? f.end_ns - ev->start_ns : 0;
        }
        stack.back().children_ns += f.dur_ns;
        f.stack = stack.back().stack + ";" + frame_name(*ev);
      } else {
        f.stack = root + ";" + frame_name(*ev);
      }
      stack.push_back(std::move(f));
    }
    while (!stack.empty()) {
      close_frame(self_ns, stack.back());
      stack.pop_back();
    }
  }

  std::string out;
  for (const auto& [stack, self] : self_ns) {
    out += stack;
    out += ' ';
    out += std::to_string(self);
    out += '\n';
  }
  return out;
}

std::string folded_profile_snapshot() {
  return folded_profile(TraceRecorder::instance().snapshot());
}

bool validate_folded(const std::string& folded, std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::size_t lines = 0;
  std::istringstream is(folded);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++lines;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      return fail("line " + std::to_string(lines) + ": no '<stack> <count>'");
    }
    const std::string stack = line.substr(0, space);
    const std::string count = line.substr(space + 1);
    for (char c : count) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return fail("line " + std::to_string(lines) + ": non-integer count");
      }
    }
    if (count == "0" || count.empty()) {
      return fail("line " + std::to_string(lines) + ": count must be > 0");
    }
    // Frames: non-empty, no spaces (guaranteed above by rfind), split on ';'.
    std::size_t start = 0;
    for (;;) {
      const std::size_t semi = stack.find(';', start);
      const std::string frame = stack.substr(
          start, semi == std::string::npos ? std::string::npos : semi - start);
      if (frame.empty()) {
        return fail("line " + std::to_string(lines) + ": empty frame");
      }
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
  }
  if (lines == 0) return fail("empty profile (recorder disabled?)");
  return true;
}

void write_folded(const std::string& path) {
  std::ofstream out(path);
  GV_CHECK(out.good(), "cannot open folded profile path");
  out << folded_profile_snapshot();
}

// --- Ops report. -------------------------------------------------------------

namespace {

std::string render_ops_report(const std::string& metrics,
                              const std::string& tenants,
                              const std::string& engines) {
  std::ostringstream os;
  os << "{\"schema\":\"gnnvault.ops_report.v1\",\"wall_ns\":"
     << TraceRecorder::instance().now_ns() << ",\"metrics\":" << metrics
     << ",\"tenants\":" << tenants << ",\"engines\":" << engines << "}";
  return os.str();
}

}  // namespace

std::string ops_report() {
  EngineProbe::pull_all();
  const std::string tenants = TenantLedger::global().to_json();
  return render_ops_report(MetricsRegistry::global().to_json(), tenants,
                           EngineProbe::engines_json(/*live=*/false));
}

std::string ops_report_cached() {
  return render_ops_report(MetricsRegistry::global().to_json(),
                           TenantLedger::global().cached_json(),
                           EngineProbe::engines_json(/*live=*/false));
}

void write_ops_report(const std::string& path) {
  std::ofstream out(path);
  GV_CHECK(out.good(), "cannot open ops report path");
  out << ops_report();
}

// --- Ops-report validation. --------------------------------------------------
//
// Independent of the writers above (flight-recorder idiom): a fresh minimal
// JSON reader, so a writer bug cannot validate its own output.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

struct JsonParser {
  const std::string& s;
  std::size_t pos = 0;
  std::string error;

  explicit JsonParser(const std::string& text) : s(text) {}

  bool fail(const std::string& why) {
    error = why + " at byte " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos >= s.size() || s[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  static int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') {
        ++pos;
        if (pos >= s.size()) return fail("truncated escape");
        const char e = s[pos];
        if (e == 'u') {
          if (pos + 4 >= s.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 1; k <= 4; ++k) {
            const int d = hex_digit(s[pos + k]);
            if (d < 0) return fail("bad \\u escape");
            code = code * 16 + static_cast<unsigned>(d);
          }
          pos += 4;
          if (out != nullptr) {
            // UTF-8 encode the BMP code point (the writers only emit \u for
            // control characters, but decode the full range anyway).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
          }
        } else {
          char decoded;
          switch (e) {
            case '"': decoded = '"'; break;
            case '\\': decoded = '\\'; break;
            case '/': decoded = '/'; break;
            case 'b': decoded = '\b'; break;
            case 'f': decoded = '\f'; break;
            case 'n': decoded = '\n'; break;
            case 'r': decoded = '\r'; break;
            case 't': decoded = '\t'; break;
            default: return fail("bad escape");
          }
          if (out != nullptr) out->push_back(decoded);
        }
      } else {
        if (out != nullptr) out->push_back(s[pos]);
      }
      ++pos;
    }
    if (pos >= s.size()) return fail("unterminated string");
    ++pos;
    return true;
  }

  bool parse_value(JsonValue* v) {
    skip_ws();
    if (pos >= s.size()) return fail("unexpected end of input");
    const char c = s[pos];
    if (c == '{') {
      ++pos;
      v->type = JsonValue::Type::kObject;
      skip_ws();
      if (pos < s.size() && s[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        std::string key;
        skip_ws();
        if (!parse_string(&key)) return false;
        if (!consume(':')) return false;
        JsonValue child;
        if (!parse_value(&child)) return false;
        v->object.emplace(std::move(key), std::move(child));
        skip_ws();
        if (pos < s.size() && s[pos] == ',') {
          ++pos;
          continue;
        }
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      v->type = JsonValue::Type::kArray;
      skip_ws();
      if (pos < s.size() && s[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        JsonValue child;
        if (!parse_value(&child)) return false;
        v->array.push_back(std::move(child));
        skip_ws();
        if (pos < s.size() && s[pos] == ',') {
          ++pos;
          continue;
        }
        return consume(']');
      }
    }
    if (c == '"') {
      v->type = JsonValue::Type::kString;
      return parse_string(&v->str);
    }
    if (s.compare(pos, 4, "true") == 0) {
      v->type = JsonValue::Type::kBool;
      v->boolean = true;
      pos += 4;
      return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
      v->type = JsonValue::Type::kBool;
      pos += 5;
      return true;
    }
    if (s.compare(pos, 4, "null") == 0) {
      v->type = JsonValue::Type::kNull;
      pos += 4;
      return true;
    }
    const std::size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' || s[pos] == '-' || s[pos] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s[pos]))) digits = true;
      ++pos;
    }
    if (!digits) return fail("invalid value");
    v->type = JsonValue::Type::kNumber;
    v->number = std::strtod(s.c_str() + start, nullptr);
    return true;
  }
};

bool report_error(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

const JsonValue* find_typed(const JsonValue& obj, const std::string& key,
                            JsonValue::Type type) {
  const auto it = obj.object.find(key);
  if (it == obj.object.end() || it->second.type != type) return nullptr;
  return &it->second;
}

}  // namespace

bool validate_ops_report(const std::string& json, std::string* error) {
  JsonParser p(json);
  JsonValue root;
  if (!p.parse_value(&root)) return report_error(error, p.error);
  p.skip_ws();
  if (p.pos != json.size()) {
    return report_error(error, "trailing bytes after the report document");
  }
  if (root.type != JsonValue::Type::kObject) {
    return report_error(error, "report root is not an object");
  }
  const JsonValue* schema =
      find_typed(root, "schema", JsonValue::Type::kString);
  if (schema == nullptr || schema->str != "gnnvault.ops_report.v1") {
    return report_error(error, "missing or unknown schema");
  }
  if (find_typed(root, "wall_ns", JsonValue::Type::kNumber) == nullptr) {
    return report_error(error, "wall_ns missing or not a number");
  }
  const JsonValue* metrics =
      find_typed(root, "metrics", JsonValue::Type::kObject);
  if (metrics == nullptr) {
    return report_error(error, "metrics missing or not an object");
  }
  for (const char* key : {"counters", "gauges", "histograms"}) {
    if (find_typed(*metrics, key, JsonValue::Type::kArray) == nullptr) {
      return report_error(error,
                          std::string("metrics.") + key + " missing");
    }
  }
  const JsonValue* tenants =
      find_typed(root, "tenants", JsonValue::Type::kObject);
  if (tenants == nullptr) {
    return report_error(error, "tenants missing or not an object");
  }
  const JsonValue* tschema =
      find_typed(*tenants, "schema", JsonValue::Type::kString);
  if (tschema == nullptr || tschema->str != "gnnvault.tenant_ledger.v1") {
    return report_error(error, "tenants.schema missing or unknown");
  }
  const JsonValue* rows =
      find_typed(*tenants, "tenants", JsonValue::Type::kArray);
  if (rows == nullptr) {
    return report_error(error, "tenants.tenants missing or not an array");
  }
  const JsonValue* fleet =
      find_typed(*tenants, "fleet", JsonValue::Type::kObject);
  if (fleet == nullptr) {
    return report_error(error, "tenants.fleet missing or not an object");
  }
  for (const JsonValue& row : rows->array) {
    if (row.type != JsonValue::Type::kObject ||
        find_typed(row, "tenant", JsonValue::Type::kString) == nullptr) {
      return report_error(error, "tenant row missing its name");
    }
    for (const char* key : {"modeled_seconds", "ecalls", "channel_bytes",
                            "epc_resident_bytes"}) {
      if (find_typed(row, key, JsonValue::Type::kNumber) == nullptr) {
        return report_error(error,
                            std::string("tenant row missing ") + key);
      }
    }
  }
  const JsonValue* engines =
      find_typed(root, "engines", JsonValue::Type::kArray);
  if (engines == nullptr) {
    return report_error(error, "engines missing or not an array");
  }
  for (const JsonValue& engine : engines->array) {
    if (engine.type != JsonValue::Type::kObject) {
      return report_error(error, "engine entry is not an object");
    }
    if (engine.object.empty()) continue;  // never-pulled placeholder
    for (const char* key : {"engine"}) {
      if (find_typed(engine, key, JsonValue::Type::kString) == nullptr) {
        return report_error(error, std::string("engine entry missing ") + key);
      }
    }
    for (const char* key : {"workers", "steal_hits", "steal_misses"}) {
      if (find_typed(engine, key, JsonValue::Type::kNumber) == nullptr) {
        return report_error(error, std::string("engine entry missing ") + key);
      }
    }
  }
  return true;
}

}  // namespace gv
