// EngineScope TenantLedger: per-tenant resource attribution for the
// multi-tenant vault fleet.
//
// VaultRegistry admits tenants and meters their EPC budget, but the COST a
// tenant imposes — modeled enclave seconds, ecalls, batches, cache work,
// cold-walk rows, attested-channel bytes (padding included) — was only
// visible fleet-wide.  The ledger closes that gap: every serving back end
// registers a usage provider keyed by its owner pointer (the FlightRecorder
// topology-provider idiom), the registry pushes each tenant's EPC-resident
// bytes as its books change, and snapshot() folds the lot into per-tenant
// rows plus an exact fleet total.
//
// Conservation invariant (tested): for every metered dimension,
//   sum over tenants == fleet total == sum over live back ends,
// because rows are produced by the same providers in one pass — the ledger
// never samples two diverging sources.
//
// Lock discipline: the ledger mutex ranks kTelemetry and is RELEASED around
// every provider call (providers read server state at kServerState and
// below, which ranks UNDER kTelemetry).  unregister() blocks until no call
// against that entry is in flight, so a provider's captured server can be
// destroyed right after it returns.  cached_json() touches only the ledger
// mutex — safe from FlightRecorder::trip() under control-plane locks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/thread_safety.hpp"

namespace gv {

class MetricsRegistry;

/// One tenant's metered usage.  Providers return the owning back end's
/// lifetime totals; the ledger sums rows that share a tenant name.
struct TenantUsage {
  double modeled_seconds = 0.0;   ///< modeled enclave compute attributed
  std::uint64_t ecalls = 0;       ///< enclave transitions
  std::uint64_t batches = 0;      ///< micro-batches flushed
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cold_queries = 0;
  std::uint64_t cold_frontier_rows = 0;  ///< cold-walk row work
  std::uint64_t channel_bytes = 0;        ///< attested-channel payload bytes
  std::uint64_t channel_padded_bytes = 0; ///< padding overhead included above
  std::uint64_t epc_resident_bytes = 0;   ///< pushed by VaultRegistry books

  TenantUsage& operator+=(const TenantUsage& o);
};

class TenantLedger {
 public:
  using Provider = std::function<TenantUsage()>;

  /// Process-wide ledger (parallel to MetricsRegistry::global()).
  static TenantLedger& global();

  TenantLedger() = default;
  TenantLedger(const TenantLedger&) = delete;
  TenantLedger& operator=(const TenantLedger&) = delete;

  /// Register `owner`'s usage provider for `tenant`.  One provider per
  /// owner; re-registering replaces.  Multiple owners may share a tenant
  /// name (their rows sum).
  void register_provider(const void* owner, std::string tenant, Provider fn);
  /// Remove `owner`'s provider, BLOCKING until any in-flight call against
  /// it has returned.  Call first in the owning back end's destructor.
  void unregister(const void* owner);

  /// Push a tenant's EPC-resident bytes (VaultRegistry books).  A tenant
  /// seen only through this push still gets a ledger row.
  void set_epc_bytes(const std::string& tenant, std::uint64_t bytes);
  /// Drop a pushed EPC row (tenant evicted).
  void clear_epc_bytes(const std::string& tenant);

  /// Live per-tenant rows, sorted by tenant name: calls every provider
  /// (outside the ledger lock), merges pushed EPC bytes, refreshes the
  /// cached JSON.  Must not be called while holding locks at or above
  /// kServerState.
  std::vector<std::pair<std::string, TenantUsage>> snapshot();

  /// Exact column-wise sum of snapshot() rows (same pass, same providers —
  /// the conservation test's fleet side).
  TenantUsage fleet_totals();

  /// {"schema":"gnnvault.tenant_ledger.v1","tenants":[...],"fleet":{...}}
  /// from a fresh snapshot().
  std::string to_json();
  /// Last to_json()/snapshot() result without touching any provider — leaf
  /// locks only, safe inside FlightRecorder::trip().  Empty-tenants JSON
  /// when nothing was ever snapshotted.
  std::string cached_json() const;

  /// snapshot() + export per-tenant gauges (tenant.*{tenant=X}) and fleet
  /// totals (fleet.*) into `reg`.
  void publish(MetricsRegistry& reg);

  /// Number of registered providers (tests).
  std::size_t num_providers() const;

 private:
  struct Entry {
    const void* owner = nullptr;
    std::string tenant;
    Provider fn;
    /// Number of snapshot() calls currently mid-provider against this
    /// entry (concurrent snapshots may pin the same entry); unregister()
    /// and re-registration wait for it to drain to zero.
    int pins = 0;
  };

  std::string render_json_locked(
      const std::vector<std::pair<std::string, TenantUsage>>& rows,
      const TenantUsage& fleet) GV_REQUIRES(mu_);

  mutable Mutex mu_ GV_LOCK_RANK(gv::lockrank::kTelemetry){
      gv::lockrank::kTelemetry};
  CondVar call_done_cv_;
  std::vector<std::unique_ptr<Entry>> entries_ GV_GUARDED_BY(mu_);
  std::map<std::string, std::uint64_t> epc_bytes_ GV_GUARDED_BY(mu_);
  std::string cached_ GV_GUARDED_BY(mu_);
};

}  // namespace gv
