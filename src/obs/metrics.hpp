// VaultScope MetricsRegistry: named counters, gauges, and log-bucketed
// histograms with labels.
//
// The fleet used to be observable only through one flat ServerMetrics
// struct; per-query ColdSubsetStats and per-channel byte audits were
// computed and thrown away, and the latency percentiles were produced by
// copying + sorting an 8192-double reservoir under the contended metrics
// mutex on every stats() poll.  The registry fixes both halves:
//
//   * instruments are NAMED and LABELED (`tenant`, `shard`, `channel_kind`,
//     `layer`, `platform`...), so the previously-discarded telemetry has a
//     place to accumulate and a JSON exporter to leave through;
//   * the Histogram is log-bucketed (geometric buckets, ~9% relative width)
//     with lock-free atomic recording and O(buckets) percentile
//     estimation — a snapshot never sorts anything and never blocks a
//     recording thread.
//
// Hot-path discipline: resolve an instrument ONCE (counter()/gauge()/
// histogram() take the registry mutex) and keep the reference; recording
// through the reference is a handful of relaxed/CAS atomics.  References
// stay valid for the registry's lifetime (node-based storage).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/thread_safety.hpp"

namespace gv {

/// Sorted (key, value) label set; canonicalized so {a=1,b=2} and {b=2,a=1}
/// resolve to the same instrument.
struct MetricLabels {
  std::vector<std::pair<std::string, std::string>> kv;

  MetricLabels() = default;
  MetricLabels(
      std::initializer_list<std::pair<std::string, std::string>> init);
  static MetricLabels of(std::string key, std::string value);

  /// Canonical "k=v,k2=v2" form used as the instrument map key.
  std::string canonical() const;
  bool empty() const { return kv.empty(); }
};

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed histogram: values land in geometric buckets with ratio
/// 2^(1/4) (~19% width, <=9.1% error to the bucket's geometric mean), which
/// spans [1e-9, ~5e12] in a fixed 300-slot array — nanoseconds to hours of
/// latency without configuration.  Values <= kMinValue (zeros: cache hits)
/// land in the underflow bucket and report as 0.
class Histogram {
 public:
  static constexpr double kMinValue = 1e-9;
  static constexpr int kBucketsPerDoubling = 4;
  static constexpr int kNumBuckets = 300;  // + underflow slot 0

  void record(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Per-bucket (upper_bound, count), underflow first; only populated
    /// buckets are included.
    std::vector<std::pair<double, std::uint64_t>> buckets;

    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
    /// O(buckets) percentile estimate: the geometric mean of the bucket the
    /// p-quantile falls in, clamped to the observed [min, max].
    double percentile(double p) const;
  };
  Snapshot snapshot() const;
  void reset();

  /// The bucket index `v` lands in (0 = underflow); exposed for tests.
  static int bucket_index(double v);
  /// Inclusive upper bound of bucket `i`.
  static double bucket_upper(int i);

 private:
  std::atomic<std::uint64_t> counts_[kNumBuckets + 1]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_min_{false};
};

/// Point-in-time copy of every instrument in a registry, with canonical
/// label strings — the enumeration surface TimeSeriesRing aggregates over
/// (instrument references alone cannot be enumerated without the lock).
struct RegistrySample {
  struct CounterSample {
    std::string name;
    std::string labels;  // MetricLabels::canonical()
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::string labels;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::string labels;
    Histogram::Snapshot snap;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class MetricsRegistry {
 public:
  /// Process-wide default registry (DriftTracker gauges, EPC headroom...).
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve-or-create.  Returned references live as long as the registry.
  Counter& counter(const std::string& name, const MetricLabels& labels = {});
  Gauge& gauge(const std::string& name, const MetricLabels& labels = {});
  Histogram& histogram(const std::string& name, const MetricLabels& labels = {});

  /// Copy out every instrument's current value (names sorted by
  /// (name, labels) — the map order).  One lock acquisition, no sorting.
  RegistrySample sample() const;

  /// Number of registered instruments (all kinds).
  std::size_t size() const;
  /// Zero every instrument (instruments stay registered; references stay
  /// valid).
  void reset();

  /// One JSON object: {"counters": [{"name","labels","value"}...],
  /// "gauges": [...], "histograms": [{"name","labels","count","sum","min",
  /// "max","p50","p95","p99"}...]}.  Embeddable in bench_common's --json
  /// artifacts and the VaultScope snapshot file.
  std::string to_json() const;
  void write_json(const std::string& path) const;

 private:
  struct Key {
    std::string name;
    std::string labels;
    bool operator<(const Key& o) const {
      return name != o.name ? name < o.name : labels < o.labels;
    }
  };
  template <typename T>
  using InstrumentMap = std::map<Key, std::unique_ptr<T>>;

  mutable Mutex mu_ GV_LOCK_RANK(gv::lockrank::kTelemetry){
      gv::lockrank::kTelemetry};
  InstrumentMap<Counter> counters_ GV_GUARDED_BY(mu_);
  InstrumentMap<Gauge> gauges_ GV_GUARDED_BY(mu_);
  InstrumentMap<Histogram> histograms_ GV_GUARDED_BY(mu_);
  /// Original label sets per key (for the exporter).
  std::map<std::string, MetricLabels> label_sets_ GV_GUARDED_BY(mu_);
};

}  // namespace gv
