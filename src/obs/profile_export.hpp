// EngineScope profile export: folded-stack profiles + the unified
// operations report.
//
// The TraceRecorder's Chrome JSON answers "what did ONE query do"; the
// questions EngineScope adds are aggregate — "where does the fleet's wall
// time actually go" and "what is the full operational state right now".
//
//   folded_profile()   Aggregates the recorder's retained spans into the
//                      Brendan Gregg folded-stack format: one line per
//                      distinct span stack, `root;frame;frame <self_ns>`,
//                      loadable directly by flamegraph.pl and speedscope
//                      (https://speedscope.app auto-detects the format).
//                      Stacks are reconstructed per thread from interval
//                      nesting (the well-nested invariant RAII emission
//                      guarantees); async events are skipped (they overlap
//                      the sync stack by design).  Counts are SELF wall
//                      nanoseconds: a frame's own time minus its children.
//
//   ops_report()       One validated JSON snapshot merging the global
//                      MetricsRegistry dump, the TenantLedger rows, and
//                      every live EngineProbe: the "everything" poll a
//                      scraper or an operator grabs.  The _cached variant
//                      touches only leaf telemetry locks so FlightRecorder
//                      bundles can attach it from inside trip().
//
// validate_folded()/validate_ops_report() are independent of the writers
// (flight-recorder idiom: a fresh mini-parser, so a writer bug cannot
// validate its own output); CI re-checks both artifacts with stock Python.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace gv {

/// Fold `events` (a TraceRecorder::snapshot()) into folded-stack lines.
/// Frames render as "category/name" (';' and ' ' sanitized to '_'); each
/// thread's stacks root at "tid_<n>".  Lines with zero self-time are
/// omitted.  Deterministic: lines sort lexicographically.
std::string folded_profile(const std::vector<TraceEvent>& events);

/// folded_profile() over the live recorder's retained events.
std::string folded_profile_snapshot();

/// Grammar check: every line is `frame(;frame)* <positive int>`, frames
/// non-empty and space-free.  An empty profile fails (the CI artifact gate
/// must notice a silently-disabled recorder).
bool validate_folded(const std::string& folded, std::string* error = nullptr);

void write_folded(const std::string& path);

/// {"schema":"gnnvault.ops_report.v1","wall_ns":...,"metrics":{...},
///  "tenants":{...},"engines":[...]}.  Live: pulls every EngineProbe and
/// every TenantLedger provider first — do not call holding locks at or
/// above kServerState.
std::string ops_report();

/// Leaf-lock-only variant (cached ledger rows, cached engine snapshots,
/// current registry values) for FlightRecorder::trip().
std::string ops_report_cached();

bool validate_ops_report(const std::string& json, std::string* error = nullptr);

void write_ops_report(const std::string& path);

}  // namespace gv
