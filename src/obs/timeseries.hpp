// QueryLens TimeSeriesRing: fixed-interval windowed aggregation over a
// MetricsRegistry.
//
// VaultScope's registry answers "what is the value NOW"; the control plane
// (the ROADMAP's Autopilot) needs TRENDS — is drift growing, is EPC
// headroom shrinking, what was the cold-query rate over the last minute.
// The ring turns point instruments into windows:
//
//   counters    delta and rate (delta / interval) per window, reset-aware
//               (a registry reset() mid-window reads as a restart from
//               zero, not a huge negative delta);
//   gauges      last / min / max over the samples that landed in the
//               window;
//   histograms  count / sum / per-bucket deltas, with a window-local
//               percentile estimator (what SloMonitor's latency objectives
//               evaluate).
//
// The clock is injected (sample(now_seconds)) so tests and benches drive
// deterministic windows; a wall-clock caller passes its own steady-clock
// seconds.  One sample() call folds gauges into the open window and closes
// every window the clock has passed; closed windows live in a bounded ring
// (oldest evicted), queried by age: window(0) is the newest closed window.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "common/annotations.hpp"

namespace gv {

struct TimeSeriesConfig {
  /// Window width in (caller-defined) seconds.
  double interval_seconds = 1.0;
  /// Closed windows retained; older windows are evicted.
  std::size_t capacity = 64;
};

class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(MetricsRegistry& registry, TimeSeriesConfig cfg = {});

  /// Series are keyed "name|canonical-labels" ("cold.queries|",
  /// "halo.payload_bytes|channel_kind=request").
  static std::string series_key(const std::string& name,
                                const MetricLabels& labels = {});

  struct CounterWindow {
    std::uint64_t delta = 0;
    double rate = 0.0;  // delta / interval_seconds
    std::uint64_t last = 0;
  };
  struct GaugeWindow {
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// sample() calls that observed this gauge inside the window; 0 means
    /// last/min/max are the value carried over from the window's close.
    std::uint64_t samples = 0;
  };
  struct HistogramWindow {
    std::uint64_t count_delta = 0;
    double sum_delta = 0.0;
    /// (bucket upper bound, count delta), ascending, only non-zero deltas.
    std::vector<std::pair<double, std::uint64_t>> bucket_deltas;
    /// Window-local percentile: upper bound of the bucket the p-quantile
    /// of this window's recordings falls in (0 when the window is empty).
    double percentile(double p) const;
  };
  struct Window {
    double start_seconds = 0.0;
    double end_seconds = 0.0;
    std::map<std::string, CounterWindow> counters;
    std::map<std::string, GaugeWindow> gauges;
    std::map<std::string, HistogramWindow> histograms;
  };

  /// Observe the registry at `now_seconds`: fold gauge values into the open
  /// window and close every window boundary the clock has crossed.
  void sample(double now_seconds);

  /// Closed windows currently retained.
  std::size_t windows() const;
  /// Copy of the closed window `age` steps back (0 = newest closed).
  /// Throws gv::Error when age >= windows().
  Window window(std::size_t age = 0) const;

  /// Counter rate / delta in the window `age` steps back; 0 when the series
  /// or window does not exist.
  double rate(const std::string& name, const MetricLabels& labels = {},
              std::size_t age = 0) const;
  std::uint64_t delta(const std::string& name, const MetricLabels& labels = {},
                      std::size_t age = 0) const;
  /// Counter delta summed over the newest `n` closed windows (fewer when
  /// the ring holds fewer) — the multi-window input SLO burn rates consume.
  std::uint64_t delta_over(const std::string& name, const MetricLabels& labels,
                           std::size_t n) const;

  double interval_seconds() const { return cfg_.interval_seconds; }

  /// {"interval_seconds": ..., "windows": [...]} with the newest
  /// `max_windows` closed windows, oldest first — the time-series section
  /// of a flight-recorder bundle.
  std::string to_json(std::size_t max_windows = 16) const;

 private:
  struct GaugePartial {
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t samples = 0;
  };

  void close_window_locked(double end_seconds, const RegistrySample& cur);

  MetricsRegistry* registry_;
  TimeSeriesConfig cfg_;

  mutable std::mutex mu_ GV_LOCK_RANK(gv::lockrank::kTelemetry);
  bool started_ = false;
  double cur_start_ = 0.0;
  RegistrySample baseline_;
  std::map<std::string, GaugePartial> gauge_partial_;
  std::deque<Window> ring_;  // back = newest closed
};

}  // namespace gv
