#include "obs/tenant_ledger.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "obs/metrics.hpp"

namespace gv {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_usage_fields(std::ostringstream& os, const TenantUsage& u) {
  os << std::setprecision(17);
  os << "\"modeled_seconds\":" << u.modeled_seconds
     << ",\"ecalls\":" << u.ecalls << ",\"batches\":" << u.batches
     << ",\"cache_hits\":" << u.cache_hits
     << ",\"cache_misses\":" << u.cache_misses
     << ",\"cold_queries\":" << u.cold_queries
     << ",\"cold_frontier_rows\":" << u.cold_frontier_rows
     << ",\"channel_bytes\":" << u.channel_bytes
     << ",\"channel_padded_bytes\":" << u.channel_padded_bytes
     << ",\"epc_resident_bytes\":" << u.epc_resident_bytes;
}

}  // namespace

TenantUsage& TenantUsage::operator+=(const TenantUsage& o) {
  modeled_seconds += o.modeled_seconds;
  ecalls += o.ecalls;
  batches += o.batches;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
  cold_queries += o.cold_queries;
  cold_frontier_rows += o.cold_frontier_rows;
  channel_bytes += o.channel_bytes;
  channel_padded_bytes += o.channel_padded_bytes;
  epc_resident_bytes += o.epc_resident_bytes;
  return *this;
}

TenantLedger& TenantLedger::global() {
  static TenantLedger* ledger = new TenantLedger();  // leaked: outlives exit
  return *ledger;
}

void TenantLedger::register_provider(const void* owner, std::string tenant,
                                     Provider fn) {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  for (auto& e : entries_) {
    if (e->owner == owner) {
      while (e->pins > 0) call_done_cv_.wait(mu_);
      e->tenant = std::move(tenant);
      e->fn = std::move(fn);
      return;
    }
  }
  auto e = std::make_unique<Entry>();
  e->owner = owner;
  e->tenant = std::move(tenant);
  e->fn = std::move(fn);
  entries_.push_back(std::move(e));
}

void TenantLedger::unregister(const void* owner) {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->owner != owner) continue;
    // Snapshots may be mid-call into this entry's provider with the lock
    // dropped (several can pin it at once); the provider reads state the
    // caller is about to destroy, so removal must wait out ALL of them.
    while ((*it)->pins > 0) call_done_cv_.wait(mu_);
    entries_.erase(it);
    return;
  }
}

void TenantLedger::set_epc_bytes(const std::string& tenant,
                                 std::uint64_t bytes) {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  epc_bytes_[tenant] = bytes;
}

void TenantLedger::clear_epc_bytes(const std::string& tenant) {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  epc_bytes_.erase(tenant);
}

std::vector<std::pair<std::string, TenantUsage>> TenantLedger::snapshot() {
  // Merge map built outside the lock; each provider is called with the
  // ledger mutex (and its rank scope) fully RELEASED — providers read
  // server state whose locks rank below kTelemetry.
  std::map<std::string, TenantUsage> rows;
  std::size_t i = 0;
  for (;;) {
    Entry* e = nullptr;
    Provider fn;
    std::string tenant;
    {
      MutexLock lock(mu_);
      GV_RANK_SCOPE(lockrank::kTelemetry);
      if (i < entries_.size()) {
        e = entries_[i].get();
        ++e->pins;  // pins the entry: unregister blocks until 0
        fn = e->fn;
        tenant = e->tenant;
      }
    }
    if (e == nullptr) break;
    const TenantUsage usage = fn();
    rows[tenant] += usage;
    {
      MutexLock lock(mu_);
      GV_RANK_SCOPE(lockrank::kTelemetry);
      if (--e->pins == 0) call_done_cv_.notify_all();
      // entries_ may have shifted while unlocked; continue after `e`'s
      // current slot (the pin guarantees it is still present).
      i = entries_.size();
      for (std::size_t j = 0; j < entries_.size(); ++j) {
        if (entries_[j].get() == e) {
          i = j + 1;
          break;
        }
      }
    }
  }
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kTelemetry);
    for (const auto& [tenant, bytes] : epc_bytes_) {
      rows[tenant].epc_resident_bytes += bytes;
    }
  }

  std::vector<std::pair<std::string, TenantUsage>> out(rows.begin(),
                                                       rows.end());
  TenantUsage fleet;
  for (const auto& [tenant, usage] : out) fleet += usage;
  {
    MutexLock lock(mu_);
    GV_RANK_SCOPE(lockrank::kTelemetry);
    cached_ = render_json_locked(out, fleet);
  }
  return out;
}

TenantUsage TenantLedger::fleet_totals() {
  TenantUsage fleet;
  for (const auto& [tenant, usage] : snapshot()) fleet += usage;
  return fleet;
}

std::string TenantLedger::render_json_locked(
    const std::vector<std::pair<std::string, TenantUsage>>& rows,
    const TenantUsage& fleet) {
  std::ostringstream os;
  os << "{\"schema\":\"gnnvault.tenant_ledger.v1\",\"tenants\":[";
  bool first = true;
  for (const auto& [tenant, usage] : rows) {
    if (!first) os << ",";
    first = false;
    std::string esc;
    append_escaped(esc, tenant);
    os << "{\"tenant\":\"" << esc << "\",";
    append_usage_fields(os, usage);
    os << "}";
  }
  os << "],\"fleet\":{";
  append_usage_fields(os, fleet);
  os << "}}";
  return os.str();
}

std::string TenantLedger::to_json() {
  snapshot();
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  return cached_;
}

std::string TenantLedger::cached_json() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  if (!cached_.empty()) return cached_;
  return "{\"schema\":\"gnnvault.tenant_ledger.v1\",\"tenants\":[],"
         "\"fleet\":{\"modeled_seconds\":0,\"ecalls\":0,\"batches\":0,"
         "\"cache_hits\":0,\"cache_misses\":0,\"cold_queries\":0,"
         "\"cold_frontier_rows\":0,\"channel_bytes\":0,"
         "\"channel_padded_bytes\":0,\"epc_resident_bytes\":0}}";
}

void TenantLedger::publish(MetricsRegistry& reg) {
  const auto rows = snapshot();
  TenantUsage fleet;
  for (const auto& [tenant, usage] : rows) {
    const MetricLabels l = MetricLabels::of("tenant", tenant);
    reg.gauge("tenant.modeled_seconds", l).set(usage.modeled_seconds);
    reg.gauge("tenant.ecalls", l).set(static_cast<double>(usage.ecalls));
    reg.gauge("tenant.batches", l).set(static_cast<double>(usage.batches));
    reg.gauge("tenant.cache_hits", l)
        .set(static_cast<double>(usage.cache_hits));
    reg.gauge("tenant.cache_misses", l)
        .set(static_cast<double>(usage.cache_misses));
    reg.gauge("tenant.cold_queries", l)
        .set(static_cast<double>(usage.cold_queries));
    reg.gauge("tenant.cold_frontier_rows", l)
        .set(static_cast<double>(usage.cold_frontier_rows));
    reg.gauge("tenant.channel_bytes", l)
        .set(static_cast<double>(usage.channel_bytes));
    reg.gauge("tenant.channel_padded_bytes", l)
        .set(static_cast<double>(usage.channel_padded_bytes));
    reg.gauge("tenant.epc_resident_bytes", l)
        .set(static_cast<double>(usage.epc_resident_bytes));
    fleet += usage;
  }
  reg.gauge("fleet.modeled_seconds").set(fleet.modeled_seconds);
  reg.gauge("fleet.ecalls").set(static_cast<double>(fleet.ecalls));
  reg.gauge("fleet.batches").set(static_cast<double>(fleet.batches));
  reg.gauge("fleet.cache_hits").set(static_cast<double>(fleet.cache_hits));
  reg.gauge("fleet.cache_misses").set(static_cast<double>(fleet.cache_misses));
  reg.gauge("fleet.cold_queries").set(static_cast<double>(fleet.cold_queries));
  reg.gauge("fleet.cold_frontier_rows")
      .set(static_cast<double>(fleet.cold_frontier_rows));
  reg.gauge("fleet.channel_bytes")
      .set(static_cast<double>(fleet.channel_bytes));
  reg.gauge("fleet.channel_padded_bytes")
      .set(static_cast<double>(fleet.channel_padded_bytes));
  reg.gauge("fleet.epc_resident_bytes")
      .set(static_cast<double>(fleet.epc_resident_bytes));
}

std::size_t TenantLedger::num_providers() const {
  MutexLock lock(mu_);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  return entries_.size();
}

}  // namespace gv
