// Catalog of the six dataset twins used throughout the paper's evaluation
// (Table I).  Node/edge/feature/class counts match the published table;
// homophily, degree skew, and feature sparsity are set to the published
// statistics of the original datasets.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/synthetic.hpp"

namespace gv {

/// Identifiers of the six Table-I datasets.
enum class DatasetId { kCora, kCiteseer, kPubmed, kComputer, kPhoto, kCoraFull };

/// All six ids in Table-I order.
const std::vector<DatasetId>& all_dataset_ids();

/// Paper-facing display name, e.g. "Cora".
std::string dataset_name(DatasetId id);

/// The generator spec for a dataset twin.
SyntheticSpec dataset_spec(DatasetId id);

/// Generate the twin. `scale` in (0,1] shrinks it (fast mode); 1.0 = full.
Dataset load_dataset(DatasetId id, std::uint64_t seed, double scale = 1.0);

/// Table I row data for reporting.
struct TableOneRow {
  std::string name;
  std::uint32_t nodes;
  std::size_t directed_edges;
  std::uint32_t features;
  std::uint32_t classes;
  double dense_adj_mb;  // float64 dense adjacency
};
TableOneRow table_one_row(const Dataset& ds);

}  // namespace gv
