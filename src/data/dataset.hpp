// Node-classification dataset: a graph, sparse node features, labels, and
// a semi-supervised split (the paper's 20-labeled-nodes-per-class setup).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"

namespace gv {

struct Split {
  std::vector<std::uint32_t> train;  // 20 per class (paper Sec. V-A)
  std::vector<std::uint32_t> test;   // all remaining nodes
};

struct Dataset {
  std::string name;
  Graph graph;              // the PRIVATE adjacency
  CsrMatrix features;       // PUBLIC node features (n x d, sparse)
  std::vector<std::uint32_t> labels;
  std::uint32_t num_classes = 0;
  Split split;

  std::uint32_t num_nodes() const { return graph.num_nodes(); }
  std::size_t feature_dim() const { return features.cols(); }

  /// Dense feature copy (used only for small matrices / tests).
  Matrix dense_features() const { return features.to_dense(); }

  /// Validate internal consistency; throws gv::Error when broken.
  void validate() const;
};

/// Planetoid-style split: `per_class` labeled train nodes per class, all
/// remaining nodes form the test set.
Split make_semi_supervised_split(const std::vector<std::uint32_t>& labels,
                                 std::uint32_t num_classes, std::uint32_t per_class,
                                 Rng& rng);

/// Classification accuracy of predictions over the given node set.
double accuracy_on(const std::vector<std::uint32_t>& predictions,
                   const std::vector<std::uint32_t>& labels,
                   const std::vector<std::uint32_t>& node_set);

}  // namespace gv
