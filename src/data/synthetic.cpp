#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace gv {

namespace {

/// Weighted sampler over a node subset via prefix sums + binary search.
class WeightedSampler {
 public:
  WeightedSampler(const std::vector<std::uint32_t>& nodes,
                  const std::vector<double>& weight) {
    nodes_ = nodes;
    prefix_.resize(nodes.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      acc += weight[nodes[i]];
      prefix_[i] = acc;
    }
    total_ = acc;
  }

  double total() const { return total_; }
  bool empty() const { return nodes_.empty() || total_ <= 0.0; }

  std::uint32_t sample(Rng& rng) const {
    const double u = rng.uniform() * total_;
    const auto it = std::lower_bound(prefix_.begin(), prefix_.end(), u);
    const std::size_t idx = std::min<std::size_t>(
        static_cast<std::size_t>(it - prefix_.begin()), nodes_.size() - 1);
    return nodes_[idx];
  }

 private:
  std::vector<std::uint32_t> nodes_;
  std::vector<double> prefix_;
  double total_ = 0.0;
};

inline std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t lo = std::min(a, b), hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

Dataset generate_synthetic(const SyntheticSpec& spec, std::uint64_t seed) {
  GV_CHECK(spec.num_nodes >= 2 * spec.num_classes,
           "need at least two nodes per class");
  GV_CHECK(spec.num_classes >= 2, "need at least two classes");
  GV_CHECK(spec.homophily >= 0.0 && spec.homophily <= 1.0,
           "homophily must be in [0,1]");
  Rng rng(seed ^ 0x5eedf00d12345678ull);

  const std::uint32_t n = spec.num_nodes;
  const std::uint32_t c = spec.num_classes;

  // --- Labels: balanced classes, randomly permuted over nodes. ---
  std::vector<std::uint32_t> labels(n);
  for (std::uint32_t v = 0; v < n; ++v) labels[v] = v % c;
  rng.shuffle(labels);

  std::vector<std::vector<std::uint32_t>> members(c);
  for (std::uint32_t v = 0; v < n; ++v) members[labels[v]].push_back(v);

  // --- Degree correction: Pareto weights. ---
  std::vector<double> weight(n);
  for (auto& w : weight) w = rng.pareto(spec.degree_alpha, spec.degree_cap);

  std::vector<WeightedSampler> class_sampler;
  class_sampler.reserve(c);
  std::vector<double> class_weight(c);
  for (std::uint32_t k = 0; k < c; ++k) {
    class_sampler.emplace_back(members[k], weight);
    class_weight[k] = class_sampler.back().total();
  }
  // Class-pair sampler for intra edges: class k with prob ~ W_k^2.
  std::vector<double> intra_prefix(c);
  {
    double acc = 0.0;
    for (std::uint32_t k = 0; k < c; ++k) {
      acc += class_weight[k] * class_weight[k];
      intra_prefix[k] = acc;
    }
  }
  auto sample_class_sq = [&](Rng& r) -> std::uint32_t {
    const double u = r.uniform() * intra_prefix.back();
    const auto it = std::lower_bound(intra_prefix.begin(), intra_prefix.end(), u);
    return static_cast<std::uint32_t>(
        std::min<std::ptrdiff_t>(it - intra_prefix.begin(), c - 1));
  };
  std::vector<double> class_prefix(c);
  {
    double acc = 0.0;
    for (std::uint32_t k = 0; k < c; ++k) {
      acc += class_weight[k];
      class_prefix[k] = acc;
    }
  }
  auto sample_class = [&](Rng& r) -> std::uint32_t {
    const double u = r.uniform() * class_prefix.back();
    const auto it = std::lower_bound(class_prefix.begin(), class_prefix.end(), u);
    return static_cast<std::uint32_t>(
        std::min<std::ptrdiff_t>(it - class_prefix.begin(), c - 1));
  };

  // --- Edges: exactly the target count (if achievable), target homophily. ---
  const std::size_t target_edges = spec.num_undirected_edges;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(target_edges * 2);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(target_edges);
  const std::size_t attempt_cap = target_edges * 200 + 10000;
  std::size_t attempts = 0;
  while (pairs.size() < target_edges && attempts < attempt_cap) {
    ++attempts;
    std::uint32_t a = 0, b = 0;
    if (rng.bernoulli(spec.homophily)) {
      const std::uint32_t k = sample_class_sq(rng);
      a = class_sampler[k].sample(rng);
      b = class_sampler[k].sample(rng);
    } else {
      const std::uint32_t k1 = sample_class(rng);
      std::uint32_t k2 = sample_class(rng);
      std::size_t guard = 0;
      while (k2 == k1 && guard++ < 64) k2 = sample_class(rng);
      if (k2 == k1) continue;
      a = class_sampler[k1].sample(rng);
      b = class_sampler[k2].sample(rng);
    }
    if (a == b) continue;
    if (!seen.insert(edge_key(a, b)).second) continue;
    pairs.push_back({a, b});
  }

  Dataset ds;
  ds.name = spec.name;
  ds.graph = Graph::from_pairs(n, pairs);
  ds.labels = std::move(labels);
  ds.num_classes = c;

  // --- Features: overlapping class prototypes + common "stop words" +
  // uniform noise, binary sparse. The prototype ring overlap makes
  // neighboring classes confusable from features alone; the common pool
  // adds cross-class similarity. Both keep feature-only accuracy (and the
  // quality of feature-similarity substitute graphs) below the real-graph
  // ceiling, which is the regime GNNVault's partition targets.
  std::uint32_t proto = spec.prototype_size;
  if (proto == 0) {
    proto = std::max<std::uint32_t>(8, spec.feature_dim / (2 * c));
  }
  proto = std::min(proto, spec.feature_dim);
  std::vector<std::vector<std::uint32_t>> own_dims(c);
  for (std::uint32_t k = 0; k < c; ++k) {
    own_dims[k] = rng.sample_without_replacement(spec.feature_dim, proto);
  }
  // Effective pool of class k: its own dims plus a slice of the next
  // class's (ring overlap, controlled by class_confusion).
  std::vector<std::vector<std::uint32_t>> class_pool(c);
  const auto shared =
      static_cast<std::size_t>(static_cast<double>(proto) * spec.class_confusion);
  for (std::uint32_t k = 0; k < c; ++k) {
    class_pool[k] = own_dims[k];
    const auto& next = own_dims[(k + 1) % c];
    class_pool[k].insert(class_pool[k].end(), next.begin(),
                         next.begin() + std::min(shared, next.size()));
  }
  // Subtopic prototypes: random halves of the class pool. Nodes of the
  // same class but different subtopics overlap only partially in feature
  // space (like papers on different themes within one research area).
  const std::uint32_t subtopics = std::max(1u, spec.subtopics_per_class);
  std::vector<std::vector<std::vector<std::uint32_t>>> prototypes(c);
  for (std::uint32_t k = 0; k < c; ++k) {
    prototypes[k].resize(subtopics);
    const auto pool_size = static_cast<std::uint32_t>(class_pool[k].size());
    const auto sub_size = std::max<std::uint32_t>(
        4, static_cast<std::uint32_t>(pool_size * spec.subtopic_fraction));
    for (std::uint32_t t = 0; t < subtopics; ++t) {
      const auto pick = rng.sample_without_replacement(pool_size, sub_size);
      auto& dst = prototypes[k][t];
      dst.reserve(sub_size);
      for (const auto i : pick) dst.push_back(class_pool[k][i]);
    }
  }
  std::vector<std::uint32_t> node_subtopic(n);
  for (auto& t : node_subtopic) {
    t = static_cast<std::uint32_t>(rng.uniform_index(subtopics));
  }
  const auto common_pool_size = std::max<std::uint32_t>(
      4, static_cast<std::uint32_t>(spec.feature_dim * spec.common_pool_fraction));
  const auto common_pool =
      rng.sample_without_replacement(spec.feature_dim, std::min(common_pool_size,
                                                                spec.feature_dim));
  std::vector<CooEntry> feat_entries;
  feat_entries.reserve(static_cast<std::size_t>(n) * spec.features_per_node);
  std::unordered_set<std::uint32_t> row_dims;
  for (std::uint32_t v = 0; v < n; ++v) {
    row_dims.clear();
    // nnz per row: uniform in [0.5, 1.5] * mean, at least 3.
    const auto nnz_target = std::max<std::uint32_t>(
        3, static_cast<std::uint32_t>(
               std::lround(spec.features_per_node * rng.uniform(0.5, 1.5))));
    const auto& my_proto = prototypes[ds.labels[v]][node_subtopic[v]];
    std::size_t guard = 0;
    while (row_dims.size() < nnz_target && guard++ < nnz_target * 20u) {
      std::uint32_t dim = 0;
      if (rng.bernoulli(spec.feature_signal)) {
        dim = my_proto[rng.uniform_index(my_proto.size())];
      } else if (rng.bernoulli(spec.common_token_prob)) {
        dim = common_pool[rng.uniform_index(common_pool.size())];
      } else {
        dim = static_cast<std::uint32_t>(rng.uniform_index(spec.feature_dim));
      }
      row_dims.insert(dim);
    }
    for (const auto dim : row_dims) feat_entries.push_back({v, dim, 1.0f});
  }
  ds.features = CsrMatrix::from_coo(n, spec.feature_dim, std::move(feat_entries));

  ds.split = make_semi_supervised_split(ds.labels, c, spec.train_per_class, rng);
  ds.validate();
  return ds;
}

SyntheticSpec scaled_spec(SyntheticSpec spec, double factor) {
  GV_CHECK(factor > 0.0 && factor <= 1.0, "scale factor must be in (0,1]");
  const auto min_nodes = spec.num_classes * 40u;
  spec.num_nodes = std::max<std::uint32_t>(
      min_nodes, static_cast<std::uint32_t>(spec.num_nodes * factor));
  spec.num_undirected_edges = std::max<std::size_t>(
      spec.num_nodes, static_cast<std::size_t>(spec.num_undirected_edges * factor));
  spec.feature_dim = std::max<std::uint32_t>(
      64, static_cast<std::uint32_t>(spec.feature_dim * factor));
  spec.train_per_class = std::min(spec.train_per_class, 20u);
  return spec;
}

}  // namespace gv
