#include "data/dataset.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gv {

void Dataset::validate() const {
  GV_CHECK(features.rows() == graph.num_nodes(),
           "feature rows must match node count");
  GV_CHECK(labels.size() == graph.num_nodes(), "labels must match node count");
  GV_CHECK(num_classes > 0, "dataset needs at least one class");
  for (const auto y : labels) {
    GV_CHECK(y < num_classes, "label out of range");
  }
  auto check_nodes = [&](const std::vector<std::uint32_t>& ns) {
    for (const auto v : ns) GV_CHECK(v < graph.num_nodes(), "split node out of range");
  };
  check_nodes(split.train);
  check_nodes(split.test);
  // Train and test must be disjoint.
  std::vector<std::uint32_t> train_sorted = split.train;
  std::sort(train_sorted.begin(), train_sorted.end());
  for (const auto v : split.test) {
    GV_CHECK(!std::binary_search(train_sorted.begin(), train_sorted.end(), v),
             "train/test split overlap");
  }
}

Split make_semi_supervised_split(const std::vector<std::uint32_t>& labels,
                                 std::uint32_t num_classes, std::uint32_t per_class,
                                 Rng& rng) {
  std::vector<std::vector<std::uint32_t>> by_class(num_classes);
  for (std::uint32_t v = 0; v < labels.size(); ++v) {
    GV_CHECK(labels[v] < num_classes, "label out of range");
    by_class[labels[v]].push_back(v);
  }
  Split split;
  std::vector<std::uint8_t> in_train(labels.size(), 0);
  for (std::uint32_t c = 0; c < num_classes; ++c) {
    auto& nodes = by_class[c];
    rng.shuffle(nodes);
    const std::size_t take = std::min<std::size_t>(per_class, nodes.size());
    for (std::size_t i = 0; i < take; ++i) {
      split.train.push_back(nodes[i]);
      in_train[nodes[i]] = 1;
    }
  }
  for (std::uint32_t v = 0; v < labels.size(); ++v) {
    if (!in_train[v]) split.test.push_back(v);
  }
  std::sort(split.train.begin(), split.train.end());
  return split;
}

double accuracy_on(const std::vector<std::uint32_t>& predictions,
                   const std::vector<std::uint32_t>& labels,
                   const std::vector<std::uint32_t>& node_set) {
  GV_CHECK(predictions.size() == labels.size(), "prediction/label size mismatch");
  GV_CHECK(!node_set.empty(), "empty evaluation node set");
  std::size_t correct = 0;
  for (const auto v : node_set) {
    GV_CHECK(v < predictions.size(), "node out of range");
    if (predictions[v] == labels[v]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(node_set.size());
}

}  // namespace gv
