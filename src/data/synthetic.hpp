// Degree-corrected stochastic block model (DC-SBM) dataset generator.
//
// The paper evaluates on Cora/Citeseer/Pubmed/Amazon-Computer/Amazon-Photo/
// CoraFull.  Those raw files are not available in this offline environment,
// so we generate *synthetic twins*: graphs + class-conditional sparse
// binary features whose headline statistics (node/edge/feature/class
// counts, feature sparsity, edge homophily, degree skew) match the
// originals.  Everything GNNVault claims depends on two structural
// properties that the generator controls directly:
//   1. edges are class-assortative (homophily) -> real-adjacency message
//      passing helps, and link-stealing from embeddings is possible;
//   2. features are class-correlated but noisy -> feature-similarity
//      substitute graphs (KNN/cosine) are useful yet lossy, so the public
//      backbone underperforms until the private rectifier fixes it.
// See DESIGN.md "Substitutions" for the fidelity argument.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"

namespace gv {

struct SyntheticSpec {
  std::string name = "synthetic";
  std::uint32_t num_nodes = 1000;
  std::uint32_t num_classes = 5;
  std::size_t num_undirected_edges = 3000;
  std::uint32_t feature_dim = 500;

  /// Target fraction of intra-class edges (citation graphs: ~0.74-0.81).
  double homophily = 0.80;
  /// Pareto exponent of the degree corrector (lower = heavier tail).
  double degree_alpha = 2.2;
  /// Degree-weight cap (multiples of the minimum weight).
  double degree_cap = 25.0;

  /// Mean number of active (binary) features per node.
  std::uint32_t features_per_node = 30;
  /// Probability that an active feature is drawn from the node's class
  /// prototype rather than from the common/background pools.
  double feature_signal = 0.55;
  /// Number of prototype dimensions per class (0 = auto: d / (2 C), >= 8).
  std::uint32_t prototype_size = 0;
  /// Fraction of each class prototype shared with the NEXT class (ring
  /// overlap). Confusable neighboring classes are what keep feature-only
  /// models (and feature-similarity substitute graphs) away from the
  /// graph-based ceiling — the regime GNNVault targets.
  double class_confusion = 0.5;
  /// Probability that a non-signal token comes from a small "common word"
  /// pool shared by every node (stop-word-like dims), vs uniform noise.
  double common_token_prob = 0.5;
  /// Size of the common pool as a fraction of feature_dim.
  double common_pool_fraction = 0.03;
  /// Subtopics per class: each node draws its signal tokens from one of
  /// several per-class subtopic prototypes (subsets of the class pool).
  /// Intra-class feature diversity is what keeps a feature-only MLP below
  /// a KNN-substitute GNN with only 20 labels per class (Table III).
  std::uint32_t subtopics_per_class = 3;
  /// Fraction of the class pool each subtopic prototype samples.
  double subtopic_fraction = 0.5;

  /// Labeled nodes per class in the train split (paper: 20).
  std::uint32_t train_per_class = 20;
};

/// Generate a dataset from the spec; fully deterministic in (spec, seed).
Dataset generate_synthetic(const SyntheticSpec& spec, std::uint64_t seed);

/// Shrink a spec by `factor` (nodes, edges, feature dim) for smoke tests /
/// GNNVAULT_BENCH_FAST runs. Keeps class count; keeps >= 40 nodes/class.
SyntheticSpec scaled_spec(SyntheticSpec spec, double factor);

}  // namespace gv
