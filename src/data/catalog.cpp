#include "data/catalog.hpp"

#include "common/error.hpp"

namespace gv {

const std::vector<DatasetId>& all_dataset_ids() {
  static const std::vector<DatasetId> ids = {
      DatasetId::kCora,     DatasetId::kCiteseer, DatasetId::kPubmed,
      DatasetId::kComputer, DatasetId::kPhoto,    DatasetId::kCoraFull};
  return ids;
}

std::string dataset_name(DatasetId id) {
  switch (id) {
    case DatasetId::kCora: return "Cora";
    case DatasetId::kCiteseer: return "Citeseer";
    case DatasetId::kPubmed: return "Pubmed";
    case DatasetId::kComputer: return "Computer";
    case DatasetId::kPhoto: return "Photo";
    case DatasetId::kCoraFull: return "CoraFull";
  }
  throw Error("unknown dataset id");
}

SyntheticSpec dataset_spec(DatasetId id) {
  // Edge counts below are UNDIRECTED; Table I reports directed counts
  // (exactly twice these).  Homophily values follow the published edge
  // homophily of the originals (Cora .81, Citeseer .74, Pubmed .80,
  // Computer .78, Photo .83, CoraFull ~.57 across 70 classes).
  SyntheticSpec s;
  // Shared feature-noise regime, calibrated (tools/calibrate) so that the
  // paper's accuracy ordering holds: feature-only models and KNN-substitute
  // backbones land well below the real-graph GCN, and the rectifier
  // recovers to within a couple of points of it.
  s.class_confusion = 0.7;
  s.common_token_prob = 0.6;
  s.subtopics_per_class = 10;
  s.subtopic_fraction = 0.35;
  switch (id) {
    case DatasetId::kCora:
      s.name = "Cora";
      s.num_nodes = 2708;
      s.num_undirected_edges = 5278;
      s.feature_dim = 1433;
      s.num_classes = 7;
      s.homophily = 0.81;
      s.features_per_node = 18;
      s.feature_signal = 0.45;
      break;
    case DatasetId::kCiteseer:
      s.name = "Citeseer";
      s.num_nodes = 3327;
      s.num_undirected_edges = 4552;
      s.feature_dim = 3703;
      s.num_classes = 6;
      s.homophily = 0.74;
      s.features_per_node = 32;
      s.feature_signal = 0.50;
      break;
    case DatasetId::kPubmed:
      s.name = "Pubmed";
      s.num_nodes = 19717;
      s.num_undirected_edges = 44324;
      s.feature_dim = 500;
      s.num_classes = 3;
      s.homophily = 0.80;
      s.features_per_node = 50;
      s.feature_signal = 0.18;
      break;
    case DatasetId::kComputer:
      s.name = "Computer";
      s.num_nodes = 13752;
      s.num_undirected_edges = 245861;
      s.feature_dim = 767;
      s.num_classes = 10;
      s.homophily = 0.78;
      s.features_per_node = 60;
      s.feature_signal = 0.18;
      s.prototype_size = 120;
      break;
    case DatasetId::kPhoto:
      s.name = "Photo";
      s.num_nodes = 7650;
      s.num_undirected_edges = 119081;
      s.feature_dim = 745;
      s.num_classes = 8;
      s.homophily = 0.83;
      s.features_per_node = 60;
      s.feature_signal = 0.20;
      s.prototype_size = 120;
      break;
    case DatasetId::kCoraFull:
      s.name = "CoraFull";
      s.num_nodes = 19793;
      s.num_undirected_edges = 63421;
      s.feature_dim = 8710;
      s.num_classes = 70;
      s.homophily = 0.57;
      s.features_per_node = 35;
      s.feature_signal = 0.40;
      s.prototype_size = 150;
      break;
  }
  return s;
}

Dataset load_dataset(DatasetId id, std::uint64_t seed, double scale) {
  SyntheticSpec spec = dataset_spec(id);
  if (scale < 1.0) spec = scaled_spec(spec, scale);
  // Per-dataset seed separation so different twins are independent draws.
  const std::uint64_t dataset_seed =
      seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(id) + 1;
  return generate_synthetic(spec, dataset_seed);
}

TableOneRow table_one_row(const Dataset& ds) {
  TableOneRow row;
  row.name = ds.name;
  row.nodes = ds.num_nodes();
  row.directed_edges = ds.graph.num_directed_edges();
  row.features = static_cast<std::uint32_t>(ds.feature_dim());
  row.classes = ds.num_classes;
  row.dense_adj_mb = Graph::dense_adjacency_mb(ds.num_nodes(), 8);
  return row;
}

}  // namespace gv
