// Link-stealing attack (He et al., USENIX Security'21; paper Sec. V-D).
//
// Threat: an honest-but-curious user observes every intermediate node
// embedding available in the untrusted world and infers whether two nodes
// are connected, exploiting that GNN message passing makes connected
// nodes' embeddings more similar.  The paper scores the attack with
// ROC-AUC over six similarity/distance metrics (Table IV) on three
// observable surfaces:
//   M_org  : all embeddings of the unprotected GNN (real adjacency);
//   M_gv   : embeddings observable under GNNVault — the public backbone's
//            only (the rectifier's stay sealed in the enclave);
//   M_base : embeddings of a feature-only DNN (no graph), the floor any
//            attacker reaches from public features alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "tensor/matrix.hpp"

namespace gv {

enum class SimilarityMetric {
  kEuclidean,
  kCorrelation,
  kCosine,
  kChebyshev,
  kBraycurtis,
  kCanberra,
};

const std::vector<SimilarityMetric>& all_similarity_metrics();
std::string metric_name(SimilarityMetric m);

/// A balanced evaluation set: existing edges (positives) and uniformly
/// sampled non-edges (negatives).
struct PairSample {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  std::vector<std::uint8_t> is_edge;
  std::size_t positives() const;
};

/// Sample up to max_pairs/2 edges and an equal number of non-edges.
PairSample sample_link_pairs(const Graph& g, std::size_t max_pairs, Rng& rng);

/// Similarity of two rows under a metric; HIGHER always means "more likely
/// connected" (distance metrics are negated).
float pair_similarity(const Matrix& embeddings, std::uint32_t a, std::uint32_t b,
                      SimilarityMetric m);

/// Concatenate observable embeddings (each layer L2-row-normalized first so
/// layers with larger scales do not dominate the distance metrics).
Matrix concat_observable_embeddings(const std::vector<Matrix>& layers);

/// Attack AUC given the observable embeddings of every layer.
double link_stealing_auc(const std::vector<Matrix>& observable_layers,
                         const PairSample& sample, SimilarityMetric m);

/// Convenience: AUC per metric over the same pair sample.
std::vector<double> link_stealing_auc_all_metrics(
    const std::vector<Matrix>& observable_layers, const PairSample& sample);

}  // namespace gv
