#include "attack/link_stealing.hpp"

#include "common/error.hpp"
#include "metrics/auc.hpp"
#include "tensor/ops.hpp"

namespace gv {

const std::vector<SimilarityMetric>& all_similarity_metrics() {
  static const std::vector<SimilarityMetric> metrics = {
      SimilarityMetric::kEuclidean,  SimilarityMetric::kCorrelation,
      SimilarityMetric::kCosine,     SimilarityMetric::kChebyshev,
      SimilarityMetric::kBraycurtis, SimilarityMetric::kCanberra};
  return metrics;
}

std::string metric_name(SimilarityMetric m) {
  switch (m) {
    case SimilarityMetric::kEuclidean: return "Euclidean";
    case SimilarityMetric::kCorrelation: return "Correlation";
    case SimilarityMetric::kCosine: return "Cosine";
    case SimilarityMetric::kChebyshev: return "Chebyshev";
    case SimilarityMetric::kBraycurtis: return "Braycurtis";
    case SimilarityMetric::kCanberra: return "Canberra";
  }
  throw Error("unknown similarity metric");
}

std::size_t PairSample::positives() const {
  std::size_t n = 0;
  for (const auto e : is_edge) n += (e != 0);
  return n;
}

PairSample sample_link_pairs(const Graph& g, std::size_t max_pairs, Rng& rng) {
  GV_CHECK(g.num_edges() > 0, "graph has no edges to steal");
  GV_CHECK(max_pairs >= 2, "need at least one positive and one negative pair");
  PairSample sample;
  const std::size_t per_class = max_pairs / 2;

  // Positives: all edges, or a shuffled subset.
  std::vector<Edge> edges = g.edges();
  if (edges.size() > per_class) {
    rng.shuffle(edges);
    edges.resize(per_class);
  }
  for (const Edge& e : edges) {
    sample.pairs.push_back({e.a, e.b});
    sample.is_edge.push_back(1);
  }

  // Negatives: uniform non-adjacent pairs, same count as positives.
  const std::size_t want = sample.pairs.size();
  std::size_t added = 0, attempts = 0;
  const std::size_t cap = want * 200 + 1000;
  while (added < want && attempts < cap) {
    ++attempts;
    const auto a = static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes()));
    const auto b = static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes()));
    if (a == b || g.has_edge(a, b)) continue;
    sample.pairs.push_back({a, b});
    sample.is_edge.push_back(0);
    ++added;
  }
  GV_CHECK(added == want, "could not sample enough non-edges (graph too dense?)");
  return sample;
}

float pair_similarity(const Matrix& embeddings, std::uint32_t a, std::uint32_t b,
                      SimilarityMetric m) {
  switch (m) {
    case SimilarityMetric::kEuclidean: return -row_euclidean(embeddings, a, b);
    case SimilarityMetric::kCorrelation: return row_correlation(embeddings, a, b);
    case SimilarityMetric::kCosine: return row_cosine(embeddings, a, b);
    case SimilarityMetric::kChebyshev: return -row_chebyshev(embeddings, a, b);
    case SimilarityMetric::kBraycurtis: return -row_braycurtis(embeddings, a, b);
    case SimilarityMetric::kCanberra: return -row_canberra(embeddings, a, b);
  }
  throw Error("unknown similarity metric");
}

Matrix concat_observable_embeddings(const std::vector<Matrix>& layers) {
  GV_CHECK(!layers.empty(), "no observable embeddings");
  std::vector<Matrix> normalized;
  normalized.reserve(layers.size());
  for (const auto& layer : layers) {
    if (layer.empty()) continue;
    Matrix copy = layer;
    l2_normalize_rows(copy);
    normalized.push_back(std::move(copy));
  }
  GV_CHECK(!normalized.empty(), "all observable embeddings are empty");
  std::vector<const Matrix*> blocks;
  blocks.reserve(normalized.size());
  for (const auto& m : normalized) blocks.push_back(&m);
  return Matrix::hconcat(std::span<const Matrix* const>(blocks.data(), blocks.size()));
}

double link_stealing_auc(const std::vector<Matrix>& observable_layers,
                         const PairSample& sample, SimilarityMetric m) {
  const Matrix concat = concat_observable_embeddings(observable_layers);
  std::vector<float> scores(sample.pairs.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(sample.pairs.size()); ++i) {
    const auto& [a, b] = sample.pairs[i];
    scores[i] = pair_similarity(concat, a, b, m);
  }
  return roc_auc(scores, sample.is_edge);
}

std::vector<double> link_stealing_auc_all_metrics(
    const std::vector<Matrix>& observable_layers, const PairSample& sample) {
  const Matrix concat = concat_observable_embeddings(observable_layers);
  std::vector<double> aucs;
  aucs.reserve(all_similarity_metrics().size());
  for (const auto m : all_similarity_metrics()) {
    std::vector<float> scores(sample.pairs.size());
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(sample.pairs.size());
         ++i) {
      const auto& [a, b] = sample.pairs[i];
      scores[i] = pair_similarity(concat, a, b, m);
    }
    aucs.push_back(roc_auc(scores, sample.is_edge));
  }
  return aucs;
}

}  // namespace gv
