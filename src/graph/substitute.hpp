// Substitute-graph construction (paper Sec. IV-C, Eq. 2).
//
// The public backbone must not see the private adjacency, so GNNVault
// fabricates a *substitute* adjacency A' from the public node features:
//   * KNN    : connect each node to its k most cosine-similar nodes
//              (paper default, k = 2, chosen in the Fig. 5 ablation);
//   * cosine : connect pairs whose cosine similarity clears a threshold τ,
//              sampled down to the real graph's edge budget;
//   * random : uniformly random edges (the Table III / Fig. 5 strawman).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "tensor/csr.hpp"

namespace gv {

/// KNN substitute graph: for every node, edges to its k most similar nodes
/// by cosine similarity of (sparse) feature rows; the union is symmetrized.
Graph build_knn_graph(const CsrMatrix& features, std::uint32_t k);

/// Cosine-threshold substitute graph: all pairs with similarity >= tau,
/// reservoir-sampled down to at most `max_edges` undirected edges
/// (0 = keep all). The paper samples to match the real graph's density.
Graph build_cosine_graph(const CsrMatrix& features, float tau,
                         std::size_t max_edges, Rng& rng);

/// Random substitute graph with exactly `num_edges` distinct undirected
/// edges (or the maximum possible if fewer exist).
Graph build_random_graph(std::uint32_t num_nodes, std::size_t num_edges, Rng& rng);

/// Cosine similarities of one node against all others, via sparse scatter:
/// sims[j] = <x_i, x_j> for L2-normalized rows. `features_t` must be the
/// transpose of `features`. Exposed for tests and the attack module.
void scatter_similarities(const CsrMatrix& features, const CsrMatrix& features_t,
                          std::uint32_t node, std::vector<float>& sims);

}  // namespace gv
