// Simple text serialization for graphs and sparse feature matrices so that
// generated datasets can be cached to disk and examples can ship inputs.
//
// Format (line oriented, '#' comments allowed):
//   graph <num_nodes> <num_edges>
//   e <a> <b>            (one per undirected edge)
//   csr <rows> <cols> <nnz>
//   r <row> <col> <value>
#pragma once

#include <string>

#include "graph/graph.hpp"
#include "tensor/csr.hpp"

namespace gv {

void save_graph(const Graph& g, const std::string& path);
Graph load_graph(const std::string& path);

void save_csr(const CsrMatrix& m, const std::string& path);
CsrMatrix load_csr(const std::string& path);

}  // namespace gv
