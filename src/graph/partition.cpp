#include "graph/partition.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.hpp"

namespace gv {

PartitionResult greedy_edge_cut_partition(const Graph& g, std::uint32_t num_parts,
                                          std::span<const double> node_weights,
                                          double slack) {
  const std::uint32_t n = g.num_nodes();
  GV_CHECK(num_parts >= 1, "need at least one part");
  GV_CHECK(slack >= 1.0, "slack must be >= 1");
  GV_CHECK(node_weights.empty() || node_weights.size() == n,
           "node_weights must be empty or one per node");

  PartitionResult res;
  res.num_parts = num_parts;
  res.part_weight.assign(num_parts, 0.0);
  res.owner.assign(n, 0);
  if (n == 0) return res;

  auto weight = [&](std::uint32_t v) {
    return node_weights.empty() ? 1.0 : node_weights[v];
  };
  const double total =
      node_weights.empty()
          ? static_cast<double>(n)
          : std::accumulate(node_weights.begin(), node_weights.end(), 0.0);
  // Capacity per part; the max() keeps a single huge node placeable.
  double cap = slack * total / num_parts;
  for (std::uint32_t v = 0; v < n; ++v) cap = std::max(cap, weight(v));

  if (num_parts == 1) {
    res.part_weight[0] = total;
    return res;
  }

  // BFS order from the highest-degree unvisited seed: neighbors are placed
  // soon after each other, which is what lets the greedy score see them.
  const auto deg = g.degrees();
  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<std::uint32_t> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0u);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](std::uint32_t a, std::uint32_t b) { return deg[a] > deg[b]; });
  std::queue<std::uint32_t> bfs;
  for (const std::uint32_t seed : by_degree) {
    if (visited[seed]) continue;
    visited[seed] = 1;
    bfs.push(seed);
    while (!bfs.empty()) {
      const std::uint32_t v = bfs.front();
      bfs.pop();
      order.push_back(v);
      for (const std::uint32_t u : g.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = 1;
          bfs.push(u);
        }
      }
    }
  }

  // LDG assignment: score(part) = (placed neighbors in part) * load headroom.
  std::vector<char> assigned(n, 0);
  std::vector<double> nbr_in_part(num_parts, 0.0);
  for (const std::uint32_t v : order) {
    std::fill(nbr_in_part.begin(), nbr_in_part.end(), 0.0);
    for (const std::uint32_t u : g.neighbors(v)) {
      if (assigned[u]) nbr_in_part[res.owner[u]] += 1.0;
    }
    std::uint32_t best = num_parts;
    double best_score = -1.0;
    for (std::uint32_t p = 0; p < num_parts; ++p) {
      if (res.part_weight[p] + weight(v) > cap) continue;
      const double headroom = 1.0 - res.part_weight[p] / cap;
      const double score = (nbr_in_part[p] + 1e-3) * headroom;
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    if (best == num_parts) {
      // Every part is at capacity (possible under tight slack): fall back to
      // the lightest part so the assignment always completes.
      best = static_cast<std::uint32_t>(
          std::min_element(res.part_weight.begin(), res.part_weight.end()) -
          res.part_weight.begin());
    }
    res.owner[v] = best;
    res.part_weight[best] += weight(v);
    assigned[v] = 1;
  }

  res.cut_edges = count_cut_edges(g, res.owner);
  return res;
}

std::size_t count_cut_edges(const Graph& g, std::span<const std::uint32_t> owner) {
  GV_CHECK(owner.size() == g.num_nodes(), "owner assignment size mismatch");
  std::size_t cut = 0;
  for (const Edge& e : g.edges()) {
    if (owner[e.a] != owner[e.b]) ++cut;
  }
  return cut;
}

}  // namespace gv
