// Descriptive statistics for graphs; backs Table I and the DC-SBM
// generator's parameter-matching tests.
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace gv {

struct GraphStats {
  std::uint32_t num_nodes = 0;
  std::size_t num_undirected_edges = 0;
  std::size_t num_directed_edges = 0;
  double density = 0.0;
  double avg_degree = 0.0;
  std::uint32_t max_degree = 0;
  std::uint32_t min_degree = 0;
  std::uint32_t isolated_nodes = 0;
  double degree_gini = 0.0;  // inequality of the degree distribution
};

GraphStats compute_stats(const Graph& g);

/// Edge homophily plus per-class label counts.
struct LabelStats {
  double edge_homophily = 0.0;
  std::vector<std::size_t> class_counts;
};

LabelStats compute_label_stats(const Graph& g, std::span<const std::uint32_t> labels,
                               std::uint32_t num_classes);

}  // namespace gv
