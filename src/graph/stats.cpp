#include "graph/stats.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace gv {

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_undirected_edges = g.num_edges();
  s.num_directed_edges = g.num_directed_edges();
  s.density = g.density();
  const auto deg = g.degrees();
  if (!deg.empty()) {
    s.max_degree = *std::max_element(deg.begin(), deg.end());
    s.min_degree = *std::min_element(deg.begin(), deg.end());
    s.avg_degree =
        std::accumulate(deg.begin(), deg.end(), 0.0) / static_cast<double>(deg.size());
    s.isolated_nodes = static_cast<std::uint32_t>(
        std::count(deg.begin(), deg.end(), 0u));
    // Gini coefficient of degrees (0 = uniform, ->1 = concentrated).
    std::vector<std::uint32_t> sorted = deg;
    std::sort(sorted.begin(), sorted.end());
    double cum = 0.0, weighted = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      weighted += static_cast<double>(i + 1) * sorted[i];
      cum += sorted[i];
    }
    if (cum > 0.0) {
      const double n = static_cast<double>(sorted.size());
      s.degree_gini = (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
    }
  }
  return s;
}

LabelStats compute_label_stats(const Graph& g, std::span<const std::uint32_t> labels,
                               std::uint32_t num_classes) {
  GV_CHECK(labels.size() == g.num_nodes(), "labels size mismatch");
  LabelStats s;
  s.edge_homophily = g.edge_homophily(labels);
  s.class_counts.assign(num_classes, 0);
  for (const std::uint32_t y : labels) {
    GV_CHECK(y < num_classes, "label out of range");
    s.class_counts[y] += 1;
  }
  return s;
}

}  // namespace gv
