// Greedy edge-cut graph partitioning for multi-enclave sharding.
//
// ShardVault splits one tenant's private adjacency across several enclaves;
// every cut edge later costs a boundary-embedding transfer over an attested
// enclave-to-enclave channel at every rectifier layer, so the partitioner
// minimizes the edge cut while keeping the per-part working set balanced.
// The algorithm is a deterministic BFS-ordered streaming greedy (LDG-style):
// nodes are visited in breadth-first order from high-degree seeds and each
// is assigned to the part with the most already-placed neighbors, damped by
// a load penalty so no part exceeds its weight capacity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace gv {

struct PartitionResult {
  /// Part id per node, in [0, num_parts).
  std::vector<std::uint32_t> owner;
  std::uint32_t num_parts = 0;
  /// Undirected edges whose endpoints land in different parts.
  std::size_t cut_edges = 0;
  /// Per-part total node weight (unit weights when none are supplied).
  std::vector<double> part_weight;
};

/// Partition `g` into `num_parts` parts.  `node_weights`, when non-empty,
/// must have one entry per node (e.g. estimated enclave bytes per node);
/// parts are balanced by total weight.  `slack` > 1 loosens the per-part
/// capacity, trading balance for a smaller cut.  Deterministic in its
/// inputs.  Throws gv::Error on bad arguments.
PartitionResult greedy_edge_cut_partition(const Graph& g, std::uint32_t num_parts,
                                          std::span<const double> node_weights = {},
                                          double slack = 1.1);

/// Number of undirected edges of `g` cut by an owner assignment.
std::size_t count_cut_edges(const Graph& g, std::span<const std::uint32_t> owner);

}  // namespace gv
