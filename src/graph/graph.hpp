// Undirected simple graph.
//
// Stores the canonical edge list (a < b, unique, no self-loops) plus a CSR
// neighbor index built lazily.  Edge counts follow the paper's Table I
// convention of counting *directed* edges (each undirected edge twice).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "tensor/csr.hpp"

namespace gv {

/// An undirected edge with endpoints a < b.
struct Edge {
  std::uint32_t a;
  std::uint32_t b;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Private adjacency in the Coordinate format the paper deploys inside the
/// enclave (Sec. IV-E): directed nonzero coordinates plus the precomputed
/// D̃^{-1/2} entries so normalization needs no extra pass at inference time.
struct CooAdjacency {
  std::uint32_t num_nodes = 0;
  std::vector<std::uint32_t> src;      // directed, includes both (a,b),(b,a) and self-loops
  std::vector<std::uint32_t> dst;
  std::vector<float> deg_inv_sqrt;     // per node, degrees include the self-loop
  std::size_t payload_bytes() const {
    return src.size() * sizeof(std::uint32_t) + dst.size() * sizeof(std::uint32_t) +
           deg_inv_sqrt.size() * sizeof(float);
  }
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::uint32_t num_nodes) : num_nodes_(num_nodes) {}

  /// Build from an arbitrary pair list: self-loops dropped, duplicates and
  /// reversed duplicates merged.
  static Graph from_pairs(std::uint32_t num_nodes,
                          std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs);

  std::uint32_t num_nodes() const { return num_nodes_; }
  /// Undirected edge count.
  std::size_t num_edges() const { return edges_.size(); }
  /// Directed edge count (Table I convention: 2 * undirected).
  std::size_t num_directed_edges() const { return edges_.size() * 2; }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Add an undirected edge; returns false if it already exists or is a
  /// self-loop / out of range.
  bool add_edge(std::uint32_t a, std::uint32_t b);

  /// Remove an undirected edge; returns false if it does not exist.
  bool remove_edge(std::uint32_t a, std::uint32_t b);

  /// Append `count` new isolated nodes (ids n .. n+count-1); GraphDrift
  /// attaches them through subsequent add_edge calls.
  void add_nodes(std::uint32_t count) { num_nodes_ += count; index_valid_ = false; }

  bool has_edge(std::uint32_t a, std::uint32_t b) const;

  /// Sorted neighbor list of v.
  std::span<const std::uint32_t> neighbors(std::uint32_t v) const;

  /// Degree of every node (self-loops excluded; none are stored).
  std::vector<std::uint32_t> degrees() const;

  /// Fraction of edges whose endpoints share a label (edge homophily).
  double edge_homophily(std::span<const std::uint32_t> labels) const;

  /// 2m / (n (n-1)), the undirected density.
  double density() const;

  /// Binary adjacency as CSR, optionally with self-loops.
  CsrMatrix adjacency_csr(bool add_self_loops = false) const;

  /// Symmetric GCN propagation matrix Â = D̃^{-1/2} (A + I) D̃^{-1/2}.
  CsrMatrix gcn_normalized() const;

  /// Enclave deployment form (COO + precomputed D̃^{-1/2}); see CooAdjacency.
  CooAdjacency to_coo_normalized() const;

  /// Rebuild the Â CSR from the enclave COO form (what the rectifier does
  /// once inside the TEE).
  static CsrMatrix csr_from_coo_normalized(const CooAdjacency& coo);

  /// Bytes of a dense float64 adjacency (Table I's DenseA column scale).
  static double dense_adjacency_mb(std::uint32_t num_nodes,
                                   std::size_t bytes_per_cell = 8);

 private:
  void ensure_index() const;

  std::uint32_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  // Lazy CSR neighbor index.
  mutable bool index_valid_ = false;
  mutable std::vector<std::int64_t> index_ptr_;
  mutable std::vector<std::uint32_t> index_adj_;
};

}  // namespace gv
