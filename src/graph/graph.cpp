#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gv {

Graph Graph::from_pairs(
    std::uint32_t num_nodes,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs) {
  Graph g(num_nodes);
  std::vector<Edge> edges;
  edges.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    if (a == b) continue;
    GV_CHECK(a < num_nodes && b < num_nodes, "edge endpoint out of range");
    edges.push_back({std::min(a, b), std::max(a, b)});
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  g.edges_ = std::move(edges);
  return g;
}

bool Graph::add_edge(std::uint32_t a, std::uint32_t b) {
  if (a == b || a >= num_nodes_ || b >= num_nodes_) return false;
  const Edge e{std::min(a, b), std::max(a, b)};
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it != edges_.end() && *it == e) return false;
  edges_.insert(it, e);
  index_valid_ = false;
  return true;
}

bool Graph::remove_edge(std::uint32_t a, std::uint32_t b) {
  if (a == b || a >= num_nodes_ || b >= num_nodes_) return false;
  const Edge e{std::min(a, b), std::max(a, b)};
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it == edges_.end() || !(*it == e)) return false;
  edges_.erase(it);
  index_valid_ = false;
  return true;
}

bool Graph::has_edge(std::uint32_t a, std::uint32_t b) const {
  if (a == b || a >= num_nodes_ || b >= num_nodes_) return false;
  const Edge e{std::min(a, b), std::max(a, b)};
  return std::binary_search(edges_.begin(), edges_.end(), e);
}

void Graph::ensure_index() const {
  if (index_valid_) return;
  index_ptr_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges_) {
    index_ptr_[e.a + 1] += 1;
    index_ptr_[e.b + 1] += 1;
  }
  for (std::uint32_t v = 0; v < num_nodes_; ++v) index_ptr_[v + 1] += index_ptr_[v];
  index_adj_.assign(edges_.size() * 2, 0);
  std::vector<std::int64_t> cursor(index_ptr_.begin(), index_ptr_.end() - 1);
  for (const Edge& e : edges_) {
    index_adj_[cursor[e.a]++] = e.b;
    index_adj_[cursor[e.b]++] = e.a;
  }
  for (std::uint32_t v = 0; v < num_nodes_; ++v) {
    std::sort(index_adj_.begin() + index_ptr_[v], index_adj_.begin() + index_ptr_[v + 1]);
  }
  index_valid_ = true;
}

std::span<const std::uint32_t> Graph::neighbors(std::uint32_t v) const {
  GV_CHECK(v < num_nodes_, "node out of range");
  ensure_index();
  return {index_adj_.data() + index_ptr_[v],
          static_cast<std::size_t>(index_ptr_[v + 1] - index_ptr_[v])};
}

std::vector<std::uint32_t> Graph::degrees() const {
  std::vector<std::uint32_t> deg(num_nodes_, 0);
  for (const Edge& e : edges_) {
    deg[e.a] += 1;
    deg[e.b] += 1;
  }
  return deg;
}

double Graph::edge_homophily(std::span<const std::uint32_t> labels) const {
  GV_CHECK(labels.size() == num_nodes_, "labels size mismatch");
  if (edges_.empty()) return 0.0;
  std::size_t same = 0;
  for (const Edge& e : edges_) {
    if (labels[e.a] == labels[e.b]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(edges_.size());
}

double Graph::density() const {
  if (num_nodes_ < 2) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) /
         (static_cast<double>(num_nodes_) * (num_nodes_ - 1));
}

CsrMatrix Graph::adjacency_csr(bool add_self_loops) const {
  std::vector<CooEntry> entries;
  entries.reserve(edges_.size() * 2 + (add_self_loops ? num_nodes_ : 0));
  for (const Edge& e : edges_) {
    entries.push_back({e.a, e.b, 1.0f});
    entries.push_back({e.b, e.a, 1.0f});
  }
  if (add_self_loops) {
    for (std::uint32_t v = 0; v < num_nodes_; ++v) entries.push_back({v, v, 1.0f});
  }
  return CsrMatrix::from_coo(num_nodes_, num_nodes_, std::move(entries));
}

CsrMatrix Graph::gcn_normalized() const {
  // Â(i,j) = (A+I)(i,j) / sqrt(d̃_i d̃_j)  with d̃ = degree + 1.
  const auto deg = degrees();
  std::vector<float> inv_sqrt(num_nodes_);
  for (std::uint32_t v = 0; v < num_nodes_; ++v) {
    inv_sqrt[v] = 1.0f / std::sqrt(static_cast<float>(deg[v] + 1));
  }
  std::vector<CooEntry> entries;
  entries.reserve(edges_.size() * 2 + num_nodes_);
  for (const Edge& e : edges_) {
    const float w = inv_sqrt[e.a] * inv_sqrt[e.b];
    entries.push_back({e.a, e.b, w});
    entries.push_back({e.b, e.a, w});
  }
  for (std::uint32_t v = 0; v < num_nodes_; ++v) {
    entries.push_back({v, v, inv_sqrt[v] * inv_sqrt[v]});
  }
  return CsrMatrix::from_coo(num_nodes_, num_nodes_, std::move(entries));
}

CooAdjacency Graph::to_coo_normalized() const {
  CooAdjacency coo;
  coo.num_nodes = num_nodes_;
  const auto deg = degrees();
  coo.deg_inv_sqrt.resize(num_nodes_);
  for (std::uint32_t v = 0; v < num_nodes_; ++v) {
    coo.deg_inv_sqrt[v] = 1.0f / std::sqrt(static_cast<float>(deg[v] + 1));
  }
  coo.src.reserve(edges_.size() * 2 + num_nodes_);
  coo.dst.reserve(edges_.size() * 2 + num_nodes_);
  for (const Edge& e : edges_) {
    coo.src.push_back(e.a);
    coo.dst.push_back(e.b);
    coo.src.push_back(e.b);
    coo.dst.push_back(e.a);
  }
  for (std::uint32_t v = 0; v < num_nodes_; ++v) {
    coo.src.push_back(v);
    coo.dst.push_back(v);
  }
  return coo;
}

CsrMatrix Graph::csr_from_coo_normalized(const CooAdjacency& coo) {
  GV_CHECK(coo.src.size() == coo.dst.size(), "COO src/dst size mismatch");
  GV_CHECK(coo.deg_inv_sqrt.size() == coo.num_nodes, "COO degree vector size mismatch");
  std::vector<CooEntry> entries;
  entries.reserve(coo.src.size());
  for (std::size_t i = 0; i < coo.src.size(); ++i) {
    const std::uint32_t s = coo.src[i], d = coo.dst[i];
    GV_CHECK(s < coo.num_nodes && d < coo.num_nodes, "COO index out of range");
    entries.push_back({s, d, coo.deg_inv_sqrt[s] * coo.deg_inv_sqrt[d]});
  }
  return CsrMatrix::from_coo(coo.num_nodes, coo.num_nodes, std::move(entries));
}

double Graph::dense_adjacency_mb(std::uint32_t num_nodes, std::size_t bytes_per_cell) {
  return static_cast<double>(num_nodes) * num_nodes *
         static_cast<double>(bytes_per_cell) / (1024.0 * 1024.0);
}

}  // namespace gv
