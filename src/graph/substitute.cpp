#include "graph/substitute.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/normalize.hpp"

namespace gv {

void scatter_similarities(const CsrMatrix& features, const CsrMatrix& features_t,
                          std::uint32_t node, std::vector<float>& sims) {
  GV_CHECK(node < features.rows(), "node out of range");
  GV_CHECK(features_t.rows() == features.cols() && features_t.cols() == features.rows(),
           "features_t must be the transpose of features");
  sims.assign(features.rows(), 0.0f);
  const auto& rp = features.row_ptr();
  const auto& ci = features.col_idx();
  const auto& va = features.values();
  const auto& trp = features_t.row_ptr();
  const auto& tci = features_t.col_idx();
  const auto& tva = features_t.values();
  for (std::int64_t p = rp[node]; p < rp[node + 1]; ++p) {
    const std::uint32_t f = ci[p];
    const float v = va[p];
    for (std::int64_t q = trp[f]; q < trp[f + 1]; ++q) {
      sims[tci[q]] += v * tva[q];
    }
  }
}

namespace {
/// L2-normalized copy of the features plus its transpose, shared by the
/// KNN and cosine builders.
struct NormalizedFeatures {
  CsrMatrix x;
  CsrMatrix xt;
};

NormalizedFeatures normalize_features(const CsrMatrix& features) {
  NormalizedFeatures nf;
  nf.x = features;
  l2_normalize_rows_csr(nf.x);
  nf.xt = nf.x.transposed();
  return nf;
}
}  // namespace

Graph build_knn_graph(const CsrMatrix& features, std::uint32_t k) {
  GV_CHECK(k > 0, "KNN substitute graph requires k > 0");
  const std::uint32_t n = static_cast<std::uint32_t>(features.rows());
  const auto nf = normalize_features(features);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs(
      static_cast<std::size_t>(n) * k, {0, 0});
#pragma omp parallel
  {
    std::vector<float> sims;
    std::vector<std::uint32_t> order;
#pragma omp for schedule(dynamic, 32)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      scatter_similarities(nf.x, nf.xt, static_cast<std::uint32_t>(i), sims);
      sims[i] = -2.0f;  // exclude self
      // Partial top-k selection over candidates with positive similarity.
      order.clear();
      for (std::uint32_t j = 0; j < n; ++j) {
        if (sims[j] > 0.0f) order.push_back(j);
      }
      const std::size_t take = std::min<std::size_t>(k, order.size());
      std::partial_sort(order.begin(), order.begin() + take, order.end(),
                        [&](std::uint32_t a, std::uint32_t b) { return sims[a] > sims[b]; });
      for (std::size_t t = 0; t < take; ++t) {
        pairs[static_cast<std::size_t>(i) * k + t] = {static_cast<std::uint32_t>(i), order[t]};
      }
      // Unused slots stay as (0,0) self-pairs, dropped by from_pairs.
      for (std::size_t t = take; t < k; ++t) {
        pairs[static_cast<std::size_t>(i) * k + t] = {static_cast<std::uint32_t>(i),
                                                      static_cast<std::uint32_t>(i)};
      }
    }
  }
  return Graph::from_pairs(n, pairs);
}

Graph build_cosine_graph(const CsrMatrix& features, float tau,
                         std::size_t max_edges, Rng& rng) {
  GV_CHECK(tau > 0.0f, "cosine substitute graph requires tau > 0");
  const std::uint32_t n = static_cast<std::uint32_t>(features.rows());
  const auto nf = normalize_features(features);

  // Per-row candidate lists are gathered in parallel, then concatenated in
  // row order so the result is deterministic regardless of scheduling.
  std::vector<std::vector<std::uint32_t>> row_hits(n);
#pragma omp parallel
  {
    std::vector<float> sims;
#pragma omp for schedule(dynamic, 32)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      scatter_similarities(nf.x, nf.xt, static_cast<std::uint32_t>(i), sims);
      for (std::uint32_t j = static_cast<std::uint32_t>(i) + 1; j < n; ++j) {
        if (sims[j] >= tau) row_hits[i].push_back(j);
      }
    }
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> hits;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (const auto j : row_hits[i]) hits.push_back({i, j});
  }
  const std::size_t cap = max_edges == 0 ? SIZE_MAX : max_edges;
  if (hits.size() > cap) {
    // Deterministic subsample (paper: sample down to the real density).
    rng.shuffle(hits);
    hits.resize(cap);
  }
  return Graph::from_pairs(n, hits);
}

Graph build_random_graph(std::uint32_t num_nodes, std::size_t num_edges, Rng& rng) {
  GV_CHECK(num_nodes >= 2, "random graph requires at least 2 nodes");
  const std::size_t max_possible =
      static_cast<std::size_t>(num_nodes) * (num_nodes - 1) / 2;
  const std::size_t target = std::min(num_edges, max_possible);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(target + target / 8);
  // Rejection sampling with a hash of accepted pairs; fine while the target
  // density stays far below 1 (all our graphs are very sparse).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> accepted;
  accepted.reserve(target);
  Graph g(num_nodes);
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t attempt_cap = target * 64 + 1024;
  while (added < target && attempts < attempt_cap) {
    ++attempts;
    const auto a = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
    const auto b = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
    if (a == b) continue;
    pairs.push_back({a, b});
    ++added;
  }
  Graph built = Graph::from_pairs(num_nodes, pairs);
  // Duplicates may have shrunk the edge set; top up until the target
  // is met (or we hit the attempt cap).
  attempts = 0;
  while (built.num_edges() < target && attempts < attempt_cap) {
    ++attempts;
    const auto a = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
    const auto b = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
    built.add_edge(a, b);
  }
  return built;
}

}  // namespace gv
