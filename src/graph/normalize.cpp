#include "graph/normalize.hpp"

#include <cmath>

namespace gv {

CsrMatrix row_normalize(const CsrMatrix& a) {
  auto entries = a.to_coo();
  std::vector<double> row_sum(a.rows(), 0.0);
  for (const auto& e : entries) row_sum[e.row] += e.value;
  for (auto& e : entries) {
    if (row_sum[e.row] != 0.0) {
      e.value = static_cast<float>(e.value / row_sum[e.row]);
    }
  }
  return CsrMatrix::from_coo(a.rows(), a.cols(), std::move(entries));
}

namespace {
template <typename NormFn>
void normalize_rows_inplace(CsrMatrix& a, NormFn norm_of_row) {
  auto& values = a.mutable_values();
  const auto& rp = a.row_ptr();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double norm = norm_of_row(values, rp[r], rp[r + 1]);
    if (norm < 1e-24) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (std::int64_t p = rp[r]; p < rp[r + 1]; ++p) values[p] *= inv;
  }
}
}  // namespace

void l2_normalize_rows_csr(CsrMatrix& a) {
  normalize_rows_inplace(a, [](const std::vector<float>& v, std::int64_t b, std::int64_t e) {
    double acc = 0.0;
    for (std::int64_t p = b; p < e; ++p) acc += static_cast<double>(v[p]) * v[p];
    return std::sqrt(acc);
  });
}

void l1_normalize_rows_csr(CsrMatrix& a) {
  normalize_rows_inplace(a, [](const std::vector<float>& v, std::int64_t b, std::int64_t e) {
    double acc = 0.0;
    for (std::int64_t p = b; p < e; ++p) acc += std::fabs(v[p]);
    return acc;
  });
}

}  // namespace gv
