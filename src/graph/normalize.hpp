// Normalization helpers for adjacency and feature matrices.
#pragma once

#include "tensor/csr.hpp"

namespace gv {

/// Row-stochastic normalization D^{-1} A of a sparse matrix (rows with no
/// nonzeros are left as-is).
CsrMatrix row_normalize(const CsrMatrix& a);

/// L2-normalize every row of a sparse matrix in place.
void l2_normalize_rows_csr(CsrMatrix& a);

/// L1-normalize every row of a sparse matrix in place (bag-of-words style,
/// matching the Planetoid preprocessing of the paper's citation datasets).
void l1_normalize_rows_csr(CsrMatrix& a);

}  // namespace gv
