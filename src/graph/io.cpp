#include "graph/io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace gv {

namespace {
std::ifstream open_in(const std::string& path) {
  std::ifstream f(path);
  GV_CHECK(f.good(), "cannot open file for reading: " + path);
  return f;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  GV_CHECK(f.good(), "cannot open file for writing: " + path);
  return f;
}

/// Next non-comment, non-empty line; false at EOF.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    return true;
  }
  return false;
}
}  // namespace

void save_graph(const Graph& g, const std::string& path) {
  auto f = open_out(path);
  f << "graph " << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) f << "e " << e.a << ' ' << e.b << '\n';
  GV_CHECK(f.good(), "failed writing graph file: " + path);
}

Graph load_graph(const std::string& path) {
  auto f = open_in(path);
  std::string line;
  GV_CHECK(next_line(f, line), "empty graph file: " + path);
  std::istringstream head(line);
  std::string tag;
  std::uint32_t n = 0;
  std::size_t m = 0;
  head >> tag >> n >> m;
  GV_CHECK(tag == "graph" && !head.fail(), "malformed graph header in " + path);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(m);
  while (next_line(f, line)) {
    std::istringstream ls(line);
    std::uint32_t a = 0, b = 0;
    ls >> tag >> a >> b;
    GV_CHECK(tag == "e" && !ls.fail(), "malformed edge line in " + path);
    pairs.push_back({a, b});
  }
  GV_CHECK(pairs.size() == m, "edge count mismatch in " + path);
  return Graph::from_pairs(n, pairs);
}

void save_csr(const CsrMatrix& m, const std::string& path) {
  auto f = open_out(path);
  f << "csr " << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  for (const auto& e : m.to_coo()) {
    f << "r " << e.row << ' ' << e.col << ' ' << e.value << '\n';
  }
  GV_CHECK(f.good(), "failed writing CSR file: " + path);
}

CsrMatrix load_csr(const std::string& path) {
  auto f = open_in(path);
  std::string line;
  GV_CHECK(next_line(f, line), "empty CSR file: " + path);
  std::istringstream head(line);
  std::string tag;
  std::size_t rows = 0, cols = 0, nnz = 0;
  head >> tag >> rows >> cols >> nnz;
  GV_CHECK(tag == "csr" && !head.fail(), "malformed CSR header in " + path);
  std::vector<CooEntry> entries;
  entries.reserve(nnz);
  while (next_line(f, line)) {
    std::istringstream ls(line);
    std::uint32_t r = 0, c = 0;
    float v = 0.0f;
    ls >> tag >> r >> c >> v;
    GV_CHECK(tag == "r" && !ls.fail(), "malformed CSR entry in " + path);
    entries.push_back({r, c, v});
  }
  GV_CHECK(entries.size() == nnz, "nnz mismatch in " + path);
  return CsrMatrix::from_coo(rows, cols, std::move(entries));
}

}  // namespace gv
