#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include "common/annotations.hpp"

namespace gv {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex GV_LOCK_RANK(gv::lockrank::kTelemetry);

LogLevel level_from_env() {
  const char* env = std::getenv("GNNVAULT_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

struct EnvInit {
  EnvInit() { g_level.store(level_from_env()); }
};
EnvInit g_env_init;
}  // namespace

LogLevel log_level() { return g_level.load(); }
void set_log_level(LogLevel level) { g_level.store(level); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  GV_RANK_SCOPE(lockrank::kTelemetry);
  std::fprintf(stderr, "[gnnvault %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace gv
