// Environment-variable configuration knobs for the bench harness.
//
//   GNNVAULT_BENCH_FAST=1   -> shrink datasets/epochs for smoke runs
//   GNNVAULT_SEED=<u64>     -> global experiment seed (default 42)
//   GNNVAULT_EPOCHS=<n>     -> override training epochs
#pragma once

#include <cstdint>
#include <string>

namespace gv {

/// Read an environment variable, or `fallback` if unset/invalid.
std::int64_t env_int(const char* name, std::int64_t fallback);
double env_double(const char* name, double fallback);
std::string env_string(const char* name, const std::string& fallback);

/// True when GNNVAULT_BENCH_FAST is set to a non-zero value.
bool bench_fast_mode();

/// Global experiment seed (GNNVAULT_SEED, default 42).
std::uint64_t experiment_seed();

}  // namespace gv
