// Deterministic pseudo-random number generation.
//
// All stochastic pieces of GNNVault (graph generators, weight init, dropout,
// negative-edge samplers) draw from gv::Rng so that every experiment in the
// paper reproduction is bit-reproducible given a seed.  The generator is
// xoshiro256** seeded via SplitMix64, the de-facto standard for fast
// high-quality non-cryptographic randomness.
#pragma once

#include <cstdint>
#include <vector>

namespace gv {

/// SplitMix64 step; used to expand a 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached spare).
  double normal();
  /// Normal with mean/stddev.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Geometric-ish power-law-ish positive value used by the DC-SBM degree
  /// corrector: Pareto(alpha) clipped to [1, cap].
  double pareto(double alpha, double cap);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (Floyd's algorithm); k <= n.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n, std::uint32_t k);

  /// Derive an independent child generator (for parallel determinism).
  Rng split();

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace gv
