// VaultLint source annotation vocabulary.
//
// The paper's confidentiality claim — the private graph, features, and
// labels never leave an enclave except sealed or over an attested channel —
// and the fleet's lock discipline used to live in reviewer memory.  These
// macros turn both into machine-checkable structure: tools/vault_lint
// (libclang when available, a built-in C++ token frontend otherwise) reads
// them off the source and enforces five checks over every translation unit
// in compile_commands.json:
//
//   secret-egress   values whose declaration carries GV_SECRET (types,
//                   fields, locals/params of secret types, functions whose
//                   return is secret) must not flow into untrusted sinks —
//                   GV_LOG_* streams, TraceSpan args, MetricsRegistry
//                   names/labels, FlightRecorder detail strings, raw
//                   OneWayChannel pushes — except through GV_BOUNDARY_OK
//                   seal/attested-channel APIs.
//   channel-kind    every AttestedChannel PayloadKind enumerator must have
//                   a pad-policy entry in kKindPolicies, a kind_name()
//                   switch case, and a per-kind byte-audit accessor case.
//   ecall-abi       structs marked GV_ECALL_ABI (they cross the simulated
//                   enclave boundary by value, i.e. would be EDL-marshaled
//                   in a real SGX port) must be trivially copyable with no
//                   host pointers/references.
//   lock-rank       nested lock_guard/unique_lock/shared_lock/MutexLock
//                   acquisitions must respect the GV_LOCK_RANK declared on
//                   the mutex members (monotone non-decreasing).
//   suppression     GV_LINT_ALLOW must name a known check and carry a
//                   non-empty reason.
//
// Cost: on clang the macros expand to zero-codegen `annotate` attributes
// (the lint's libclang frontend reads them from the AST); on every other
// compiler they expand to nothing and the token frontend reads the macro
// text straight from the source.  Either way the compiled binary is
// byte-identical with or without them.
#pragma once

#include <cstddef>

#if defined(__clang__)
#define GV_ANNOTATE(text) __attribute__((annotate(text)))
#else
#define GV_ANNOTATE(text)
#endif

/// Marks a type, field, local, or function (meaning: its return value) as
/// confidential enclave state: private adjacency, feature/label matrices,
/// session/sealing keys.  vault_lint's secret-egress check refuses to let
/// such values reach an untrusted sink.
#define GV_SECRET GV_ANNOTATE("gv::secret")

/// Marks a type or function as enclave-resident (trusted).  Secrets may
/// flow freely into GV_ENCLAVE-marked callees; the egress check only fires
/// at untrusted sinks.
#define GV_ENCLAVE GV_ANNOTATE("gv::enclave")

/// Marks a function as an APPROVED confidentiality boundary: it seals,
/// attests, or otherwise protects its arguments before they leave the
/// trust domain (Enclave::seal, AttestedChannel::send_*).  Secrets may be
/// passed to it without tripping secret-egress.
#define GV_BOUNDARY_OK GV_ANNOTATE("gv::boundary_ok")

/// Marks a struct as crossing the (simulated) enclave ABI by value — the
/// structs a real SGX port would marshal through an EDL ecall/ocall
/// signature.  vault_lint's ecall-abi check requires every field to be
/// trivially copyable with no host pointers or references.
#define GV_ECALL_ABI GV_ANNOTATE("gv::ecall_abi")

/// Declares the acquisition rank of a mutex member.  vault_lint's
/// lock-rank check flags any lexically nested acquisition whose rank is
/// LOWER than a rank already held; the runtime validator (below) asserts
/// the same invariant across function boundaries in sanitizer builds.
/// Use the gv::lockrank constants so the ordering lives in one table.
#define GV_LOCK_RANK(rank) GV_ANNOTATE("gv::lock_rank=" #rank)

/// Suppress one vault_lint finding, with a reason.  Applies to the line it
/// appears on and the line immediately below (so it can sit above the
/// offending statement) or, inside a class body, to the member declared on
/// its line.  Both arguments must be string literals; an empty reason is a
/// compile error AND a suppression-hygiene finding.
#define GV_LINT_ALLOW(check, reason)                                       \
  static_assert(sizeof(check) > 1 && sizeof(reason) > 1,                   \
                "GV_LINT_ALLOW needs a check name and a non-empty reason")

// --- Lock-rank map ----------------------------------------------------------
//
// Ranks must be acquired in non-decreasing order on any one thread.  Equal
// ranks are allowed to nest (distinct instances of a per-shard / per-replica
// mutex, or sequential ecalls into DIFFERENT enclaves); acquiring a rank
// strictly below the top of the held stack is an inversion.  The map, from
// outermost (control plane) to innermost (leaf telemetry):
namespace gv::lockrank {
inline constexpr int kRegistry = 10;       // VaultRegistry::mu_
inline constexpr int kServerControl = 20;  // ShardedVaultServer::promotion_mu_
inline constexpr int kReplicate = 24;      // ReplicaManager::replicate_mu_
inline constexpr int kServerState = 28;    // server drift_mu_ (health tracker)
inline constexpr int kReplicaSlot = 32;    // Replica::mu, promote_mu_ (held
                                           // across deployment sends / adopt,
                                           // so BELOW kDeployment)
inline constexpr int kDeployment = 40;     // ShardedVaultDeployment::infer_mu_
inline constexpr int kShardAccess = 44;    // Shard::access_mu (shared)
inline constexpr int kMoveFence = 52;      // move_mu_ / owner_mu_ / handler_mu_
inline constexpr int kServerSnap = 56;     // server snap_mu_ (feature snapshot;
                                           // a leaf the update_graph
                                           // before-unfence hook takes while
                                           // the deployment holds kDeployment)
inline constexpr int kEnclaveEntry = 60;   // Enclave::entry_mu_ (TCS)
inline constexpr int kEnclaveMeter = 64;   // Enclave::meter_mu_
inline constexpr int kChannel = 70;        // AttestedChannel / OneWayChannel /
                                           // MemoryLedger mutexes
inline constexpr int kQueue = 80;          // MicroBatchQueue::mu_, LabelCache
                                           // (serving-path leaves)
inline constexpr int kJobQueue = 82;       // JobSystem per-worker deques + idle
                                           // signal; ServeFrontEnd batch pool
                                           // (posted to while kQueue-held code
                                           // has already released, but ABOVE
                                           // kQueue so a post under a serving
                                           // leaf would still be legal)
inline constexpr int kTokenState = 84;     // SubmitToken shared state + pool
                                           // (resolved from job workers after
                                           // every other serving lock is
                                           // dropped)
inline constexpr int kTelemetry = 90;      // metrics / trace / flight recorder /
                                           // router + server stats mutexes

/// Stable name of a rank constant ("kRegistry", ...), or "unranked" for any
/// value not in the table.  EngineScope's lock-contention profiler labels
/// its `lock.wait_seconds{rank}` histograms with these, so the dynamic
/// contention picture lines up with the static rank table above.
const char* lock_rank_name(int rank);
}  // namespace gv::lockrank

// --- Runtime lock-rank validator -------------------------------------------
//
// The static check sees one function body at a time; the runtime validator
// sees the whole call stack.  GV_RANK_SCOPE(rank) placed immediately after
// a lock acquisition pushes the rank onto a thread-local stack and asserts
// monotone (non-strict) acquisition; the scope pops it on exit, mirroring
// the guard's lifetime.  Compiled into sanitizer builds via the CMake
// option GV_VALIDATE_LOCK_RANKS (-DGV_LOCK_RANK_VALIDATE=1); in normal
// builds the macro costs nothing but still constant-checks its argument.
namespace gv::lint {

/// Called on an inversion: `held` is the top of the thread's rank stack,
/// `acquiring` the offending rank, `what` the stringized rank expression.
/// The default handler prints both and aborts; tests install a counter.
using RankViolationHandler = void (*)(int held, int acquiring,
                                      const char* what);
RankViolationHandler set_rank_violation_handler(RankViolationHandler h);

class RankScope {
 public:
  explicit RankScope(int rank, const char* what = "");
  ~RankScope();

  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

  /// Depth of the calling thread's held-rank stack (tests).
  static std::size_t held_depth();
  /// Top of the calling thread's held-rank stack, or -1 when empty.
  static int top_rank();

 private:
  int rank_;
};

}  // namespace gv::lint

#define GV_LINT_CONCAT_INNER(a, b) a##b
#define GV_LINT_CONCAT(a, b) GV_LINT_CONCAT_INNER(a, b)

#if defined(GV_LOCK_RANK_VALIDATE)
#define GV_RANK_SCOPE(rank) \
  ::gv::lint::RankScope GV_LINT_CONCAT(gv_rank_scope_, __LINE__) { (rank), #rank }
#else
#define GV_RANK_SCOPE(rank) \
  static_assert((rank) >= 0, "lock ranks are non-negative")
#endif
