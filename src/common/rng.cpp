#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace gv {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  GV_CHECK(n > 0, "uniform_index requires n > 0");
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GV_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  return lo + static_cast<std::int64_t>(
                  uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::pareto(double alpha, double cap) {
  GV_CHECK(alpha > 0.0, "pareto requires alpha > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return std::min(cap, std::pow(u, -1.0 / alpha));
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  GV_CHECK(k <= n, "cannot sample more elements than the population size");
  // Floyd's algorithm: O(k) expected insertions.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(uniform_index(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

}  // namespace gv
