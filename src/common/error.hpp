// Error handling primitives for GNNVault.
//
// The library throws `gv::Error` for contract violations that a caller can
// plausibly recover from (bad shapes, out-of-range arguments, malformed
// inputs).  Internal invariants use GV_ASSERT which also throws, so unit
// tests can exercise failure paths without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace gv {

/// Exception type thrown by all GNNVault subsystems.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* file, int line, const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}
}  // namespace detail

}  // namespace gv

/// Check a caller-facing precondition; throws gv::Error when violated.
#define GV_CHECK(cond, msg)                                   \
  do {                                                        \
    if (!(cond)) ::gv::detail::raise(__FILE__, __LINE__, msg); \
  } while (0)

/// Check an internal invariant; throws gv::Error when violated.
#define GV_ASSERT(cond, msg)                                  \
  do {                                                        \
    if (!(cond)) ::gv::detail::raise(__FILE__, __LINE__, std::string("internal invariant violated: ") + (msg)); \
  } while (0)
