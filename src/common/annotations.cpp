#include "common/annotations.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace gv::lockrank {

const char* lock_rank_name(int rank) {
  switch (rank) {
    case kRegistry: return "kRegistry";
    case kServerControl: return "kServerControl";
    case kReplicate: return "kReplicate";
    case kServerState: return "kServerState";
    case kReplicaSlot: return "kReplicaSlot";
    case kDeployment: return "kDeployment";
    case kShardAccess: return "kShardAccess";
    case kMoveFence: return "kMoveFence";
    case kServerSnap: return "kServerSnap";
    case kEnclaveEntry: return "kEnclaveEntry";
    case kEnclaveMeter: return "kEnclaveMeter";
    case kChannel: return "kChannel";
    case kQueue: return "kQueue";
    case kJobQueue: return "kJobQueue";
    case kTokenState: return "kTokenState";
    case kTelemetry: return "kTelemetry";
    default: return "unranked";
  }
}

}  // namespace gv::lockrank

namespace gv::lint {
namespace {

void default_handler(int held, int acquiring, const char* what) {
  std::fprintf(stderr,
               "gv::lint: lock-rank inversion: acquiring rank %d (%s) while "
               "holding rank %d\n",
               acquiring, what, held);
  std::abort();
}

std::atomic<RankViolationHandler> g_handler{&default_handler};

// One stack per thread; RankScope is strictly RAII so LIFO order holds.
thread_local std::vector<int> t_held;

}  // namespace

RankViolationHandler set_rank_violation_handler(RankViolationHandler h) {
  return g_handler.exchange(h != nullptr ? h : &default_handler);
}

RankScope::RankScope(int rank, const char* what) : rank_(rank) {
  if (!t_held.empty() && rank < t_held.back()) {
    g_handler.load()(t_held.back(), rank, what);
  }
  t_held.push_back(rank);
}

RankScope::~RankScope() { t_held.pop_back(); }

std::size_t RankScope::held_depth() { return t_held.size(); }

int RankScope::top_rank() { return t_held.empty() ? -1 : t_held.back(); }

}  // namespace gv::lint
