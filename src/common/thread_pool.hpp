// Small work-stealing-free thread pool with a parallel_for helper.
//
// Dense GEMM uses OpenMP directly; the pool exists for coarse-grained task
// parallelism in the benchmark harness (e.g. training several independent
// models concurrently) where nested OpenMP regions would oversubscribe.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>
#include "common/annotations.hpp"

namespace gv {

class ThreadPool {
 public:
  /// Creates `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      GV_RANK_SCOPE(lockrank::kQueue);
      if (stopping_) throw std::runtime_error("ThreadPool is shutting down");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool; blocks until all complete.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_ GV_LOCK_RANK(gv::lockrank::kQueue);
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace gv
