#include "common/thread_pool.hpp"

#include <atomic>

namespace gv {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GV_RANK_SCOPE(lockrank::kQueue);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      GV_RANK_SCOPE(lockrank::kQueue);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(n, size());
  std::vector<std::future<void>> futs;
  futs.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futs.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  // Drain every future before rethrowing: the task lambdas capture `next`,
  // `fn`, and `n` by reference, so no worker may still be running when this
  // frame unwinds. Only the first exception is propagated.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gv
