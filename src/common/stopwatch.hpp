// Wall-clock stopwatch used by the benchmark harness and the SGX cost
// accounting (for the parts that run natively rather than being modeled).
#pragma once

#include <chrono>

namespace gv {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gv
