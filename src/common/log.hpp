// Minimal leveled logger.  Benches and examples use INFO; tests run at WARN.
#pragma once

#include <sstream>
#include <string>

namespace gv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold (default: Info; override with env GNNVAULT_LOG).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit a single log line (thread-safe).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

}  // namespace gv

#define GV_LOG_DEBUG ::gv::detail::LogStream(::gv::LogLevel::kDebug)
#define GV_LOG_INFO ::gv::detail::LogStream(::gv::LogLevel::kInfo)
#define GV_LOG_WARN ::gv::detail::LogStream(::gv::LogLevel::kWarn)
#define GV_LOG_ERROR ::gv::detail::LogStream(::gv::LogLevel::kError)
