// Clang Thread Safety Analysis capability macros + annotated mutex wrappers.
//
// libstdc++'s std::mutex carries no capability attribute, so clang's
// -Wthread-safety cannot reason about it directly.  gv::Mutex wraps it with
// the capability annotations, gv::MutexLock is the annotated scoped guard,
// and gv::CondVar is a condition_variable_any that waits directly on a
// gv::Mutex.  On GCC (and on clang with the analysis off) everything
// compiles to exactly the std:: equivalents — the wrappers are header-only
// forwarding shims.
//
// Usage:
//   gv::Mutex mu_;
//   std::vector<T> items_ GV_GUARDED_BY(mu_);
//   void drain_locked() GV_REQUIRES(mu_);
//
// CI builds the tree with clang and -Werror=thread-safety; see
// docs/static_analysis.md.
//
// EngineScope contention profiler: a gv::Mutex optionally carries its
// lock-rank at runtime (pass the gv::lockrank constant to the constructor,
// next to the GV_LOCK_RANK annotation that carries it statically).  When
// the profiler is enabled — GNNVAULT_LOCKPROF=1 at first use, or
// lockprof::set_enabled(true) — lock() takes a try_lock fast path and, on
// contention, times the blocking wait and records it into the global
// MetricsRegistry as `lock.wait_seconds{rank}` plus a
// `lock.contended{rank}` counter, keyed by gv::lockrank::lock_rank_name.
// Disabled (the default), the probe is ONE relaxed atomic load per lock()
// and writes nothing anywhere; bench/obs_overhead.cpp pins the enabled
// cost.  Instruments are pre-resolved once at enable time, so recording a
// contended wait never takes the registry's own (profiled) mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define GV_TSA(x) __attribute__((x))
#else
#define GV_TSA(x)
#endif

#define GV_CAPABILITY(x) GV_TSA(capability(x))
#define GV_SCOPED_CAPABILITY GV_TSA(scoped_lockable)
#define GV_GUARDED_BY(x) GV_TSA(guarded_by(x))
#define GV_PT_GUARDED_BY(x) GV_TSA(pt_guarded_by(x))
#define GV_REQUIRES(...) GV_TSA(requires_capability(__VA_ARGS__))
#define GV_REQUIRES_SHARED(...) GV_TSA(requires_shared_capability(__VA_ARGS__))
#define GV_ACQUIRE(...) GV_TSA(acquire_capability(__VA_ARGS__))
#define GV_RELEASE(...) GV_TSA(release_capability(__VA_ARGS__))
#define GV_TRY_ACQUIRE(...) GV_TSA(try_acquire_capability(__VA_ARGS__))
#define GV_EXCLUDES(...) GV_TSA(locks_excluded(__VA_ARGS__))
#define GV_RETURN_CAPABILITY(x) GV_TSA(lock_returned(x))
#define GV_NO_THREAD_SAFETY_ANALYSIS GV_TSA(no_thread_safety_analysis)

namespace gv {

namespace lockprof {

/// Tri-state: -1 unseeded (read GNNVAULT_LOCKPROF on first probe), else
/// 0/1.  Inline so the disabled check is one relaxed load, no call.
extern std::atomic<int> g_state;

/// Slow path of enabled(): seed g_state from the environment (and resolve
/// the per-rank instruments if it comes up enabled).
bool enabled_slow();

inline bool enabled() {
  const int s = g_state.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return enabled_slow();
}

/// Runtime toggle (tests / benches).  Enabling resolves the per-rank
/// `lock.wait_seconds{rank}` / `lock.contended{rank}` instruments in the
/// global MetricsRegistry once; recording afterwards is atomics only.
void set_enabled(bool on);

/// Lifetime counts while the profiler was enabled (atomic reads; the
/// overhead-pin bench models its cost per profiled acquisition).
std::uint64_t profiled_acquisitions();
std::uint64_t contended_acquisitions();

}  // namespace lockprof

/// std::mutex with clang capability annotations.  Also a BasicLockable, so
/// std::unique_lock<gv::Mutex> and gv::CondVar::wait work unchanged.
class GV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Rank-carrying form: pass the same gv::lockrank constant the member's
  /// GV_LOCK_RANK annotation names, so contended waits land in the right
  /// `lock.wait_seconds{rank}` histogram.
  explicit Mutex(int rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GV_ACQUIRE() {
    if (lockprof::enabled()) {
      profiled_lock();
      return;
    }
    mu_.lock();
  }
  void unlock() GV_RELEASE() { mu_.unlock(); }
  bool try_lock() GV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  int rank() const { return rank_; }

  /// Escape hatch for APIs that need the raw handle; using it bypasses the
  /// analysis AND the contention probe, so prefer MutexLock / CondVar.
  std::mutex& native() GV_RETURN_CAPABILITY(this) { return mu_; }

 private:
  /// try_lock fast path; on contention, time the blocking wait and record
  /// it under this mutex's rank.  Out of line: the disabled hot path stays
  /// a load + call-free mu_.lock().
  void profiled_lock();

  std::mutex mu_;
  int rank_ = -1;
};

/// Annotated scoped guard (std::lock_guard shape, TSA-visible release).
class GV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GV_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GV_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting directly on a gv::Mutex.  Built on
/// condition_variable_any (which takes any BasicLockable); the wait methods
/// require the capability, matching how callers already hold the lock.
/// The bodies carry GV_NO_THREAD_SAFETY_ANALYSIS because the analysis
/// cannot see through condition_variable_any's internal unlock/relock.
class CondVar {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mu) GV_REQUIRES(mu) GV_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) GV_REQUIRES(mu) GV_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>&
                                deadline) GV_REQUIRES(mu)
      GV_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mu, deadline);
  }

  template <typename Clock, typename Duration, typename Pred>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) GV_REQUIRES(mu) GV_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mu, deadline, std::move(pred));
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Pred pred) GV_REQUIRES(mu) GV_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, dur, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace gv
