#include "common/thread_safety.hpp"

#include <chrono>
#include <cstdlib>

#include "common/annotations.hpp"
#include "obs/metrics.hpp"

namespace gv {
namespace lockprof {

std::atomic<int> g_state{-1};

namespace {

// One slot per rank in the gv::lockrank table, plus a trailing slot for
// unranked mutexes.  Instrument pointers are resolved once at enable time
// (resolution takes the registry's own kTelemetry gv::Mutex — which is
// itself profiled — so record() below must never resolve) and published
// with release semantics; record() null-checks under an acquire load, so a
// contended wait racing the enable sees either nothing or a fully-resolved
// slot.
constexpr int kRanks[] = {
    lockrank::kRegistry,     lockrank::kServerControl, lockrank::kReplicate,
    lockrank::kServerState,  lockrank::kReplicaSlot,   lockrank::kDeployment,
    lockrank::kShardAccess,  lockrank::kMoveFence,     lockrank::kServerSnap,
    lockrank::kEnclaveEntry, lockrank::kEnclaveMeter,  lockrank::kChannel,
    lockrank::kQueue,        lockrank::kJobQueue,      lockrank::kTokenState,
    lockrank::kTelemetry,
};
constexpr int kNumRanks = static_cast<int>(sizeof(kRanks) / sizeof(kRanks[0]));
constexpr int kUnrankedSlot = kNumRanks;

struct Slot {
  Histogram* wait_seconds = nullptr;
  Counter* contended = nullptr;
};
Slot g_slots[kNumRanks + 1];
std::atomic<bool> g_resolved{false};
// 0 = unresolved, 1 = resolution in progress, 2 = done.  Exactly one thread
// wins the 0->1 CAS and resolves; losers (and reentrant callers) return
// immediately — record() drops waits until g_resolved flips, which is the
// documented enable-race behaviour.
std::atomic<int> g_resolve_state{0};

std::atomic<std::uint64_t> g_profiled{0};
std::atomic<std::uint64_t> g_contended{0};

int slot_index(int rank) {
  for (int i = 0; i < kNumRanks; ++i) {
    if (kRanks[i] == rank) return i;
  }
  return kUnrankedSlot;
}

void resolve_instruments() {
  int expected = 0;
  if (!g_resolve_state.compare_exchange_strong(expected, 1,
                                               std::memory_order_acq_rel)) {
    return;
  }
  auto& reg = MetricsRegistry::global();
  for (int i = 0; i <= kNumRanks; ++i) {
    const char* name = i == kUnrankedSlot
                           ? "unranked"
                           : lockrank::lock_rank_name(kRanks[i]);
    const auto labels = MetricLabels::of("rank", name);
    g_slots[i].wait_seconds = &reg.histogram("lock.wait_seconds", labels);
    g_slots[i].contended = &reg.counter("lock.contended", labels);
  }
  g_resolved.store(true, std::memory_order_release);
  g_resolve_state.store(2, std::memory_order_release);
}

}  // namespace

bool enabled_slow() {
  const char* v = std::getenv("GNNVAULT_LOCKPROF");
  const bool on = v != nullptr && v[0] != '\0' && v[0] != '0';
  // Settle g_state BEFORE resolving: resolution takes the registry's own
  // profiled gv::Mutex, whose nested enabled() must see a settled state or
  // it would re-enter this slow path forever.
  int expected = -1;
  g_state.compare_exchange_strong(expected, on ? 1 : 0,
                                  std::memory_order_relaxed);
  const bool now_on = g_state.load(std::memory_order_relaxed) != 0;
  if (now_on) resolve_instruments();
  return now_on;
}

void set_enabled(bool on) {
  // Same ordering as enabled_slow(): publish the state first so the
  // registry mutex taken during resolution sees it settled.
  g_state.store(on ? 1 : 0, std::memory_order_relaxed);
  if (on) resolve_instruments();
}

std::uint64_t profiled_acquisitions() {
  return g_profiled.load(std::memory_order_relaxed);
}

std::uint64_t contended_acquisitions() {
  return g_contended.load(std::memory_order_relaxed);
}

}  // namespace lockprof

void Mutex::profiled_lock() {
  lockprof::g_profiled.fetch_add(1, std::memory_order_relaxed);
  if (mu_.try_lock()) return;
  const auto t0 = std::chrono::steady_clock::now();
  mu_.lock();
  const double wait_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  lockprof::g_contended.fetch_add(1, std::memory_order_relaxed);
  if (!lockprof::g_resolved.load(std::memory_order_acquire)) return;
  const auto& slot = lockprof::g_slots[lockprof::slot_index(rank_)];
  slot.contended->add(1);
  slot.wait_seconds->record(wait_s);
}

}  // namespace gv
