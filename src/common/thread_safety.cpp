#include "common/thread_safety.hpp"

#include <chrono>
#include <cstdlib>

#include "common/annotations.hpp"
#include "obs/metrics.hpp"

namespace gv {
namespace lockprof {

std::atomic<int> g_state{-1};

namespace {

// One slot per rank in the gv::lockrank table, plus a trailing slot for
// unranked mutexes.  Instrument pointers are resolved once at enable time
// (resolution takes the registry's own kTelemetry gv::Mutex — which is
// itself profiled — so record() below must never resolve) and published
// with release semantics; record() null-checks under an acquire load, so a
// contended wait racing the enable sees either nothing or a fully-resolved
// slot.
constexpr int kRanks[] = {
    lockrank::kRegistry,     lockrank::kServerControl, lockrank::kReplicate,
    lockrank::kServerState,  lockrank::kReplicaSlot,   lockrank::kDeployment,
    lockrank::kShardAccess,  lockrank::kMoveFence,     lockrank::kServerSnap,
    lockrank::kEnclaveEntry, lockrank::kEnclaveMeter,  lockrank::kChannel,
    lockrank::kQueue,        lockrank::kJobQueue,      lockrank::kTokenState,
    lockrank::kTelemetry,
};
constexpr int kNumRanks = static_cast<int>(sizeof(kRanks) / sizeof(kRanks[0]));
constexpr int kUnrankedSlot = kNumRanks;

struct Slot {
  Histogram* wait_seconds = nullptr;
  Counter* contended = nullptr;
};
Slot g_slots[kNumRanks + 1];
std::atomic<bool> g_resolved{false};

std::atomic<std::uint64_t> g_profiled{0};
std::atomic<std::uint64_t> g_contended{0};

int slot_index(int rank) {
  for (int i = 0; i < kNumRanks; ++i) {
    if (kRanks[i] == rank) return i;
  }
  return kUnrankedSlot;
}

void resolve_instruments() {
  if (g_resolved.load(std::memory_order_acquire)) return;
  auto& reg = MetricsRegistry::global();
  for (int i = 0; i <= kNumRanks; ++i) {
    const char* name = i == kUnrankedSlot
                           ? "unranked"
                           : lockrank::lock_rank_name(kRanks[i]);
    const auto labels = MetricLabels::of("rank", name);
    g_slots[i].wait_seconds = &reg.histogram("lock.wait_seconds", labels);
    g_slots[i].contended = &reg.counter("lock.contended", labels);
  }
  g_resolved.store(true, std::memory_order_release);
}

}  // namespace

bool enabled_slow() {
  const char* v = std::getenv("GNNVAULT_LOCKPROF");
  const bool on = v != nullptr && v[0] != '\0' && v[0] != '0';
  if (on) resolve_instruments();
  int expected = -1;
  g_state.compare_exchange_strong(expected, on ? 1 : 0,
                                  std::memory_order_relaxed);
  return g_state.load(std::memory_order_relaxed) != 0;
}

void set_enabled(bool on) {
  if (on) resolve_instruments();
  g_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t profiled_acquisitions() {
  return g_profiled.load(std::memory_order_relaxed);
}

std::uint64_t contended_acquisitions() {
  return g_contended.load(std::memory_order_relaxed);
}

}  // namespace lockprof

void Mutex::profiled_lock() {
  lockprof::g_profiled.fetch_add(1, std::memory_order_relaxed);
  if (mu_.try_lock()) return;
  const auto t0 = std::chrono::steady_clock::now();
  mu_.lock();
  const double wait_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  lockprof::g_contended.fetch_add(1, std::memory_order_relaxed);
  if (!lockprof::g_resolved.load(std::memory_order_acquire)) return;
  const auto& slot = lockprof::g_slots[lockprof::slot_index(rank_)];
  slot.contended->add(1);
  slot.wait_seconds->record(wait_s);
}

}  // namespace gv
