// ASCII table formatter used by the bench harness to print the paper's
// tables (Table I-IV) and figure series in a shape directly comparable to
// the publication.  Also supports CSV export so plots can be regenerated.
#pragma once

#include <string>
#include <vector>

namespace gv {

class Table {
 public:
  explicit Table(std::string title = "");

  /// Set the header row.
  void set_header(std::vector<std::string> header);

  /// Append a data row (cells as preformatted strings).
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Render as an aligned ASCII table.
  std::string to_ascii() const;

  /// Render as CSV (header + rows).
  std::string to_csv() const;

  /// Render as a JSON object: {"title": ..., "header": [...], "rows":
  /// [{header[c]: cell, ...}, ...]}.  Cells that parse as finite numbers
  /// are emitted as JSON numbers, everything else as strings — the
  /// machine-readable form the CI bench artifacts are built from.
  std::string to_json() const;

  /// Print ASCII to stdout.
  void print() const;

  /// Write CSV to `path` (creates/truncates). Throws gv::Error on failure.
  void write_csv(const std::string& path) const;

  /// Format a double with `prec` digits after the decimal point.
  static std::string fmt(double v, int prec = 3);
  /// Format as percentage with one decimal, e.g. 80.4.
  static std::string pct(double fraction, int prec = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gv
