#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace gv {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Emit a cell as a JSON number when it parses as one, else as a string.
/// strtod alone is too permissive (hex floats, leading whitespace, '+5'):
/// the character precheck keeps the raw emission to tokens that are also
/// valid JSON numbers.
std::string json_cell(const std::string& s) {
  if (!s.empty() && (s[0] == '-' || (s[0] >= '0' && s[0] <= '9')) &&
      s.find_first_not_of("0123456789.eE+-") == std::string::npos) {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() + s.size() && std::isfinite(v)) return s;
  }
  return "\"" + json_escape(s) + "\"";
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}
}  // namespace

std::string Table::to_ascii() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto hline = [&] {
    out << '+';
    for (std::size_t c = 0; c < cols; ++c)
      out << std::string(width[c] + 2, '-') << '+';
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& r) {
    out << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      out << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ') << '|';
    }
    out << '\n';
  };
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (const auto& r : rows_) emit(r);
  hline();
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(r[c]);
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::to_json() const {
  std::ostringstream out;
  out << "{\"title\": \"" << json_escape(title_) << "\", \"header\": [";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out << ", ";
    out << '"' << json_escape(header_[c]) << '"';
  }
  out << "], \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) out << ", ";
    out << '{';
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c) out << ", ";
      const std::string key =
          c < header_.size() ? header_[c] : "col" + std::to_string(c);
      out << '"' << json_escape(key) << "\": " << json_cell(rows_[r][c]);
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

void Table::print() const {
  const std::string s = to_ascii();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  GV_CHECK(f.good(), "cannot open CSV output file: " + path);
  f << to_csv();
  GV_CHECK(f.good(), "failed writing CSV output file: " + path);
}

std::string Table::fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::pct(double fraction, int prec) {
  return fmt(fraction * 100.0, prec);
}

}  // namespace gv
