// Arena and recycling allocators for the serving hot path.
//
// The JobServe serving core promises ZERO heap allocations per warm lookup
// after warm-up (ROADMAP "allocations per lookup -> 0").  Three pieces make
// that true, all of them here:
//
//   Arena              chunked bump allocator.  allocate() carves from the
//                      current block; reset() rewinds to empty but RETAINS
//                      every block, so a steady-state workload stops
//                      touching the heap once the high-water mark is
//                      reached.  One Arena rides inside every pooled batch
//                      (MicroBatchQueue::Batch) and scratches the flush
//                      path's node/label/digest arrays.
//
//   ArenaAllocator<T>  std-allocator adapter over an Arena for containers
//                      whose lifetime is one batch.  deallocate() is a
//                      no-op; reset() reclaims everything at once.
//
//   RecyclingAllocator<T>
//                      std-allocator for LONG-LIVED node-based containers
//                      (the micro-batch queue's coalescing index, the LRU
//                      label-cache index) whose size oscillates around a
//                      steady state.  Single-element deallocations push the
//                      node onto a per-container free list keyed by size
//                      class; the next allocation of that size pops it —
//                      erase/insert churn stops hitting operator new once
//                      the container has seen its peak size.  Multi-element
//                      allocations (hash bucket arrays) pass through to the
//                      heap: they only ever churn on rehash, which a
//                      reserve() at construction makes a warm-up-only
//                      event.
//
// None of these are thread-safe; each instance belongs to one batch, one
// worker, or one externally synchronized container.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace gv {

class Arena {
 public:
  /// `first_block_bytes` sizes the first block; later blocks double until
  /// kMaxBlockBytes (oversized requests get a dedicated block).
  explicit Arena(std::size_t first_block_bytes = 4096)
      : next_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    GV_CHECK(align != 0 && (align & (align - 1)) == 0,
             "arena alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    while (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      const std::size_t aligned = aligned_offset(b, align);
      if (aligned + bytes <= b.size) {
        b.used = aligned + bytes;
        return b.data.get() + aligned;
      }
      // Block exhausted for this request: move on (its tail stays unused
      // until the next reset; blocks double, so the waste is bounded).
      ++cur_;
    }
    add_block(bytes + align);
    Block& b = blocks_[cur_];
    const std::size_t aligned = aligned_offset(b, align);
    b.used = aligned + bytes;
    return b.data.get() + aligned;
  }

  /// Typed array of `n` default-initialized elements.  Restricted to
  /// trivially destructible types: reset() never runs destructors.
  template <typename T>
  std::span<T> alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    if (n == 0) return {};
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(p + i)) T();
    return {p, n};
  }

  /// Rewind to empty, retaining every block for reuse.  Also folds the
  /// rewound usage into the high-water mark (EngineScope occupancy gauge):
  /// the loop already walks every block, so tracking costs one add/compare
  /// per block on a cool path.
  void reset() {
    std::size_t used = 0;
    for (auto& b : blocks_) {
      used += b.used;
      b.used = 0;
    }
    if (used > bytes_high_water_) bytes_high_water_ = used;
    cur_ = 0;
  }

  /// Bytes handed out since the last reset.
  std::size_t bytes_used() const {
    std::size_t sum = 0;
    for (const auto& b : blocks_) sum += b.used;
    return sum;
  }
  /// Bytes held across resets (the high-water footprint).
  std::size_t bytes_reserved() const {
    std::size_t sum = 0;
    for (const auto& b : blocks_) sum += b.size;
    return sum;
  }
  std::size_t num_blocks() const { return blocks_.size(); }
  /// Largest bytes_used() observed at a reset() (live usage between resets
  /// is not folded in until the next reset).
  std::size_t bytes_high_water() const {
    const std::size_t used = bytes_used();
    return used > bytes_high_water_ ? used : bytes_high_water_;
  }

 private:
  static constexpr std::size_t kMaxBlockBytes = std::size_t{1} << 20;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  /// First block offset >= b.used whose ABSOLUTE address is align-aligned
  /// (block bases only carry the default operator-new alignment).
  static std::size_t aligned_offset(const Block& b, std::size_t align) {
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t p =
        (base + b.used + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
    return static_cast<std::size_t>(p - base);
  }

  void add_block(std::size_t at_least) {
    std::size_t size = next_block_bytes_;
    if (size < at_least) size = at_least;
    if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ *= 2;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size, 0});
    cur_ = blocks_.size() - 1;
  }

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;
  std::size_t next_block_bytes_;
  std::size_t bytes_high_water_ = 0;
};

/// std-allocator adapter over an Arena (per-batch container lifetime).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // reclaimed wholesale by reset()

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_;
};

namespace detail {

/// Size-classed free lists shared by one container's allocator rebinds.
/// Freed single-element blocks are threaded through their own storage.
struct RecyclePool {
  struct SizeClass {
    std::size_t bytes = 0;
    void* head = nullptr;
  };
  // A container instantiates at most a couple of node types; linear scan
  // over an inline vector beats any map here.
  std::vector<SizeClass> classes;

  void* pop(std::size_t bytes) {
    for (auto& c : classes) {
      if (c.bytes == bytes && c.head != nullptr) {
        void* p = c.head;
        c.head = *static_cast<void**>(p);
        return p;
      }
    }
    return nullptr;
  }

  void push(std::size_t bytes, void* p) {
    for (auto& c : classes) {
      if (c.bytes == bytes) {
        *static_cast<void**>(p) = c.head;
        c.head = p;
        return;
      }
    }
    classes.push_back(SizeClass{bytes, nullptr});
    *static_cast<void**>(p) = nullptr;
    classes.back().head = p;
  }

  ~RecyclePool() {
    for (auto& c : classes) {
      while (c.head != nullptr) {
        void* next = *static_cast<void**>(c.head);
        ::operator delete(c.head);
        c.head = next;
      }
    }
  }
};

}  // namespace detail

/// Recycles single-node allocations of long-lived node-based containers.
/// Copies (and rebinds) share one pool, so a container's internal node
/// churn — erase here, insert there — reuses memory instead of round-
/// tripping through the heap.
template <typename T>
class RecyclingAllocator {
 public:
  using value_type = T;

  RecyclingAllocator() : pool_(std::make_shared<detail::RecyclePool>()) {}
  template <typename U>
  RecyclingAllocator(const RecyclingAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = node_bytes(n);
    if (n == 1) {
      if (void* p = pool_->pop(bytes)) return static_cast<T*>(p);
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) {
    if (n == 1) {
      pool_->push(node_bytes(1), p);
      return;
    }
    ::operator delete(p);
  }

  const std::shared_ptr<detail::RecyclePool>& pool() const { return pool_; }

  template <typename U>
  bool operator==(const RecyclingAllocator<U>& o) const {
    return pool_ == o.pool();
  }

 private:
  static std::size_t node_bytes(std::size_t n) {
    // Freed blocks store the free-list next pointer in-place.
    const std::size_t raw = n * sizeof(T);
    return raw < sizeof(void*) ? sizeof(void*) : raw;
  }

  std::shared_ptr<detail::RecyclePool> pool_;
};

}  // namespace gv
