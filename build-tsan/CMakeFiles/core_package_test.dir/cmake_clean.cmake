file(REMOVE_RECURSE
  "CMakeFiles/core_package_test.dir/tests/core/package_test.cpp.o"
  "CMakeFiles/core_package_test.dir/tests/core/package_test.cpp.o.d"
  "core_package_test"
  "core_package_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_package_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
