# Empty compiler generated dependencies file for core_package_test.
# This may be replaced when dependencies are built.
