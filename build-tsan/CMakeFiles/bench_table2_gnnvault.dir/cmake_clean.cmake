file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_gnnvault.dir/bench/table2_gnnvault.cpp.o"
  "CMakeFiles/bench_table2_gnnvault.dir/bench/table2_gnnvault.cpp.o.d"
  "bench_table2_gnnvault"
  "bench_table2_gnnvault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_gnnvault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
