# Empty compiler generated dependencies file for bench_table2_gnnvault.
# This may be replaced when dependencies are built.
