file(REMOVE_RECURSE
  "CMakeFiles/tensor_gemm_test.dir/tests/tensor/gemm_test.cpp.o"
  "CMakeFiles/tensor_gemm_test.dir/tests/tensor/gemm_test.cpp.o.d"
  "tensor_gemm_test"
  "tensor_gemm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
