# Empty compiler generated dependencies file for tensor_gemm_test.
# This may be replaced when dependencies are built.
