# Empty dependencies file for shard_sharded_equivalence_test.
# This may be replaced when dependencies are built.
