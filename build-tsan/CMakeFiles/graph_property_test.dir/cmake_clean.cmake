file(REMOVE_RECURSE
  "CMakeFiles/graph_property_test.dir/tests/graph/property_test.cpp.o"
  "CMakeFiles/graph_property_test.dir/tests/graph/property_test.cpp.o.d"
  "graph_property_test"
  "graph_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
