# Empty dependencies file for graph_property_test.
# This may be replaced when dependencies are built.
