# Empty dependencies file for bench_failover_promotion.
# This may be replaced when dependencies are built.
