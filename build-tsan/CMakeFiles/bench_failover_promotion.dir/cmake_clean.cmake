file(REMOVE_RECURSE
  "CMakeFiles/bench_failover_promotion.dir/bench/failover_promotion.cpp.o"
  "CMakeFiles/bench_failover_promotion.dir/bench/failover_promotion.cpp.o.d"
  "bench_failover_promotion"
  "bench_failover_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failover_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
