file(REMOVE_RECURSE
  "CMakeFiles/serve_coalesce_test.dir/tests/serve/coalesce_test.cpp.o"
  "CMakeFiles/serve_coalesce_test.dir/tests/serve/coalesce_test.cpp.o.d"
  "serve_coalesce_test"
  "serve_coalesce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_coalesce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
