# Empty compiler generated dependencies file for serve_coalesce_test.
# This may be replaced when dependencies are built.
