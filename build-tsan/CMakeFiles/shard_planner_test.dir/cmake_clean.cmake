file(REMOVE_RECURSE
  "CMakeFiles/shard_planner_test.dir/tests/shard/planner_test.cpp.o"
  "CMakeFiles/shard_planner_test.dir/tests/shard/planner_test.cpp.o.d"
  "shard_planner_test"
  "shard_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
