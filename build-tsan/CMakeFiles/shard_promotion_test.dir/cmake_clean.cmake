file(REMOVE_RECURSE
  "CMakeFiles/shard_promotion_test.dir/tests/shard/promotion_test.cpp.o"
  "CMakeFiles/shard_promotion_test.dir/tests/shard/promotion_test.cpp.o.d"
  "shard_promotion_test"
  "shard_promotion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_promotion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
