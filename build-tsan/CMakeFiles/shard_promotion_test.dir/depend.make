# Empty dependencies file for shard_promotion_test.
# This may be replaced when dependencies are built.
