# Empty dependencies file for tensor_matrix_test.
# This may be replaced when dependencies are built.
