file(REMOVE_RECURSE
  "CMakeFiles/tensor_matrix_test.dir/tests/tensor/matrix_test.cpp.o"
  "CMakeFiles/tensor_matrix_test.dir/tests/tensor/matrix_test.cpp.o.d"
  "tensor_matrix_test"
  "tensor_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
