file(REMOVE_RECURSE
  "CMakeFiles/metrics_auc_test.dir/tests/metrics/auc_test.cpp.o"
  "CMakeFiles/metrics_auc_test.dir/tests/metrics/auc_test.cpp.o.d"
  "metrics_auc_test"
  "metrics_auc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_auc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
