file(REMOVE_RECURSE
  "libgv.a"
)
