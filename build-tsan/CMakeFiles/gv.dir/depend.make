# Empty dependencies file for gv.
# This may be replaced when dependencies are built.
