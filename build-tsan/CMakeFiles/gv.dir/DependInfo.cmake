
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/link_stealing.cpp" "CMakeFiles/gv.dir/src/attack/link_stealing.cpp.o" "gcc" "CMakeFiles/gv.dir/src/attack/link_stealing.cpp.o.d"
  "/root/repo/src/common/env.cpp" "CMakeFiles/gv.dir/src/common/env.cpp.o" "gcc" "CMakeFiles/gv.dir/src/common/env.cpp.o.d"
  "/root/repo/src/common/log.cpp" "CMakeFiles/gv.dir/src/common/log.cpp.o" "gcc" "CMakeFiles/gv.dir/src/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/gv.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/gv.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/gv.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/gv.dir/src/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "CMakeFiles/gv.dir/src/common/thread_pool.cpp.o" "gcc" "CMakeFiles/gv.dir/src/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/deployment.cpp" "CMakeFiles/gv.dir/src/core/deployment.cpp.o" "gcc" "CMakeFiles/gv.dir/src/core/deployment.cpp.o.d"
  "/root/repo/src/core/model_spec.cpp" "CMakeFiles/gv.dir/src/core/model_spec.cpp.o" "gcc" "CMakeFiles/gv.dir/src/core/model_spec.cpp.o.d"
  "/root/repo/src/core/package.cpp" "CMakeFiles/gv.dir/src/core/package.cpp.o" "gcc" "CMakeFiles/gv.dir/src/core/package.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "CMakeFiles/gv.dir/src/core/pipeline.cpp.o" "gcc" "CMakeFiles/gv.dir/src/core/pipeline.cpp.o.d"
  "/root/repo/src/core/rectifier.cpp" "CMakeFiles/gv.dir/src/core/rectifier.cpp.o" "gcc" "CMakeFiles/gv.dir/src/core/rectifier.cpp.o.d"
  "/root/repo/src/data/catalog.cpp" "CMakeFiles/gv.dir/src/data/catalog.cpp.o" "gcc" "CMakeFiles/gv.dir/src/data/catalog.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/gv.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/gv.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "CMakeFiles/gv.dir/src/data/synthetic.cpp.o" "gcc" "CMakeFiles/gv.dir/src/data/synthetic.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "CMakeFiles/gv.dir/src/graph/graph.cpp.o" "gcc" "CMakeFiles/gv.dir/src/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "CMakeFiles/gv.dir/src/graph/io.cpp.o" "gcc" "CMakeFiles/gv.dir/src/graph/io.cpp.o.d"
  "/root/repo/src/graph/normalize.cpp" "CMakeFiles/gv.dir/src/graph/normalize.cpp.o" "gcc" "CMakeFiles/gv.dir/src/graph/normalize.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "CMakeFiles/gv.dir/src/graph/partition.cpp.o" "gcc" "CMakeFiles/gv.dir/src/graph/partition.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "CMakeFiles/gv.dir/src/graph/stats.cpp.o" "gcc" "CMakeFiles/gv.dir/src/graph/stats.cpp.o.d"
  "/root/repo/src/graph/substitute.cpp" "CMakeFiles/gv.dir/src/graph/substitute.cpp.o" "gcc" "CMakeFiles/gv.dir/src/graph/substitute.cpp.o.d"
  "/root/repo/src/metrics/auc.cpp" "CMakeFiles/gv.dir/src/metrics/auc.cpp.o" "gcc" "CMakeFiles/gv.dir/src/metrics/auc.cpp.o.d"
  "/root/repo/src/metrics/silhouette.cpp" "CMakeFiles/gv.dir/src/metrics/silhouette.cpp.o" "gcc" "CMakeFiles/gv.dir/src/metrics/silhouette.cpp.o.d"
  "/root/repo/src/metrics/tsne.cpp" "CMakeFiles/gv.dir/src/metrics/tsne.cpp.o" "gcc" "CMakeFiles/gv.dir/src/metrics/tsne.cpp.o.d"
  "/root/repo/src/nn/arch_models.cpp" "CMakeFiles/gv.dir/src/nn/arch_models.cpp.o" "gcc" "CMakeFiles/gv.dir/src/nn/arch_models.cpp.o.d"
  "/root/repo/src/nn/dense_layer.cpp" "CMakeFiles/gv.dir/src/nn/dense_layer.cpp.o" "gcc" "CMakeFiles/gv.dir/src/nn/dense_layer.cpp.o.d"
  "/root/repo/src/nn/gat_layer.cpp" "CMakeFiles/gv.dir/src/nn/gat_layer.cpp.o" "gcc" "CMakeFiles/gv.dir/src/nn/gat_layer.cpp.o.d"
  "/root/repo/src/nn/gcn_layer.cpp" "CMakeFiles/gv.dir/src/nn/gcn_layer.cpp.o" "gcc" "CMakeFiles/gv.dir/src/nn/gcn_layer.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "CMakeFiles/gv.dir/src/nn/model.cpp.o" "gcc" "CMakeFiles/gv.dir/src/nn/model.cpp.o.d"
  "/root/repo/src/nn/param.cpp" "CMakeFiles/gv.dir/src/nn/param.cpp.o" "gcc" "CMakeFiles/gv.dir/src/nn/param.cpp.o.d"
  "/root/repo/src/nn/sage_layer.cpp" "CMakeFiles/gv.dir/src/nn/sage_layer.cpp.o" "gcc" "CMakeFiles/gv.dir/src/nn/sage_layer.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "CMakeFiles/gv.dir/src/nn/trainer.cpp.o" "gcc" "CMakeFiles/gv.dir/src/nn/trainer.cpp.o.d"
  "/root/repo/src/serve/batch_queue.cpp" "CMakeFiles/gv.dir/src/serve/batch_queue.cpp.o" "gcc" "CMakeFiles/gv.dir/src/serve/batch_queue.cpp.o.d"
  "/root/repo/src/serve/label_cache.cpp" "CMakeFiles/gv.dir/src/serve/label_cache.cpp.o" "gcc" "CMakeFiles/gv.dir/src/serve/label_cache.cpp.o.d"
  "/root/repo/src/serve/registry.cpp" "CMakeFiles/gv.dir/src/serve/registry.cpp.o" "gcc" "CMakeFiles/gv.dir/src/serve/registry.cpp.o.d"
  "/root/repo/src/serve/server_metrics.cpp" "CMakeFiles/gv.dir/src/serve/server_metrics.cpp.o" "gcc" "CMakeFiles/gv.dir/src/serve/server_metrics.cpp.o.d"
  "/root/repo/src/serve/vault_server.cpp" "CMakeFiles/gv.dir/src/serve/vault_server.cpp.o" "gcc" "CMakeFiles/gv.dir/src/serve/vault_server.cpp.o.d"
  "/root/repo/src/sgxsim/attested_channel.cpp" "CMakeFiles/gv.dir/src/sgxsim/attested_channel.cpp.o" "gcc" "CMakeFiles/gv.dir/src/sgxsim/attested_channel.cpp.o.d"
  "/root/repo/src/sgxsim/chacha20poly1305.cpp" "CMakeFiles/gv.dir/src/sgxsim/chacha20poly1305.cpp.o" "gcc" "CMakeFiles/gv.dir/src/sgxsim/chacha20poly1305.cpp.o.d"
  "/root/repo/src/sgxsim/channel.cpp" "CMakeFiles/gv.dir/src/sgxsim/channel.cpp.o" "gcc" "CMakeFiles/gv.dir/src/sgxsim/channel.cpp.o.d"
  "/root/repo/src/sgxsim/cost_model.cpp" "CMakeFiles/gv.dir/src/sgxsim/cost_model.cpp.o" "gcc" "CMakeFiles/gv.dir/src/sgxsim/cost_model.cpp.o.d"
  "/root/repo/src/sgxsim/enclave.cpp" "CMakeFiles/gv.dir/src/sgxsim/enclave.cpp.o" "gcc" "CMakeFiles/gv.dir/src/sgxsim/enclave.cpp.o.d"
  "/root/repo/src/sgxsim/sha256.cpp" "CMakeFiles/gv.dir/src/sgxsim/sha256.cpp.o" "gcc" "CMakeFiles/gv.dir/src/sgxsim/sha256.cpp.o.d"
  "/root/repo/src/shard/replica_manager.cpp" "CMakeFiles/gv.dir/src/shard/replica_manager.cpp.o" "gcc" "CMakeFiles/gv.dir/src/shard/replica_manager.cpp.o.d"
  "/root/repo/src/shard/shard_planner.cpp" "CMakeFiles/gv.dir/src/shard/shard_planner.cpp.o" "gcc" "CMakeFiles/gv.dir/src/shard/shard_planner.cpp.o.d"
  "/root/repo/src/shard/shard_router.cpp" "CMakeFiles/gv.dir/src/shard/shard_router.cpp.o" "gcc" "CMakeFiles/gv.dir/src/shard/shard_router.cpp.o.d"
  "/root/repo/src/shard/sharded_deployment.cpp" "CMakeFiles/gv.dir/src/shard/sharded_deployment.cpp.o" "gcc" "CMakeFiles/gv.dir/src/shard/sharded_deployment.cpp.o.d"
  "/root/repo/src/shard/sharded_server.cpp" "CMakeFiles/gv.dir/src/shard/sharded_server.cpp.o" "gcc" "CMakeFiles/gv.dir/src/shard/sharded_server.cpp.o.d"
  "/root/repo/src/tensor/csr.cpp" "CMakeFiles/gv.dir/src/tensor/csr.cpp.o" "gcc" "CMakeFiles/gv.dir/src/tensor/csr.cpp.o.d"
  "/root/repo/src/tensor/gemm.cpp" "CMakeFiles/gv.dir/src/tensor/gemm.cpp.o" "gcc" "CMakeFiles/gv.dir/src/tensor/gemm.cpp.o.d"
  "/root/repo/src/tensor/matrix.cpp" "CMakeFiles/gv.dir/src/tensor/matrix.cpp.o" "gcc" "CMakeFiles/gv.dir/src/tensor/matrix.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "CMakeFiles/gv.dir/src/tensor/ops.cpp.o" "gcc" "CMakeFiles/gv.dir/src/tensor/ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
