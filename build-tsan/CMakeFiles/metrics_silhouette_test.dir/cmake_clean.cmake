file(REMOVE_RECURSE
  "CMakeFiles/metrics_silhouette_test.dir/tests/metrics/silhouette_test.cpp.o"
  "CMakeFiles/metrics_silhouette_test.dir/tests/metrics/silhouette_test.cpp.o.d"
  "metrics_silhouette_test"
  "metrics_silhouette_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_silhouette_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
