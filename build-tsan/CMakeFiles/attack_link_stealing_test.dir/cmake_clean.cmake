file(REMOVE_RECURSE
  "CMakeFiles/attack_link_stealing_test.dir/tests/attack/link_stealing_test.cpp.o"
  "CMakeFiles/attack_link_stealing_test.dir/tests/attack/link_stealing_test.cpp.o.d"
  "attack_link_stealing_test"
  "attack_link_stealing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_link_stealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
