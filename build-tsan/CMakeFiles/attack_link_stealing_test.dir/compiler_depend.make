# Empty compiler generated dependencies file for attack_link_stealing_test.
# This may be replaced when dependencies are built.
