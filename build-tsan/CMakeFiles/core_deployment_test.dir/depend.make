# Empty dependencies file for core_deployment_test.
# This may be replaced when dependencies are built.
