file(REMOVE_RECURSE
  "CMakeFiles/core_deployment_test.dir/tests/core/deployment_test.cpp.o"
  "CMakeFiles/core_deployment_test.dir/tests/core/deployment_test.cpp.o.d"
  "core_deployment_test"
  "core_deployment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_deployment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
