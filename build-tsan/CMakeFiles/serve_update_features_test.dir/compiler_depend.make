# Empty compiler generated dependencies file for serve_update_features_test.
# This may be replaced when dependencies are built.
