# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for serve_update_features_test.
