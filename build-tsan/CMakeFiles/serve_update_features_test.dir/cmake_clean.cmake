file(REMOVE_RECURSE
  "CMakeFiles/serve_update_features_test.dir/tests/serve/update_features_test.cpp.o"
  "CMakeFiles/serve_update_features_test.dir/tests/serve/update_features_test.cpp.o.d"
  "serve_update_features_test"
  "serve_update_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_update_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
