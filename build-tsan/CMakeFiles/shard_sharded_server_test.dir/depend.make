# Empty dependencies file for shard_sharded_server_test.
# This may be replaced when dependencies are built.
