file(REMOVE_RECURSE
  "CMakeFiles/shard_sharded_server_test.dir/tests/shard/sharded_server_test.cpp.o"
  "CMakeFiles/shard_sharded_server_test.dir/tests/shard/sharded_server_test.cpp.o.d"
  "shard_sharded_server_test"
  "shard_sharded_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_sharded_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
