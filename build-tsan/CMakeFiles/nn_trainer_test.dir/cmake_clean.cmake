file(REMOVE_RECURSE
  "CMakeFiles/nn_trainer_test.dir/tests/nn/trainer_test.cpp.o"
  "CMakeFiles/nn_trainer_test.dir/tests/nn/trainer_test.cpp.o.d"
  "nn_trainer_test"
  "nn_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
