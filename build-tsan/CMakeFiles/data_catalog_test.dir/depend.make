# Empty dependencies file for data_catalog_test.
# This may be replaced when dependencies are built.
