file(REMOVE_RECURSE
  "CMakeFiles/data_catalog_test.dir/tests/data/catalog_test.cpp.o"
  "CMakeFiles/data_catalog_test.dir/tests/data/catalog_test.cpp.o.d"
  "data_catalog_test"
  "data_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
