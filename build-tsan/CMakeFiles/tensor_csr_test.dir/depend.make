# Empty dependencies file for tensor_csr_test.
# This may be replaced when dependencies are built.
