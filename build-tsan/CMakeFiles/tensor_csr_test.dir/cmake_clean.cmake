file(REMOVE_RECURSE
  "CMakeFiles/tensor_csr_test.dir/tests/tensor/csr_test.cpp.o"
  "CMakeFiles/tensor_csr_test.dir/tests/tensor/csr_test.cpp.o.d"
  "tensor_csr_test"
  "tensor_csr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_csr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
