file(REMOVE_RECURSE
  "CMakeFiles/core_security_test.dir/tests/core/security_test.cpp.o"
  "CMakeFiles/core_security_test.dir/tests/core/security_test.cpp.o.d"
  "core_security_test"
  "core_security_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
