# Empty dependencies file for core_security_test.
# This may be replaced when dependencies are built.
