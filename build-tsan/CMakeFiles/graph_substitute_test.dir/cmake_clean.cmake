file(REMOVE_RECURSE
  "CMakeFiles/graph_substitute_test.dir/tests/graph/substitute_test.cpp.o"
  "CMakeFiles/graph_substitute_test.dir/tests/graph/substitute_test.cpp.o.d"
  "graph_substitute_test"
  "graph_substitute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_substitute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
