# Empty dependencies file for graph_substitute_test.
# This may be replaced when dependencies are built.
