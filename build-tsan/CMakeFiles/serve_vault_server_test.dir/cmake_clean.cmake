file(REMOVE_RECURSE
  "CMakeFiles/serve_vault_server_test.dir/tests/serve/vault_server_test.cpp.o"
  "CMakeFiles/serve_vault_server_test.dir/tests/serve/vault_server_test.cpp.o.d"
  "serve_vault_server_test"
  "serve_vault_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_vault_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
