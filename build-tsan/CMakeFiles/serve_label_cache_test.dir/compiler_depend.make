# Empty compiler generated dependencies file for serve_label_cache_test.
# This may be replaced when dependencies are built.
