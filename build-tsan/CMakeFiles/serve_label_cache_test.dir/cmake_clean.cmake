file(REMOVE_RECURSE
  "CMakeFiles/serve_label_cache_test.dir/tests/serve/label_cache_test.cpp.o"
  "CMakeFiles/serve_label_cache_test.dir/tests/serve/label_cache_test.cpp.o.d"
  "serve_label_cache_test"
  "serve_label_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_label_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
