file(REMOVE_RECURSE
  "CMakeFiles/tensor_property_test.dir/tests/tensor/property_test.cpp.o"
  "CMakeFiles/tensor_property_test.dir/tests/tensor/property_test.cpp.o.d"
  "tensor_property_test"
  "tensor_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
