file(REMOVE_RECURSE
  "CMakeFiles/sgxsim_cost_model_test.dir/tests/sgxsim/cost_model_test.cpp.o"
  "CMakeFiles/sgxsim_cost_model_test.dir/tests/sgxsim/cost_model_test.cpp.o.d"
  "sgxsim_cost_model_test"
  "sgxsim_cost_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxsim_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
