# Empty dependencies file for sgxsim_cost_model_test.
# This may be replaced when dependencies are built.
