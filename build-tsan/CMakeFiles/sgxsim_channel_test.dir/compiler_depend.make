# Empty compiler generated dependencies file for sgxsim_channel_test.
# This may be replaced when dependencies are built.
