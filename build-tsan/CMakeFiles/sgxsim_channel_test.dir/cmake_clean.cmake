file(REMOVE_RECURSE
  "CMakeFiles/sgxsim_channel_test.dir/tests/sgxsim/channel_test.cpp.o"
  "CMakeFiles/sgxsim_channel_test.dir/tests/sgxsim/channel_test.cpp.o.d"
  "sgxsim_channel_test"
  "sgxsim_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxsim_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
