# Empty compiler generated dependencies file for graph_normalize_test.
# This may be replaced when dependencies are built.
