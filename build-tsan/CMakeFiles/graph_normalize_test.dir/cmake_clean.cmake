file(REMOVE_RECURSE
  "CMakeFiles/graph_normalize_test.dir/tests/graph/normalize_test.cpp.o"
  "CMakeFiles/graph_normalize_test.dir/tests/graph/normalize_test.cpp.o.d"
  "graph_normalize_test"
  "graph_normalize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_normalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
