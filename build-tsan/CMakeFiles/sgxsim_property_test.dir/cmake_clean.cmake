file(REMOVE_RECURSE
  "CMakeFiles/sgxsim_property_test.dir/tests/sgxsim/property_test.cpp.o"
  "CMakeFiles/sgxsim_property_test.dir/tests/sgxsim/property_test.cpp.o.d"
  "sgxsim_property_test"
  "sgxsim_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxsim_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
