# Empty dependencies file for sgxsim_property_test.
# This may be replaced when dependencies are built.
