file(REMOVE_RECURSE
  "CMakeFiles/sgxsim_enclave_test.dir/tests/sgxsim/enclave_test.cpp.o"
  "CMakeFiles/sgxsim_enclave_test.dir/tests/sgxsim/enclave_test.cpp.o.d"
  "sgxsim_enclave_test"
  "sgxsim_enclave_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxsim_enclave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
