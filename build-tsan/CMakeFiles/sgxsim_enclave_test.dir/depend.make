# Empty dependencies file for sgxsim_enclave_test.
# This may be replaced when dependencies are built.
