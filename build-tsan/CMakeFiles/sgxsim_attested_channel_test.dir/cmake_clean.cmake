file(REMOVE_RECURSE
  "CMakeFiles/sgxsim_attested_channel_test.dir/tests/sgxsim/attested_channel_test.cpp.o"
  "CMakeFiles/sgxsim_attested_channel_test.dir/tests/sgxsim/attested_channel_test.cpp.o.d"
  "sgxsim_attested_channel_test"
  "sgxsim_attested_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxsim_attested_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
