# Empty compiler generated dependencies file for sgxsim_attested_channel_test.
# This may be replaced when dependencies are built.
