file(REMOVE_RECURSE
  "CMakeFiles/link_stealing_demo.dir/examples/link_stealing_demo.cpp.o"
  "CMakeFiles/link_stealing_demo.dir/examples/link_stealing_demo.cpp.o.d"
  "link_stealing_demo"
  "link_stealing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_stealing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
