# Empty compiler generated dependencies file for link_stealing_demo.
# This may be replaced when dependencies are built.
