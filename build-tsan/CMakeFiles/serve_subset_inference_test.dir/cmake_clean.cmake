file(REMOVE_RECURSE
  "CMakeFiles/serve_subset_inference_test.dir/tests/serve/subset_inference_test.cpp.o"
  "CMakeFiles/serve_subset_inference_test.dir/tests/serve/subset_inference_test.cpp.o.d"
  "serve_subset_inference_test"
  "serve_subset_inference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_subset_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
