# Empty dependencies file for serve_subset_inference_test.
# This may be replaced when dependencies are built.
