file(REMOVE_RECURSE
  "CMakeFiles/nn_model_test.dir/tests/nn/model_test.cpp.o"
  "CMakeFiles/nn_model_test.dir/tests/nn/model_test.cpp.o.d"
  "nn_model_test"
  "nn_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
