file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_embeddings.dir/bench/fig4_embeddings.cpp.o"
  "CMakeFiles/bench_fig4_embeddings.dir/bench/fig4_embeddings.cpp.o.d"
  "bench_fig4_embeddings"
  "bench_fig4_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
