# Empty dependencies file for bench_fig4_embeddings.
# This may be replaced when dependencies are built.
