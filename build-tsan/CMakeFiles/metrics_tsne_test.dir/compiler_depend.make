# Empty compiler generated dependencies file for metrics_tsne_test.
# This may be replaced when dependencies are built.
