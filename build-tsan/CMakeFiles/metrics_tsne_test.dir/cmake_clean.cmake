file(REMOVE_RECURSE
  "CMakeFiles/metrics_tsne_test.dir/tests/metrics/tsne_test.cpp.o"
  "CMakeFiles/metrics_tsne_test.dir/tests/metrics/tsne_test.cpp.o.d"
  "metrics_tsne_test"
  "metrics_tsne_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_tsne_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
