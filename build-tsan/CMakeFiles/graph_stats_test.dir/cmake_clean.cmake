file(REMOVE_RECURSE
  "CMakeFiles/graph_stats_test.dir/tests/graph/stats_test.cpp.o"
  "CMakeFiles/graph_stats_test.dir/tests/graph/stats_test.cpp.o.d"
  "graph_stats_test"
  "graph_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
