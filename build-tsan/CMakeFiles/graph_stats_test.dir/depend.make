# Empty dependencies file for graph_stats_test.
# This may be replaced when dependencies are built.
