# Empty compiler generated dependencies file for serve_registry_test.
# This may be replaced when dependencies are built.
