file(REMOVE_RECURSE
  "CMakeFiles/serve_registry_test.dir/tests/serve/registry_test.cpp.o"
  "CMakeFiles/serve_registry_test.dir/tests/serve/registry_test.cpp.o.d"
  "serve_registry_test"
  "serve_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
