# Empty dependencies file for shard_demo.
# This may be replaced when dependencies are built.
