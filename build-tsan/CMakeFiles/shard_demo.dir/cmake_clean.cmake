file(REMOVE_RECURSE
  "CMakeFiles/shard_demo.dir/examples/shard_demo.cpp.o"
  "CMakeFiles/shard_demo.dir/examples/shard_demo.cpp.o.d"
  "shard_demo"
  "shard_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
