file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_backbones.dir/bench/table3_backbones.cpp.o"
  "CMakeFiles/bench_table3_backbones.dir/bench/table3_backbones.cpp.o.d"
  "bench_table3_backbones"
  "bench_table3_backbones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_backbones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
