# Empty dependencies file for bench_table4_linksteal.
# This may be replaced when dependencies are built.
