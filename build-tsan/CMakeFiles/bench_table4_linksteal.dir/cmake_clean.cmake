file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_linksteal.dir/bench/table4_linksteal.cpp.o"
  "CMakeFiles/bench_table4_linksteal.dir/bench/table4_linksteal.cpp.o.d"
  "bench_table4_linksteal"
  "bench_table4_linksteal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_linksteal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
