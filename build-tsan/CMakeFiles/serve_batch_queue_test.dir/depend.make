# Empty dependencies file for serve_batch_queue_test.
# This may be replaced when dependencies are built.
