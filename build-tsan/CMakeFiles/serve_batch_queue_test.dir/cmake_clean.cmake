file(REMOVE_RECURSE
  "CMakeFiles/serve_batch_queue_test.dir/tests/serve/batch_queue_test.cpp.o"
  "CMakeFiles/serve_batch_queue_test.dir/tests/serve/batch_queue_test.cpp.o.d"
  "serve_batch_queue_test"
  "serve_batch_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_batch_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
