# Empty dependencies file for sgxsim_chacha_test.
# This may be replaced when dependencies are built.
