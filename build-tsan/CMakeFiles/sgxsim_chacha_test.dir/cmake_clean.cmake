file(REMOVE_RECURSE
  "CMakeFiles/sgxsim_chacha_test.dir/tests/sgxsim/chacha_test.cpp.o"
  "CMakeFiles/sgxsim_chacha_test.dir/tests/sgxsim/chacha_test.cpp.o.d"
  "sgxsim_chacha_test"
  "sgxsim_chacha_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxsim_chacha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
