file(REMOVE_RECURSE
  "CMakeFiles/shard_failover_test.dir/tests/shard/failover_test.cpp.o"
  "CMakeFiles/shard_failover_test.dir/tests/shard/failover_test.cpp.o.d"
  "shard_failover_test"
  "shard_failover_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_failover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
