# Empty dependencies file for shard_failover_test.
# This may be replaced when dependencies are built.
