file(REMOVE_RECURSE
  "CMakeFiles/core_rectifier_test.dir/tests/core/rectifier_test.cpp.o"
  "CMakeFiles/core_rectifier_test.dir/tests/core/rectifier_test.cpp.o.d"
  "core_rectifier_test"
  "core_rectifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rectifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
