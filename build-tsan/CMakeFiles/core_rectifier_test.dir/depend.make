# Empty dependencies file for core_rectifier_test.
# This may be replaced when dependencies are built.
