file(REMOVE_RECURSE
  "CMakeFiles/core_vault_property_test.dir/tests/core/vault_property_test.cpp.o"
  "CMakeFiles/core_vault_property_test.dir/tests/core/vault_property_test.cpp.o.d"
  "core_vault_property_test"
  "core_vault_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_vault_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
