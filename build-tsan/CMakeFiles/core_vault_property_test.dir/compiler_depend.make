# Empty compiler generated dependencies file for core_vault_property_test.
# This may be replaced when dependencies are built.
