# Empty dependencies file for serve_placement_test.
# This may be replaced when dependencies are built.
