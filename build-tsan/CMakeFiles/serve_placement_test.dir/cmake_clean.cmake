file(REMOVE_RECURSE
  "CMakeFiles/serve_placement_test.dir/tests/serve/placement_test.cpp.o"
  "CMakeFiles/serve_placement_test.dir/tests/serve/placement_test.cpp.o.d"
  "serve_placement_test"
  "serve_placement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
