file(REMOVE_RECURSE
  "CMakeFiles/core_model_spec_test.dir/tests/core/model_spec_test.cpp.o"
  "CMakeFiles/core_model_spec_test.dir/tests/core/model_spec_test.cpp.o.d"
  "core_model_spec_test"
  "core_model_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_model_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
