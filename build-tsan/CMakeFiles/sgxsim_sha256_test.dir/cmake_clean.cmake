file(REMOVE_RECURSE
  "CMakeFiles/sgxsim_sha256_test.dir/tests/sgxsim/sha256_test.cpp.o"
  "CMakeFiles/sgxsim_sha256_test.dir/tests/sgxsim/sha256_test.cpp.o.d"
  "sgxsim_sha256_test"
  "sgxsim_sha256_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxsim_sha256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
