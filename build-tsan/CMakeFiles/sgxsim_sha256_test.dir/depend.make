# Empty dependencies file for sgxsim_sha256_test.
# This may be replaced when dependencies are built.
