file(REMOVE_RECURSE
  "CMakeFiles/nn_param_test.dir/tests/nn/param_test.cpp.o"
  "CMakeFiles/nn_param_test.dir/tests/nn/param_test.cpp.o.d"
  "nn_param_test"
  "nn_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
