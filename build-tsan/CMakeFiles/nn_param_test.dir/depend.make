# Empty dependencies file for nn_param_test.
# This may be replaced when dependencies are built.
