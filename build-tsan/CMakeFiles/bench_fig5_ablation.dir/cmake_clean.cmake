file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ablation.dir/bench/fig5_ablation.cpp.o"
  "CMakeFiles/bench_fig5_ablation.dir/bench/fig5_ablation.cpp.o.d"
  "bench_fig5_ablation"
  "bench_fig5_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
