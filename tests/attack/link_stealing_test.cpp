#include "attack/link_stealing.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "nn/trainer.hpp"

namespace gv {
namespace {

Dataset attack_dataset(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.num_nodes = 350;
  spec.num_classes = 3;
  spec.num_undirected_edges = 1200;
  spec.feature_dim = 130;
  spec.homophily = 0.85;
  // Calibrated "noisy public features" regime (see tools/calibrate): the
  // graph must carry signal the features lack, or there is nothing for the
  // attack to steal beyond the feature-similarity floor.
  spec.feature_signal = 0.30;
  spec.class_confusion = 0.7;
  spec.common_token_prob = 0.6;
  spec.subtopics_per_class = 10;
  spec.subtopic_fraction = 0.35;
  spec.prototype_size = 40;
  return generate_synthetic(spec, seed);
}

TEST(PairSample, BalancedAndValid) {
  const Dataset ds = attack_dataset(1);
  Rng rng(1);
  const PairSample s = sample_link_pairs(ds.graph, 400, rng);
  EXPECT_EQ(s.pairs.size(), 400u);
  EXPECT_EQ(s.positives(), 200u);
  for (std::size_t i = 0; i < s.pairs.size(); ++i) {
    const auto& [a, b] = s.pairs[i];
    EXPECT_NE(a, b);
    EXPECT_EQ(ds.graph.has_edge(a, b), s.is_edge[i] != 0);
  }
}

TEST(PairSample, UsesAllEdgesWhenFewerThanBudget) {
  Graph g(10);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  Rng rng(2);
  const PairSample s = sample_link_pairs(g, 1000, rng);
  EXPECT_EQ(s.positives(), 2u);
  EXPECT_EQ(s.pairs.size(), 4u);
}

TEST(PairSample, EmptyGraphThrows) {
  Graph g(5);
  Rng rng(3);
  EXPECT_THROW(sample_link_pairs(g, 10, rng), Error);
}

TEST(Metrics, AllSixPresentWithNames) {
  const auto& ms = all_similarity_metrics();
  ASSERT_EQ(ms.size(), 6u);
  EXPECT_EQ(metric_name(ms[0]), "Euclidean");
  EXPECT_EQ(metric_name(ms[5]), "Canberra");
}

TEST(Metrics, SimilarityHigherForIdenticalRows) {
  Matrix emb{{1, 2, 3}, {1, 2, 3}, {-3, 0, 9}};
  for (const auto m : all_similarity_metrics()) {
    EXPECT_GT(pair_similarity(emb, 0, 1, m), pair_similarity(emb, 0, 2, m))
        << metric_name(m);
  }
}

TEST(ConcatEmbeddings, NormalizesAndJoins) {
  Matrix a{{3, 4}, {0, 1}};
  Matrix b{{10, 0, 0}, {0, 10, 0}};
  const Matrix c = concat_observable_embeddings({a, b});
  EXPECT_EQ(c.cols(), 5u);
  EXPECT_NEAR(c(0, 0), 0.6f, 1e-5);  // L2-normalized first block
  EXPECT_NEAR(c(0, 2), 1.0f, 1e-5);  // L2-normalized second block
}

TEST(ConcatEmbeddings, SkipsEmptyLayers) {
  Matrix a{{1, 0}, {0, 1}};
  const Matrix c = concat_observable_embeddings({Matrix(), a});
  EXPECT_EQ(c.cols(), 2u);
}

TEST(ConcatEmbeddings, AllEmptyThrows) {
  EXPECT_THROW(concat_observable_embeddings({Matrix(), Matrix()}), Error);
  EXPECT_THROW(concat_observable_embeddings({}), Error);
}

/// End-to-end attack sanity: embeddings of a GCN trained WITH the real
/// adjacency leak far more than a feature-only MLP's.
TEST(LinkStealing, OriginalLeaksMoreThanBaseline) {
  const Dataset ds = attack_dataset(2);
  TrainConfig tc;
  tc.epochs = 60;

  double porg = 0.0;
  const ModelSpec spec{"T", {16, 8}, {16, 8}, 0.3f};
  auto original = train_original_gnn(ds, spec, tc, 3, &porg);
  original->forward(ds.features, false);
  const auto org_layers = original->layer_outputs();

  Rng rng(4);
  MlpConfig mc{ds.feature_dim(), {16, 8, ds.num_classes}, 0.3f};
  MlpModel mlp(mc, rng);
  train_node_classifier(mlp, ds.features, ds.labels, ds.split.train, tc);
  mlp.forward(ds.features, false);
  const auto base_layers = mlp.layer_outputs();

  Rng sample_rng(5);
  const PairSample sample = sample_link_pairs(ds.graph, 1500, sample_rng);
  const double auc_org =
      link_stealing_auc(org_layers, sample, SimilarityMetric::kCosine);
  const double auc_base =
      link_stealing_auc(base_layers, sample, SimilarityMetric::kCosine);
  EXPECT_GT(auc_org, 0.8);
  EXPECT_GT(auc_org, auc_base + 0.08);
}

TEST(LinkStealing, GnnVaultObservablesLeakLikeBaseline) {
  // Table IV claim: attack on GNNVault's untrusted-world embeddings drops
  // to roughly the feature-only baseline.
  const Dataset ds = attack_dataset(3);
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {16, 8}, {16, 8}, 0.3f};
  cfg.backbone_train.epochs = 60;
  cfg.rectifier_train.epochs = 60;
  cfg.seed = 6;
  const TrainedVault tv = train_vault(ds, cfg);
  const auto gv_layers = tv.backbone_outputs(ds.features);

  TrainConfig tc;
  tc.epochs = 60;
  double porg = 0.0;
  auto original = train_original_gnn(ds, cfg.spec, tc, 6, &porg);
  original->forward(ds.features, false);
  const auto org_layers = original->layer_outputs();

  Rng sample_rng(7);
  const PairSample sample = sample_link_pairs(ds.graph, 1500, sample_rng);
  for (const auto metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
    const double auc_gv = link_stealing_auc(gv_layers, sample, metric);
    const double auc_org = link_stealing_auc(org_layers, sample, metric);
    EXPECT_LT(auc_gv, auc_org - 0.05) << metric_name(metric);
  }
}

TEST(LinkStealing, AllMetricsVariantMatchesIndividualCalls) {
  const Dataset ds = attack_dataset(4);
  Rng rng(8);
  MlpConfig mc{ds.feature_dim(), {12, ds.num_classes}, 0.0f};
  MlpModel mlp(mc, rng);
  mlp.forward(ds.features, false);
  const auto layers = mlp.layer_outputs();
  Rng sample_rng(9);
  const PairSample sample = sample_link_pairs(ds.graph, 600, sample_rng);
  const auto all = link_stealing_auc_all_metrics(layers, sample);
  ASSERT_EQ(all.size(), 6u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_DOUBLE_EQ(all[i],
                     link_stealing_auc(layers, sample, all_similarity_metrics()[i]));
  }
}

}  // namespace
}  // namespace gv
