#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"

namespace gv {
namespace {

/// A dataset where edges carry information features lack: moderate feature
/// signal, strong homophily (the regime GNNVault targets).
Dataset vault_dataset(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.num_nodes = 400;
  spec.num_classes = 4;
  spec.num_undirected_edges = 1400;
  spec.feature_dim = 160;
  spec.homophily = 0.85;
  spec.feature_signal = 0.42;
  spec.features_per_node = 14;
  return generate_synthetic(spec, seed);
}

VaultTrainConfig fast_config() {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {32, 16}, {32, 16}, 0.4f};
  cfg.backbone_train.epochs = 80;
  cfg.rectifier_train.epochs = 80;
  cfg.seed = 7;
  return cfg;
}

TEST(Pipeline, KnnVaultRectifierBeatsBackbone) {
  const Dataset ds = vault_dataset(1);
  auto cfg = fast_config();
  const TrainedVault tv = train_vault(ds, cfg);
  // The protection gap Δp = p_rec - p_bb must be positive: the rectifier
  // (with the real adjacency) recovers accuracy the backbone lacks.
  EXPECT_GT(tv.rectifier_test_accuracy, tv.backbone_test_accuracy + 0.02);
  EXPECT_GT(tv.rectifier_test_accuracy, 0.5);
}

TEST(Pipeline, RectifierIsSmallerThanBackbone) {
  const Dataset ds = vault_dataset(2);
  const TrainedVault tv = train_vault(ds, fast_config());
  EXPECT_LT(tv.rectifier_parameters, tv.backbone_parameters);
}

TEST(Pipeline, SubstituteGraphNeverEqualsRealGraph) {
  const Dataset ds = vault_dataset(3);
  const TrainedVault tv = train_vault(ds, fast_config());
  EXPECT_NE(tv.substitute_graph.edges(), ds.graph.edges());
}

TEST(Pipeline, AllRectifierKindsTrain) {
  const Dataset ds = vault_dataset(4);
  for (const auto kind :
       {RectifierKind::kParallel, RectifierKind::kCascaded, RectifierKind::kSeries}) {
    auto cfg = fast_config();
    cfg.rectifier = kind;
    const TrainedVault tv = train_vault(ds, cfg);
    EXPECT_GT(tv.rectifier_test_accuracy, tv.backbone_test_accuracy)
        << rectifier_kind_name(kind);
  }
}

TEST(Pipeline, DnnBackboneHasNoSubstituteGraph) {
  const Dataset ds = vault_dataset(5);
  auto cfg = fast_config();
  cfg.backbone = BackboneKind::kDnn;
  const TrainedVault tv = train_vault(ds, cfg);
  EXPECT_EQ(tv.backbone_gcn, nullptr);
  EXPECT_NE(tv.backbone_mlp, nullptr);
  EXPECT_EQ(tv.substitute_adj, nullptr);
  EXPECT_EQ(tv.substitute_graph.num_edges(), 0u);
  EXPECT_GT(tv.rectifier_test_accuracy, tv.backbone_test_accuracy);
}

TEST(Pipeline, RandomBackboneWorseThanKnn) {
  const Dataset ds = vault_dataset(6);
  auto knn_cfg = fast_config();
  const TrainedVault knn = train_vault(ds, knn_cfg);
  auto rand_cfg = fast_config();
  rand_cfg.backbone = BackboneKind::kRandom;
  const TrainedVault rnd = train_vault(ds, rand_cfg);
  // Table III ordering: the random substitute graph injects structural
  // noise, hurting both the backbone and the rectified accuracy.
  EXPECT_LT(rnd.backbone_test_accuracy, knn.backbone_test_accuracy);
  EXPECT_LT(rnd.rectifier_test_accuracy, knn.rectifier_test_accuracy);
}

TEST(Pipeline, OriginalGnnIsStrong) {
  const Dataset ds = vault_dataset(7);
  const auto cfg = fast_config();
  double porg = 0.0;
  TrainConfig tc;
  tc.epochs = 80;
  train_original_gnn(ds, cfg.spec, tc, 7, &porg);
  const TrainedVault tv = train_vault(ds, cfg);
  // p_org > p_bb by a clear margin (the model IP worth protecting), and the
  // rectifier lands within a few points of p_org.
  EXPECT_GT(porg, tv.backbone_test_accuracy + 0.03);
  EXPECT_GT(tv.rectifier_test_accuracy, porg - 0.10);
}

TEST(Pipeline, DeterministicGivenSeed) {
  const Dataset ds = vault_dataset(8);
  const TrainedVault a = train_vault(ds, fast_config());
  const TrainedVault b = train_vault(ds, fast_config());
  EXPECT_DOUBLE_EQ(a.backbone_test_accuracy, b.backbone_test_accuracy);
  EXPECT_DOUBLE_EQ(a.rectifier_test_accuracy, b.rectifier_test_accuracy);
}

TEST(Pipeline, PredictRectifiedMatchesReportedAccuracy) {
  const Dataset ds = vault_dataset(9);
  const TrainedVault tv = train_vault(ds, fast_config());
  const auto preds = tv.predict_rectified(ds.features);
  EXPECT_DOUBLE_EQ(accuracy_on(preds, ds.labels, ds.split.test),
                   tv.rectifier_test_accuracy);
}

TEST(Pipeline, CosineBackboneMatchesRealDensity) {
  const Dataset ds = vault_dataset(10);
  auto cfg = fast_config();
  cfg.backbone = BackboneKind::kCosine;
  cfg.cosine_tau = 0.15f;
  Rng rng(3);
  const Graph sub = build_substitute_graph(ds, cfg, rng);
  EXPECT_LE(sub.num_edges(), ds.graph.num_edges());
}

}  // namespace
}  // namespace gv
