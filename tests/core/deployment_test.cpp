#include "core/deployment.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"

namespace gv {
namespace {

Dataset deploy_dataset(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.num_nodes = 300;
  spec.num_classes = 3;
  spec.num_undirected_edges = 1000;
  spec.feature_dim = 120;
  spec.homophily = 0.85;
  spec.feature_signal = 0.45;
  return generate_synthetic(spec, seed);
}

TrainedVault quick_vault(const Dataset& ds, RectifierKind kind) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {24, 12}, {24, 12}, 0.4f};
  cfg.rectifier = kind;
  cfg.backbone_train.epochs = 60;
  cfg.rectifier_train.epochs = 60;
  cfg.seed = 11;
  return train_vault(ds, cfg);
}

TEST(Deployment, SecureInferenceMatchesPlainRectifiedPath) {
  const Dataset ds = deploy_dataset(1);
  TrainedVault tv = quick_vault(ds, RectifierKind::kParallel);
  const auto plain = tv.predict_rectified(ds.features);
  VaultDeployment dep(ds, std::move(tv), {});
  const auto secure = dep.infer_labels(ds.features);
  EXPECT_EQ(secure, plain);
}

TEST(Deployment, MeterBreakdownPopulated) {
  const Dataset ds = deploy_dataset(2);
  VaultDeployment dep(ds, quick_vault(ds, RectifierKind::kParallel), {});
  dep.reset_meter();
  dep.infer_labels(ds.features);
  const CostMeter& m = dep.meter();
  EXPECT_EQ(m.ecalls, 1u);
  EXPECT_GT(m.bytes_in, 0u);
  EXPECT_GT(m.untrusted_compute_seconds, 0.0);
  EXPECT_GT(m.enclave_compute_seconds, 0.0);
}

TEST(Deployment, SeriesTransfersFewerBytesThanCascaded) {
  const Dataset ds = deploy_dataset(3);
  VaultDeployment series(ds, quick_vault(ds, RectifierKind::kSeries), {});
  VaultDeployment cascaded(ds, quick_vault(ds, RectifierKind::kCascaded), {});
  series.infer_labels(ds.features);
  cascaded.infer_labels(ds.features);
  EXPECT_LT(series.bytes_transferred(), cascaded.bytes_transferred());
}

TEST(Deployment, EnclaveMemoryStaysWellUnderEpc) {
  const Dataset ds = deploy_dataset(4);
  VaultDeployment dep(ds, quick_vault(ds, RectifierKind::kCascaded), {});
  dep.infer_labels(ds.features);
  // Fig. 6's feasibility claim: peak enclave memory far below the 96MB EPC.
  EXPECT_LT(dep.enclave_peak_bytes(), dep.cost_model().epc_bytes / 4);
  EXPECT_EQ(dep.meter().page_swaps, 0u);
}

TEST(Deployment, BackboneMemoryExceedsEnclavePeak) {
  const Dataset ds = deploy_dataset(5);
  VaultDeployment dep(ds, quick_vault(ds, RectifierKind::kParallel), {});
  dep.infer_labels(ds.features);
  EXPECT_GT(dep.backbone_runtime_bytes(ds.features), dep.enclave_peak_bytes());
}

TEST(Deployment, SealingRoundTripPreservesAccuracy) {
  const Dataset ds = deploy_dataset(6);
  TrainedVault tv = quick_vault(ds, RectifierKind::kParallel);
  const auto plain = tv.predict_rectified(ds.features);
  DeploymentOptions opts;
  opts.seal_artifacts = true;
  VaultDeployment dep(ds, std::move(tv), opts);
  EXPECT_EQ(dep.infer_labels(ds.features), plain);
}

TEST(Deployment, RepeatedInferenceAccumulatesMeter) {
  const Dataset ds = deploy_dataset(7);
  VaultDeployment dep(ds, quick_vault(ds, RectifierKind::kSeries), {});
  dep.reset_meter();
  dep.infer_labels(ds.features);
  const auto bytes_once = dep.meter().bytes_in;
  dep.infer_labels(ds.features);
  EXPECT_EQ(dep.meter().ecalls, 2u);
  EXPECT_EQ(dep.meter().bytes_in, bytes_once * 2);
}

TEST(Deployment, TransientBuffersFreedAfterInference) {
  const Dataset ds = deploy_dataset(8);
  VaultDeployment dep(ds, quick_vault(ds, RectifierKind::kParallel), {});
  const auto resident = dep.enclave_current_bytes();
  dep.infer_labels(ds.features);
  // Inputs/activations are transient; only weights+graph stay resident.
  EXPECT_EQ(dep.enclave_current_bytes(), resident);
  EXPECT_GT(dep.enclave_peak_bytes(), resident);
}

TEST(Deployment, UnprotectedTimerIsPositive) {
  const Dataset ds = deploy_dataset(9);
  double porg = 0.0;
  TrainConfig tc;
  tc.epochs = 30;
  auto original = train_original_gnn(ds, ModelSpec{"T", {24, 12}, {24, 12}, 0.4f}, tc,
                                     3, &porg);
  EXPECT_GT(time_unprotected_inference(*original, ds.features), 0.0);
}

}  // namespace
}  // namespace gv
