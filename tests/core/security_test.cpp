// Security-invariant tests (DESIGN.md Sec. 5): what an untrusted-world
// attacker can and cannot observe from a GNNVault deployment.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "data/synthetic.hpp"
#include "sgxsim/channel.hpp"

namespace gv {
namespace {

Dataset sec_dataset(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.num_nodes = 250;
  spec.num_classes = 3;
  spec.num_undirected_edges = 800;
  spec.feature_dim = 100;
  spec.homophily = 0.88;
  spec.feature_signal = 0.30;
  spec.class_confusion = 0.7;
  spec.common_token_prob = 0.6;
  spec.subtopics_per_class = 10;
  spec.subtopic_fraction = 0.35;
  spec.prototype_size = 40;
  return generate_synthetic(spec, seed);
}

TrainedVault quick_vault(const Dataset& ds) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {32, 16}, {32, 16}, 0.3f};
  cfg.backbone_train.epochs = 80;
  cfg.rectifier_train.epochs = 80;
  cfg.seed = 5;
  return train_vault(ds, cfg);
}

TEST(Security, OutputIsLabelOnly) {
  // The deployment's only inference API returns class indices — never
  // logits. (Logits leak link/membership signal; paper Sec. IV-E.)
  const Dataset ds = sec_dataset(1);
  VaultDeployment dep(ds, quick_vault(ds), {});
  const auto out = dep.infer_labels(ds.features);
  EXPECT_EQ(out.size(), ds.num_nodes());
  for (const auto label : out) EXPECT_LT(label, ds.num_classes);
  // Structural check: the return type carries integers, not scores.
  static_assert(std::is_same_v<decltype(dep.infer_labels(ds.features)),
                               std::vector<std::uint32_t>>);
}

TEST(Security, BackboneNeverSeesRealAdjacency) {
  // partition-before-training: the backbone's propagation matrix is built
  // from the substitute graph only. Verify zero overlap beyond chance: the
  // backbone adjacency must differ from the real one.
  const Dataset ds = sec_dataset(2);
  const TrainedVault tv = quick_vault(ds);
  ASSERT_NE(tv.backbone_gcn, nullptr);
  const CsrMatrix& bb_adj = tv.backbone_gcn->adjacency();
  const CsrMatrix real = ds.graph.gcn_normalized();
  // Count real (off-diagonal) edges present in the backbone's adjacency.
  std::size_t overlap = 0;
  for (const Edge& e : ds.graph.edges()) {
    if (bb_adj.at(e.a, e.b) != 0.0f) ++overlap;
  }
  // KNN-from-features reconstructs *some* homophilous edges by accident,
  // but the overwhelming majority of private edges must be absent.
  EXPECT_LT(static_cast<double>(overlap) / ds.graph.num_edges(), 0.25);
}

TEST(Security, SealedWeightsUnreadableByOtherEnclave) {
  const Dataset ds = sec_dataset(3);
  TrainedVault tv = quick_vault(ds);
  const auto weights = tv.rectifier->serialize_weights();

  Enclave good("gnnvault", SgxCostModel{});
  good.extend_measurement(std::string("rectifier-code"));
  good.initialize();
  const auto blob = good.seal(weights);

  Enclave evil("gnnvault", SgxCostModel{});
  evil.extend_measurement(std::string("attacker-code"));
  evil.initialize();
  EXPECT_THROW(evil.unseal(blob), Error);
}

template <typename T>
concept CanPop = requires(T t) { t.pop(); };
template <typename T>
concept CanPeek = requires(T t) { t.peek(); };
template <typename T>
concept ExposesQueue = requires(T t) { t.queue(); };

TEST(Security, ChannelExposesNoReadbackApi) {
  // Untrusted code holds only an UntrustedSender; there is no method to
  // observe enclave-side state through the channel.
  static_assert(!CanPop<UntrustedSender>);
  static_assert(!CanPeek<UntrustedSender>);
  static_assert(!ExposesQueue<OneWayChannel>);
  SUCCEED();
}

TEST(Security, ObservableEmbeddingsComeFromSubstituteGraphOnly) {
  // What crosses the channel is a function of (features, substitute adj,
  // backbone weights) — all public. Re-deriving them outside the enclave
  // must reproduce the transferred blocks exactly; i.e. the transfer adds
  // ZERO information about the private adjacency.
  const Dataset ds = sec_dataset(4);
  const TrainedVault tv = quick_vault(ds);
  const auto outputs = tv.backbone_outputs(ds.features);
  // Attacker reconstruction using only public artifacts:
  auto& bb = const_cast<GcnModel&>(*tv.backbone_gcn);
  bb.forward(ds.features, false);
  const auto reconstructed = bb.layer_outputs();
  ASSERT_EQ(outputs.size(), reconstructed.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_TRUE(outputs[i].allclose(reconstructed[i], 0.0f)) << "layer " << i;
  }
}

TEST(Security, AccuracyGapIsTheProtectedIp) {
  // The only high-accuracy path requires the enclave: the backbone alone
  // (everything the attacker can steal) is substantially worse.
  const Dataset ds = sec_dataset(5);
  const TrainedVault tv = quick_vault(ds);
  EXPECT_GT(tv.rectifier_test_accuracy - tv.backbone_test_accuracy, 0.03);
}

TEST(Security, ReportBindsMeasurementAndUserData) {
  Enclave e("gnnvault", SgxCostModel{});
  e.extend_measurement(std::string("rectifier-code"));
  e.initialize();
  const std::vector<std::uint8_t> challenge = {1, 2, 3, 4};
  auto report = e.create_report(challenge);
  EXPECT_TRUE(Enclave::verify_report(report, Enclave::default_platform_key()));
  report.user_data_hash[0] ^= 1;  // forged user data
  EXPECT_FALSE(Enclave::verify_report(report, Enclave::default_platform_key()));
}

}  // namespace
}  // namespace gv
