#include "core/rectifier.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/graph.hpp"
#include "tensor/ops.hpp"

namespace gv {
namespace {

std::shared_ptr<const CsrMatrix> line_adj(std::size_t n) {
  Graph g(static_cast<std::uint32_t>(n));
  for (std::uint32_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return std::make_shared<const CsrMatrix>(g.gcn_normalized());
}

/// Fake backbone outputs: dims {8, 6, 3} over n nodes.
std::vector<Matrix> fake_backbone(std::size_t n, Rng& rng) {
  std::vector<Matrix> outs;
  for (const std::size_t d : {8, 6, 3}) {
    Matrix m(n, d);
    for (std::size_t i = 0; i < m.size(); ++i) {
      m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    outs.push_back(std::move(m));
  }
  return outs;
}

RectifierConfig config(RectifierKind kind) {
  RectifierConfig rc;
  rc.kind = kind;
  rc.channels = {5, 4, 3};
  rc.dropout = 0.0f;
  return rc;
}

TEST(Rectifier, ParallelInputDims) {
  Rng rng(1);
  Rectifier r(config(RectifierKind::kParallel), {8, 6, 3}, line_adj(10), rng);
  EXPECT_EQ(r.layer_input_dim(0), 8u);
  EXPECT_EQ(r.layer_input_dim(1), 6u + 5u);
  EXPECT_EQ(r.layer_input_dim(2), 3u + 4u);
}

TEST(Rectifier, CascadedInputDims) {
  Rng rng(2);
  Rectifier r(config(RectifierKind::kCascaded), {8, 6, 3}, line_adj(10), rng);
  EXPECT_EQ(r.layer_input_dim(0), 8u + 6u + 3u);
  EXPECT_EQ(r.layer_input_dim(1), 5u);
  EXPECT_EQ(r.layer_input_dim(2), 4u);
}

TEST(Rectifier, SeriesInputDimIsPenultimate) {
  Rng rng(3);
  Rectifier r(config(RectifierKind::kSeries), {8, 6, 3}, line_adj(10), rng);
  EXPECT_EQ(r.layer_input_dim(0), 6u);
}

TEST(Rectifier, RequiredBackboneLayersPerKind) {
  Rng rng(4);
  Rectifier par(config(RectifierKind::kParallel), {8, 6, 3}, line_adj(10), rng);
  EXPECT_EQ(par.required_backbone_layers(), (std::vector<std::size_t>{0, 1, 2}));
  Rectifier cas(config(RectifierKind::kCascaded), {8, 6, 3}, line_adj(10), rng);
  EXPECT_EQ(cas.required_backbone_layers(), (std::vector<std::size_t>{0, 1, 2}));
  Rectifier ser(config(RectifierKind::kSeries), {8, 6, 3}, line_adj(10), rng);
  EXPECT_EQ(ser.required_backbone_layers(), (std::vector<std::size_t>{1}));
}

TEST(Rectifier, SeriesSmallestParallelAlignedParamCounts) {
  // With equal channel configs the series design reads the smallest input,
  // so it must have the fewest parameters (the Table II ordering).
  Rng rng(5);
  Rectifier par(config(RectifierKind::kParallel), {8, 6, 3}, line_adj(10), rng);
  Rectifier cas(config(RectifierKind::kCascaded), {8, 6, 3}, line_adj(10), rng);
  Rectifier ser(config(RectifierKind::kSeries), {8, 6, 3}, line_adj(10), rng);
  EXPECT_LT(ser.parameter_count(), par.parameter_count());
  EXPECT_LT(ser.parameter_count(), cas.parameter_count());
}

TEST(Rectifier, ParallelDeeperThanBackboneThrows) {
  Rng rng(6);
  RectifierConfig rc = config(RectifierKind::kParallel);
  rc.channels = {5, 4, 3, 2};
  EXPECT_THROW(Rectifier(rc, {8, 6, 3}, line_adj(10), rng), Error);
}

TEST(Rectifier, ForwardShapesPerKind) {
  Rng rng(7);
  Rng data_rng(8);
  const auto outs = fake_backbone(10, data_rng);
  for (const auto kind :
       {RectifierKind::kParallel, RectifierKind::kCascaded, RectifierKind::kSeries}) {
    Rectifier r(config(kind), {8, 6, 3}, line_adj(10), rng);
    const Matrix logits = r.forward(outs, false);
    EXPECT_EQ(logits.rows(), 10u) << rectifier_kind_name(kind);
    EXPECT_EQ(logits.cols(), 3u) << rectifier_kind_name(kind);
  }
}

TEST(Rectifier, SeriesIgnoresOtherBackboneLayers) {
  Rng rng(9);
  Rng data_rng(10);
  auto outs = fake_backbone(10, data_rng);
  Rectifier r(config(RectifierKind::kSeries), {8, 6, 3}, line_adj(10), rng);
  const Matrix a = r.forward(outs, false);
  outs[0].fill(99.0f);  // layer 0 not required by series
  outs[2].fill(-3.0f);  // logits layer not required either
  const Matrix b = r.forward(outs, false);
  EXPECT_TRUE(a.allclose(b, 0.0f));
}

TEST(Rectifier, MissingRequiredInputThrows) {
  Rng rng(11);
  Rng data_rng(12);
  auto outs = fake_backbone(10, data_rng);
  outs[1] = Matrix();  // required by series
  Rectifier r(config(RectifierKind::kSeries), {8, 6, 3}, line_adj(10), rng);
  EXPECT_THROW(r.forward(outs, false), Error);
}

TEST(Rectifier, GradCheckParallel) {
  // Numerical gradient check through the concat-and-split backward path.
  Rng rng(13);
  Rng data_rng(14);
  const std::size_t n = 10;
  const auto outs = fake_backbone(n, data_rng);
  Rectifier r(config(RectifierKind::kParallel), {8, 6, 3}, line_adj(n), rng);

  std::vector<std::uint32_t> labels(n);
  for (std::uint32_t v = 0; v < n; ++v) labels[v] = v % 3;
  const std::vector<std::uint32_t> mask = {0, 3, 6, 9};

  auto loss_of = [&]() {
    Matrix dlp;
    return nll_loss_masked(log_softmax_rows(r.forward(outs, true)), labels, mask, dlp);
  };
  ParamRefs refs;
  r.collect_parameters(refs);
  refs.zero_grad();
  {
    const Matrix logits = r.forward(outs, true);
    const Matrix logp = log_softmax_rows(logits);
    Matrix dlp;
    nll_loss_masked(logp, labels, mask, dlp);
    r.backward(log_softmax_backward(dlp, logp));
  }
  const float eps = 1e-3f;
  for (auto* param : refs.matrices) {
    const std::size_t stride = std::max<std::size_t>(1, param->value.size() / 6);
    for (std::size_t i = 0; i < param->value.size(); i += stride) {
      const float orig = param->value.data()[i];
      param->value.data()[i] = orig + eps;
      const double lp = loss_of();
      param->value.data()[i] = orig - eps;
      const double lm = loss_of();
      param->value.data()[i] = orig;
      EXPECT_NEAR(param->grad.data()[i], (lp - lm) / (2.0 * eps), 2e-3);
    }
  }
}

TEST(Rectifier, SerializeDeserializeRoundTrip) {
  Rng rng(15);
  Rng data_rng(16);
  const auto outs = fake_backbone(10, data_rng);
  Rectifier a(config(RectifierKind::kParallel), {8, 6, 3}, line_adj(10), rng);
  Rectifier b(config(RectifierKind::kParallel), {8, 6, 3}, line_adj(10), rng);
  const Matrix before = b.forward(outs, false);
  b.deserialize_weights(a.serialize_weights());
  const Matrix after = b.forward(outs, false);
  EXPECT_FALSE(before.allclose(after, 1e-6f));
  EXPECT_TRUE(after.allclose(a.forward(outs, false), 1e-6f));
}

TEST(Rectifier, DeserializeRejectsWrongShape) {
  Rng rng(17);
  Rectifier a(config(RectifierKind::kParallel), {8, 6, 3}, line_adj(10), rng);
  Rectifier b(config(RectifierKind::kSeries), {8, 6, 3}, line_adj(10), rng);
  EXPECT_THROW(b.deserialize_weights(a.serialize_weights()), Error);
}

TEST(Rectifier, DeserializeRejectsTruncatedBlob) {
  Rng rng(18);
  Rectifier a(config(RectifierKind::kSeries), {8, 6, 3}, line_adj(10), rng);
  auto blob = a.serialize_weights();
  blob.resize(blob.size() - 4);
  EXPECT_THROW(a.deserialize_weights(blob), Error);
}

TEST(Rectifier, ActivationBytesMatchChannels) {
  Rng rng(19);
  Rectifier r(config(RectifierKind::kParallel), {8, 6, 3}, line_adj(10), rng);
  const auto bytes = r.activation_bytes(100);
  EXPECT_EQ(bytes, (std::vector<std::size_t>{100 * 5 * 4, 100 * 4 * 4, 100 * 3 * 4}));
}

}  // namespace
}  // namespace gv
