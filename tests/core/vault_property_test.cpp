// Parameterized end-to-end properties of the vault across every
// (backbone kind x rectifier kind) combination, on a small dataset so the
// full product stays fast. These are the "does the partition hold for
// every configuration" guarantees.
#include <gtest/gtest.h>

#include <tuple>

#include "core/deployment.hpp"
#include "data/synthetic.hpp"

namespace gv {
namespace {

const Dataset& shared_dataset() {
  static const Dataset ds = [] {
    SyntheticSpec spec;
    spec.num_nodes = 220;
    spec.num_classes = 3;
    spec.num_undirected_edges = 700;
    spec.feature_dim = 90;
    spec.homophily = 0.85;
    spec.feature_signal = 0.30;
    spec.class_confusion = 0.7;
    spec.common_token_prob = 0.6;
    spec.subtopics_per_class = 6;
    spec.subtopic_fraction = 0.35;
    spec.prototype_size = 30;
    return generate_synthetic(spec, 2025);
  }();
  return ds;
}

using Combo = std::tuple<BackboneKind, RectifierKind>;

class VaultCombo : public ::testing::TestWithParam<Combo> {
 protected:
  static VaultTrainConfig config(const Combo& combo) {
    VaultTrainConfig cfg;
    cfg.spec = ModelSpec{"T", {24, 12}, {24, 12}, 0.3f};
    cfg.backbone = std::get<0>(combo);
    cfg.rectifier = std::get<1>(combo);
    cfg.backbone_train.epochs = 40;
    cfg.rectifier_train.epochs = 40;
    cfg.seed = 9;
    return cfg;
  }
};

TEST_P(VaultCombo, TrainsAndRectifierIsNotWorseThanChance) {
  const Dataset& ds = shared_dataset();
  const TrainedVault tv = train_vault(ds, config(GetParam()));
  EXPECT_GT(tv.rectifier_test_accuracy, 1.0 / ds.num_classes + 0.1);
  EXPECT_GT(tv.rectifier_parameters, 0u);
  EXPECT_GT(tv.backbone_parameters, tv.rectifier_parameters);
}

TEST_P(VaultCombo, EvalForwardIsDeterministic) {
  const Dataset& ds = shared_dataset();
  const TrainedVault tv = train_vault(ds, config(GetParam()));
  EXPECT_EQ(tv.predict_rectified(ds.features), tv.predict_rectified(ds.features));
}

TEST_P(VaultCombo, DeploymentMatchesPlainPathAndStaysInEpc) {
  const Dataset& ds = shared_dataset();
  TrainedVault tv = train_vault(ds, config(GetParam()));
  const auto plain = tv.predict_rectified(ds.features);
  VaultDeployment dep(ds, std::move(tv), {});
  EXPECT_EQ(dep.infer_labels(ds.features), plain);
  EXPECT_LT(dep.enclave_peak_bytes(), dep.cost_model().epc_bytes);
  EXPECT_EQ(dep.meter().page_swaps, 0u);
}

TEST_P(VaultCombo, WeightSerializationRoundTrips) {
  const Dataset& ds = shared_dataset();
  const TrainedVault tv = train_vault(ds, config(GetParam()));
  const auto blob = tv.rectifier->serialize_weights();
  const auto outputs = tv.backbone_outputs(ds.features);
  const Matrix before = tv.rectifier->forward(outputs, false);
  tv.rectifier->deserialize_weights(blob);
  EXPECT_TRUE(tv.rectifier->forward(outputs, false).allclose(before, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, VaultCombo,
    ::testing::Combine(::testing::Values(BackboneKind::kDnn, BackboneKind::kRandom,
                                         BackboneKind::kCosine, BackboneKind::kKnn),
                       ::testing::Values(RectifierKind::kParallel,
                                         RectifierKind::kCascaded,
                                         RectifierKind::kSeries)),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return backbone_kind_name(std::get<0>(info.param)) + "_" +
             rectifier_kind_name(std::get<1>(info.param));
    });

// --- Failure injection -----------------------------------------------

TEST(VaultFault, TinyEpcForcesPagingButPreservesCorrectness) {
  const Dataset& ds = shared_dataset();
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {24, 12}, {24, 12}, 0.3f};
  cfg.backbone_train.epochs = 30;
  cfg.rectifier_train.epochs = 30;
  TrainedVault tv = train_vault(ds, cfg);
  const auto plain = tv.predict_rectified(ds.features);
  DeploymentOptions opts;
  opts.cost_model.epc_bytes = 16 * 1024;  // pathological EPC
  VaultDeployment dep(ds, std::move(tv), opts);
  EXPECT_EQ(dep.infer_labels(ds.features), plain);  // slow, not wrong
  EXPECT_GT(dep.meter().page_swaps, 0u);
  // Paging must be charged in the transfer time.
  SgxCostModel no_paging = opts.cost_model;
  CostMeter stripped = dep.meter();
  stripped.page_swaps = 0;
  EXPECT_GT(dep.meter().transfer_seconds(no_paging),
            stripped.transfer_seconds(no_paging));
}

TEST(VaultFault, CorruptedWeightBlobRejected) {
  const Dataset& ds = shared_dataset();
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {24, 12}, {24, 12}, 0.3f};
  cfg.backbone_train.epochs = 20;
  cfg.rectifier_train.epochs = 20;
  const TrainedVault tv = train_vault(ds, cfg);
  auto blob = tv.rectifier->serialize_weights();
  blob[1] ^= 0xff;  // corrupt the layer-count header
  EXPECT_THROW(tv.rectifier->deserialize_weights(blob), Error);
}

}  // namespace
}  // namespace gv
