#include "core/model_spec.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gv {
namespace {

TEST(ModelSpec, M1ChannelsMatchPaper) {
  const auto spec = model_spec_m1();
  EXPECT_EQ(spec.backbone_channels(7), (std::vector<std::size_t>{128, 32, 7}));
  EXPECT_EQ(spec.rectifier_channels(7), (std::vector<std::size_t>{128, 32, 7}));
}

TEST(ModelSpec, M3IsDeeper) {
  const auto spec = model_spec_m3();
  EXPECT_EQ(spec.backbone_channels(10),
            (std::vector<std::size_t>{256, 64, 32, 16, 10}));
  EXPECT_EQ(spec.rectifier_channels(10), (std::vector<std::size_t>{64, 32, 10}));
}

TEST(ModelSpec, ByNameRoundTrip) {
  EXPECT_EQ(model_spec_by_name("M1").name, "M1");
  EXPECT_EQ(model_spec_by_name("M2").name, "M2");
  EXPECT_EQ(model_spec_by_name("M3").name, "M3");
  EXPECT_THROW(model_spec_by_name("M9"), Error);
}

TEST(ModelSpec, DatasetAssignmentFollowsPaper) {
  EXPECT_EQ(model_spec_for_dataset(DatasetId::kCora).name, "M1");
  EXPECT_EQ(model_spec_for_dataset(DatasetId::kCiteseer).name, "M1");
  EXPECT_EQ(model_spec_for_dataset(DatasetId::kPubmed).name, "M1");
  EXPECT_EQ(model_spec_for_dataset(DatasetId::kCoraFull).name, "M2");
  EXPECT_EQ(model_spec_for_dataset(DatasetId::kComputer).name, "M3");
  EXPECT_EQ(model_spec_for_dataset(DatasetId::kPhoto).name, "M3");
}

TEST(ModelSpec, M1BackboneParamCountMatchesTableTwo) {
  // Cora: 1433 -> 128 -> 32 -> 7 gives ~0.188 M parameters (Table II).
  const auto ch = model_spec_m1().backbone_channels(7);
  std::size_t params = 0;
  std::size_t in = 1433;
  for (const auto out : ch) {
    params += in * out + out;
    in = out;
  }
  EXPECT_NEAR(static_cast<double>(params) / 1e6, 0.188, 0.005);
}

}  // namespace
}  // namespace gv
