#include "core/package.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "core/deployment.hpp"
#include "data/synthetic.hpp"

namespace gv {
namespace {

Dataset pkg_dataset() {
  SyntheticSpec spec;
  spec.num_nodes = 200;
  spec.num_classes = 3;
  spec.num_undirected_edges = 600;
  spec.feature_dim = 70;
  spec.homophily = 0.85;
  return generate_synthetic(spec, 55);
}

TrainedVault quick_vault(const Dataset& ds, BackboneKind kind,
                         RectifierKind rect) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {16, 8}, {16, 8}, 0.3f};
  cfg.backbone = kind;
  cfg.rectifier = rect;
  cfg.backbone_train.epochs = 25;
  cfg.rectifier_train.epochs = 25;
  return train_vault(ds, cfg);
}

std::string temp_pkg(const char* name) { return ::testing::TempDir() + name; }

TEST(Package, RoundTripPreservesPredictions) {
  const Dataset ds = pkg_dataset();
  const TrainedVault tv =
      quick_vault(ds, BackboneKind::kKnn, RectifierKind::kParallel);
  const auto before = tv.predict_rectified(ds.features);
  const auto path = temp_pkg("gv_pkg_roundtrip.bin");
  save_vault_package(path, tv, ds.graph, ds);
  const LoadedVault lv = load_vault_package(path);
  EXPECT_EQ(lv.vault.predict_rectified(ds.features), before);
  EXPECT_EQ(lv.num_classes, ds.num_classes);
  EXPECT_EQ(lv.feature_dim, ds.feature_dim());
  std::remove(path.c_str());
}

TEST(Package, RoundTripPreservesGraphs) {
  const Dataset ds = pkg_dataset();
  const TrainedVault tv =
      quick_vault(ds, BackboneKind::kKnn, RectifierKind::kSeries);
  const auto path = temp_pkg("gv_pkg_graphs.bin");
  save_vault_package(path, tv, ds.graph, ds);
  const LoadedVault lv = load_vault_package(path);
  EXPECT_EQ(lv.private_graph.edges(), ds.graph.edges());
  EXPECT_EQ(lv.vault.substitute_graph.edges(), tv.substitute_graph.edges());
  std::remove(path.c_str());
}

TEST(Package, MlpBackboneRoundTrips) {
  const Dataset ds = pkg_dataset();
  const TrainedVault tv =
      quick_vault(ds, BackboneKind::kDnn, RectifierKind::kCascaded);
  const auto before = tv.predict_rectified(ds.features);
  const auto path = temp_pkg("gv_pkg_mlp.bin");
  save_vault_package(path, tv, ds.graph, ds);
  const LoadedVault lv = load_vault_package(path);
  EXPECT_EQ(lv.vault.backbone_gcn, nullptr);
  ASSERT_NE(lv.vault.backbone_mlp, nullptr);
  EXPECT_EQ(lv.vault.predict_rectified(ds.features), before);
  std::remove(path.c_str());
}

TEST(Package, AllRectifierKindsRoundTrip) {
  const Dataset ds = pkg_dataset();
  for (const auto kind :
       {RectifierKind::kParallel, RectifierKind::kCascaded, RectifierKind::kSeries}) {
    const TrainedVault tv = quick_vault(ds, BackboneKind::kKnn, kind);
    const auto path = temp_pkg("gv_pkg_kind.bin");
    save_vault_package(path, tv, ds.graph, ds);
    const LoadedVault lv = load_vault_package(path);
    EXPECT_EQ(lv.vault.rectifier->config().kind, kind);
    EXPECT_EQ(lv.vault.predict_rectified(ds.features),
              tv.predict_rectified(ds.features));
    std::remove(path.c_str());
  }
}

TEST(Package, LoadedVaultDeploysIdentically) {
  const Dataset ds = pkg_dataset();
  TrainedVault tv = quick_vault(ds, BackboneKind::kKnn, RectifierKind::kParallel);
  const auto path = temp_pkg("gv_pkg_deploy.bin");
  save_vault_package(path, tv, ds.graph, ds);
  LoadedVault lv = load_vault_package(path);
  VaultDeployment dep(ds, std::move(lv.vault), {});
  EXPECT_EQ(dep.infer_labels(ds.features), tv.predict_rectified(ds.features));
  std::remove(path.c_str());
}

TEST(Package, RejectsWrongMagic) {
  const auto path = temp_pkg("gv_pkg_magic.bin");
  std::ofstream(path, std::ios::binary) << "NOTPKG--garbage";
  EXPECT_THROW(load_vault_package(path), Error);
  std::remove(path.c_str());
}

TEST(Package, RejectsTruncatedFile) {
  const Dataset ds = pkg_dataset();
  const TrainedVault tv =
      quick_vault(ds, BackboneKind::kKnn, RectifierKind::kParallel);
  const auto path = temp_pkg("gv_pkg_trunc.bin");
  save_vault_package(path, tv, ds.graph, ds);
  // Truncate to 60% and expect a clean error.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(raw.data(), static_cast<std::streamsize>(raw.size() * 6 / 10));
  EXPECT_THROW(load_vault_package(path), Error);
  std::remove(path.c_str());
}

TEST(Package, RejectsMissingFile) {
  EXPECT_THROW(load_vault_package("/nonexistent/vault.bin"), Error);
}

}  // namespace
}  // namespace gv
