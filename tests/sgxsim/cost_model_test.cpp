#include "sgxsim/cost_model.hpp"

#include <gtest/gtest.h>

namespace gv {
namespace {

TEST(CostModel, CyclesToSeconds) {
  SgxCostModel m;
  m.cpu_ghz = 2.0;
  EXPECT_DOUBLE_EQ(m.cycles_to_seconds(2e9), 1.0);
}

TEST(CostModel, DefaultsMatchPaperPlatform) {
  SgxCostModel m;
  EXPECT_DOUBLE_EQ(m.cpu_ghz, 3.6);  // i7-7700
  EXPECT_EQ(m.epc_bytes, 96ull * 1024 * 1024);
  EXPECT_EQ(m.prm_bytes, 128ull * 1024 * 1024);
  EXPECT_GT(m.enclave_compute_slowdown, 1.0);
}

TEST(CostMeter, TransferSecondsSumsComponents) {
  SgxCostModel m;
  m.cpu_ghz = 1.0;  // 1 cycle = 1 ns
  m.ecall_cycles = 1000;
  m.ocall_cycles = 500;
  m.transfer_cycles_per_byte = 2.0;
  m.page_swap_cycles = 10000;
  CostMeter meter;
  meter.ecalls = 2;
  meter.ocalls = 1;
  meter.bytes_in = 100;
  meter.page_swaps = 3;
  const double expect = (2 * 1000 + 1 * 500 + 100 * 2.0 + 3 * 10000) / 1e9;
  EXPECT_DOUBLE_EQ(meter.transfer_seconds(m), expect);
}

TEST(CostMeter, TotalIncludesComputePhases) {
  SgxCostModel m;
  CostMeter meter;
  meter.untrusted_compute_seconds = 0.5;
  meter.enclave_compute_seconds = 0.25;
  EXPECT_NEAR(meter.total_seconds(m), 0.75, 1e-12);
}

TEST(CostMeter, ResetClearsEverything) {
  CostMeter meter;
  meter.ecalls = 5;
  meter.bytes_in = 100;
  meter.enclave_compute_seconds = 1.0;
  meter.reset();
  EXPECT_EQ(meter.ecalls, 0u);
  EXPECT_EQ(meter.bytes_in, 0u);
  EXPECT_DOUBLE_EQ(meter.enclave_compute_seconds, 0.0);
}

TEST(CostMeter, SummaryMentionsComponents) {
  SgxCostModel m;
  CostMeter meter;
  meter.ecalls = 7;
  const auto s = meter.summary(m);
  EXPECT_NE(s.find("ecalls=7"), std::string::npos);
  EXPECT_NE(s.find("backbone="), std::string::npos);
}

}  // namespace
}  // namespace gv
