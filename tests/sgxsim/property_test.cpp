// Parameterized properties of the enclave simulator: sealing round-trips
// at many sizes, ledger accounting against a reference model, paging cost
// monotonicity, and fault injection on sealed blobs.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "sgxsim/enclave.hpp"

namespace gv {
namespace {

class SealProperty : public ::testing::TestWithParam<int> {};

TEST_P(SealProperty, RoundTripAtSize) {
  Enclave e("seal", SgxCostModel{});
  e.extend_measurement(std::string("code"));
  e.initialize();
  Rng rng(GetParam());
  std::vector<std::uint8_t> data(static_cast<std::size_t>(GetParam()));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  const auto blob = e.seal(data);
  EXPECT_EQ(e.unseal(blob), data);
}

TEST_P(SealProperty, SingleBitFlipAnywhereIsDetected) {
  Enclave e("seal", SgxCostModel{});
  e.extend_measurement(std::string("code"));
  e.initialize();
  std::vector<std::uint8_t> data(static_cast<std::size_t>(GetParam()), 0x77);
  auto blob = e.seal(data);
  if (blob.ciphertext.empty()) return;
  Rng rng(GetParam() + 1);
  // Flip a random bit in the ciphertext and a random bit in the tag.
  const auto byte = rng.uniform_index(blob.ciphertext.size());
  blob.ciphertext[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
  EXPECT_THROW(e.unseal(blob), Error);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SealProperty,
                         ::testing::Values(1, 15, 16, 17, 63, 64, 65, 255, 4096,
                                           100001));

TEST(LedgerProperty, RandomOpsMatchReferenceModel) {
  MemoryLedger ledger;
  std::map<std::string, std::size_t> reference;
  std::size_t ref_current = 0, ref_peak = 0;
  Rng rng(321);
  for (int op = 0; op < 2000; ++op) {
    const std::string name = "buf" + std::to_string(rng.uniform_index(20));
    const auto choice = rng.uniform_index(3);
    if (choice == 0) {  // set
      const std::size_t bytes = rng.uniform_index(1 << 16);
      const auto it = reference.find(name);
      if (it != reference.end()) ref_current -= it->second;
      reference[name] = bytes;
      ref_current += bytes;
      ref_peak = std::max(ref_peak, ref_current);
      ledger.set(name, bytes);
    } else if (choice == 1) {  // alloc fresh only
      if (reference.count(name)) continue;
      const std::size_t bytes = rng.uniform_index(1 << 12);
      reference[name] = bytes;
      ref_current += bytes;
      ref_peak = std::max(ref_peak, ref_current);
      ledger.alloc(name, bytes);
    } else {  // free if live
      const auto it = reference.find(name);
      if (it == reference.end()) continue;
      ref_current -= it->second;
      reference.erase(it);
      ledger.free(name);
    }
    ASSERT_EQ(ledger.current_bytes(), ref_current);
    ASSERT_EQ(ledger.peak_bytes(), ref_peak);
    ASSERT_EQ(ledger.live_allocations(), reference.size());
  }
}

class PagingProperty : public ::testing::TestWithParam<int> {};

TEST_P(PagingProperty, SwapCountScalesWithOverflowPages) {
  SgxCostModel model;
  model.epc_bytes = 64 * 1024;
  Enclave e("paging", model);
  e.initialize();
  const int overflow_pages = GetParam();
  e.memory().set("ws", model.epc_bytes +
                           static_cast<std::size_t>(overflow_pages) * model.page_bytes);
  e.ecall([] {});
  EXPECT_EQ(e.meter().page_swaps, static_cast<std::uint64_t>(2 * overflow_pages));
}

INSTANTIATE_TEST_SUITE_P(Pages, PagingProperty, ::testing::Values(1, 2, 7, 64, 1000));

TEST(CostProperty, TransferTimeMonotoneInEveryCounter) {
  SgxCostModel m;
  CostMeter base;
  base.ecalls = 3;
  base.bytes_in = 1000;
  base.page_swaps = 2;
  const double t0 = base.transfer_seconds(m);
  for (int field = 0; field < 4; ++field) {
    CostMeter more = base;
    switch (field) {
      case 0: more.ecalls += 1; break;
      case 1: more.ocalls += 1; break;
      case 2: more.bytes_in += 1024; break;
      case 3: more.page_swaps += 1; break;
    }
    EXPECT_GT(more.transfer_seconds(m), t0) << "field " << field;
  }
}

TEST(MeasurementProperty, OrderOfBlobsMatters) {
  Enclave a("m", SgxCostModel{});
  a.extend_measurement(std::string("one"));
  a.extend_measurement(std::string("two"));
  a.initialize();
  Enclave b("m", SgxCostModel{});
  b.extend_measurement(std::string("two"));
  b.extend_measurement(std::string("one"));
  b.initialize();
  EXPECT_NE(to_hex(a.measurement()), to_hex(b.measurement()));
}

}  // namespace
}  // namespace gv
