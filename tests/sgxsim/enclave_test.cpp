#include "sgxsim/enclave.hpp"

#include <gtest/gtest.h>

namespace gv {
namespace {

Enclave make_initialized(const std::string& name = "test",
                         SgxCostModel model = {}) {
  Enclave e(name, model);
  e.extend_measurement(std::string("code-v1"));
  e.initialize();
  return e;
}

TEST(MemoryLedger, TracksCurrentAndPeak) {
  MemoryLedger ledger;
  ledger.alloc("a", 100);
  ledger.alloc("b", 50);
  EXPECT_EQ(ledger.current_bytes(), 150u);
  ledger.free("a");
  EXPECT_EQ(ledger.current_bytes(), 50u);
  EXPECT_EQ(ledger.peak_bytes(), 150u);
}

TEST(MemoryLedger, DoubleAllocThrows) {
  MemoryLedger ledger;
  ledger.alloc("a", 1);
  EXPECT_THROW(ledger.alloc("a", 2), Error);
}

TEST(MemoryLedger, FreeUnknownThrows) {
  MemoryLedger ledger;
  EXPECT_THROW(ledger.free("ghost"), Error);
}

TEST(MemoryLedger, SetReplacesSize) {
  MemoryLedger ledger;
  ledger.set("buf", 100);
  ledger.set("buf", 40);
  EXPECT_EQ(ledger.current_bytes(), 40u);
  EXPECT_EQ(ledger.peak_bytes(), 100u);
  EXPECT_EQ(ledger.live_allocations(), 1u);
}

TEST(Enclave, MeasurementOnlyAfterInitialize) {
  Enclave e("m", SgxCostModel{});
  EXPECT_THROW(e.measurement(), Error);
  e.initialize();
  EXPECT_NO_THROW(e.measurement());
}

TEST(Enclave, MeasurementDependsOnLoadedBlobs) {
  Enclave a("same", SgxCostModel{});
  a.extend_measurement(std::string("blob1"));
  a.initialize();
  Enclave b("same", SgxCostModel{});
  b.extend_measurement(std::string("blob2"));
  b.initialize();
  EXPECT_NE(to_hex(a.measurement()), to_hex(b.measurement()));
}

TEST(Enclave, ExtendAfterInitThrows) {
  auto e = make_initialized();
  EXPECT_THROW(e.extend_measurement(std::string("late")), Error);
}

TEST(Enclave, EcallBeforeInitThrows) {
  Enclave e("x", SgxCostModel{});
  EXPECT_THROW(e.ecall([] {}), Error);
}

TEST(Enclave, EcallCountsTransitionsAndReturnsValue) {
  auto e = make_initialized();
  const int v = e.ecall([] { return 41 + 1; });
  EXPECT_EQ(v, 42);
  e.ecall([] {});
  EXPECT_EQ(e.meter().ecalls, 2u);
}

TEST(Enclave, EcallAccumulatesComputeTime) {
  auto e = make_initialized();
  e.ecall([] {
    volatile double x = 0.0;
    for (int i = 0; i < 100000; ++i) x += i;
  });
  EXPECT_GT(e.meter().enclave_compute_seconds, 0.0);
}

TEST(Enclave, PagingChargedWhenWorkingSetExceedsEpc) {
  SgxCostModel model;
  model.epc_bytes = 1024;  // tiny EPC for the test
  Enclave e("paging", model);
  e.initialize();
  e.memory().set("big", 1024 + 4096 * 3);
  e.ecall([] {});
  // 3 overflowing pages, swapped in and out.
  EXPECT_EQ(e.meter().page_swaps, 6u);
  EXPECT_FALSE(e.fits_in_epc());
}

TEST(Enclave, NoPagingUnderEpc) {
  auto e = make_initialized();
  e.memory().set("small", 1 << 20);
  e.ecall([] {});
  EXPECT_EQ(e.meter().page_swaps, 0u);
  EXPECT_TRUE(e.fits_in_epc());
}

TEST(Enclave, SealUnsealRoundTrip) {
  auto e = make_initialized();
  std::vector<std::uint8_t> secret = {9, 8, 7, 6};
  const auto blob = e.seal(secret);
  EXPECT_EQ(e.unseal(blob), secret);
}

TEST(Enclave, SealedBlobsUseDistinctNonces) {
  auto e = make_initialized();
  std::vector<std::uint8_t> secret = {1, 2, 3};
  const auto b1 = e.seal(secret);
  const auto b2 = e.seal(secret);
  EXPECT_NE(b1.nonce, b2.nonce);
  EXPECT_NE(b1.ciphertext, b2.ciphertext);
}

TEST(Enclave, UnsealByDifferentIdentityFails) {
  Enclave a("ident", SgxCostModel{});
  a.extend_measurement(std::string("codeA"));
  a.initialize();
  Enclave b("ident", SgxCostModel{});
  b.extend_measurement(std::string("codeB"));
  b.initialize();
  const auto blob = a.seal(std::vector<std::uint8_t>{5, 5, 5});
  EXPECT_THROW(b.unseal(blob), Error);
}

TEST(Enclave, UnsealOnDifferentPlatformFails) {
  Sha256 h;
  h.update(std::string("other-cpu"));
  const auto other_key = h.finish();
  Enclave a("p", SgxCostModel{});
  a.extend_measurement(std::string("code"));
  a.initialize();
  Enclave b("p", SgxCostModel{}, other_key);
  b.extend_measurement(std::string("code"));
  b.initialize();
  const auto blob = a.seal(std::vector<std::uint8_t>{1});
  EXPECT_THROW(b.unseal(blob), Error);
}

TEST(Enclave, TamperedSealedBlobFails) {
  auto e = make_initialized();
  auto blob = e.seal(std::vector<std::uint8_t>(100, 0xab));
  blob.ciphertext[50] ^= 1;
  EXPECT_THROW(e.unseal(blob), Error);
}

TEST(Enclave, ReportVerifiesOnSamePlatform) {
  auto e = make_initialized();
  const std::vector<std::uint8_t> user_data = {1, 2, 3};
  const auto report = e.create_report(user_data);
  EXPECT_TRUE(Enclave::verify_report(report, Enclave::default_platform_key()));
}

TEST(Enclave, ReportRejectsForgedMeasurement) {
  auto e = make_initialized();
  auto report = e.create_report(std::vector<std::uint8_t>{1});
  report.measurement[0] ^= 0xff;
  EXPECT_FALSE(Enclave::verify_report(report, Enclave::default_platform_key()));
}

TEST(Enclave, ReportRejectsWrongPlatformKey) {
  auto e = make_initialized();
  const auto report = e.create_report(std::vector<std::uint8_t>{1});
  Sha256 h;
  h.update(std::string("not-the-platform"));
  EXPECT_FALSE(Enclave::verify_report(report, h.finish()));
}

}  // namespace
}  // namespace gv
