#include "sgxsim/sha256.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/error.hpp"

namespace gv {
namespace {

std::span<const std::uint8_t> bytes_of(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s), std::strlen(s)};
}

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update(bytes_of("ab"));
  h.update(bytes_of("c"));
  EXPECT_EQ(to_hex(h.finish()), to_hex(Sha256::hash(bytes_of("abc"))));
}

TEST(Sha256, SplitAtBlockBoundary) {
  std::vector<std::uint8_t> data(130, 0x5a);
  Sha256 a;
  a.update(std::span<const std::uint8_t>(data.data(), 64));
  a.update(std::span<const std::uint8_t>(data.data() + 64, 66));
  Sha256 b;
  b.update(data);
  EXPECT_EQ(to_hex(a.finish()), to_hex(b.finish()));
}

TEST(Sha256, ReuseAfterFinishThrows) {
  Sha256 h;
  h.update(bytes_of("x"));
  h.finish();
  EXPECT_THROW(h.update(bytes_of("y")), Error);
  EXPECT_THROW(h.finish(), Error);
}

// RFC 4231 HMAC-SHA256 test case 2.
TEST(HmacSha256, Rfc4231Case2) {
  const auto mac = hmac_sha256(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1 (20-byte 0x0b key).
TEST(HmacSha256, Rfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  const auto mac = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 6: key longer than the block size (hashed first).
TEST(HmacSha256, LongKeyIsHashed) {
  std::vector<std::uint8_t> key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, DifferentKeysDifferentMacs) {
  const auto m1 = hmac_sha256(bytes_of("k1"), bytes_of("data"));
  const auto m2 = hmac_sha256(bytes_of("k2"), bytes_of("data"));
  EXPECT_NE(to_hex(m1), to_hex(m2));
}

}  // namespace
}  // namespace gv
