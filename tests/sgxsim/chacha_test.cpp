#include "sgxsim/chacha20poly1305.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/error.hpp"

namespace gv {
namespace {

std::string hex(std::span<const std::uint8_t> data) {
  static const char* h = "0123456789abcdef";
  std::string s;
  for (const auto b : data) {
    s += h[b >> 4];
    s += h[b & 0xf];
  }
  return s;
}

// RFC 8439 Sec. 2.4.2 ChaCha20 encryption test vector.
TEST(ChaCha20, Rfc8439EncryptionVector) {
  AeadKey key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  AeadNonce nonce = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<std::uint8_t> ct(plaintext.size());
  chacha20_xor(key, nonce, 1,
               {reinterpret_cast<const std::uint8_t*>(plaintext.data()),
                plaintext.size()},
               ct.data());
  EXPECT_EQ(hex(std::span<const std::uint8_t>(ct.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  EXPECT_EQ(hex(std::span<const std::uint8_t>(ct.data() + ct.size() - 16, 16)),
            "0bbf74a35be6b40b8eedf2785e42874d");
}

// The >=256-byte lane-interleaved fast path must produce the SAME keystream
// as the scalar path: a 5-block message keystream (wide path for the first
// 4 blocks + scalar tail) must equal five single-block calls with counters
// c..c+4 (each too short to enter the wide path).  A per-lane counter or
// offset bug would pass round-trip tests while silently diverging from RFC
// ChaCha20.
TEST(ChaCha20, WideAndScalarPathsProduceTheSameKeystream) {
  AeadKey key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(0xa0 + i);
  AeadNonce nonce = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  const std::uint32_t counter = 7;
  std::vector<std::uint8_t> zeros(320, 0);
  std::vector<std::uint8_t> wide(zeros.size());
  chacha20_xor(key, nonce, counter, zeros, wide.data());
  for (std::uint32_t b = 0; b < 5; ++b) {
    std::vector<std::uint8_t> zero_block(64, 0), scalar(64);
    chacha20_xor(key, nonce, counter + b, zero_block, scalar.data());
    EXPECT_EQ(hex(std::span<const std::uint8_t>(wide.data() + b * 64, 64)),
              hex(scalar))
        << "block " << b;
  }
}

TEST(ChaCha20, XorIsItsOwnInverse) {
  AeadKey key{};
  key[0] = 0x42;
  AeadNonce nonce{};
  std::vector<std::uint8_t> pt(301);
  for (std::size_t i = 0; i < pt.size(); ++i) pt[i] = static_cast<std::uint8_t>(i);
  std::vector<std::uint8_t> ct(pt.size()), rt(pt.size());
  chacha20_xor(key, nonce, 7, pt, ct.data());
  chacha20_xor(key, nonce, 7, ct, rt.data());
  EXPECT_EQ(pt, rt);
}

// RFC 8439 Sec. 2.5.2 Poly1305 test vector.
TEST(Poly1305, Rfc8439MacVector) {
  std::array<std::uint8_t, 32> key = {
      0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52,
      0xfe, 0x42, 0xd5, 0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d,
      0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf, 0x41, 0x49, 0xf5, 0x1b};
  const std::string msg = "Cryptographic Forum Research Group";
  const AeadTag tag = poly1305_mac(
      {reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()}, key);
  EXPECT_EQ(hex(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

// RFC 8439 Sec. 2.8.2 AEAD test vector.
TEST(Aead, Rfc8439SealVector) {
  AeadKey key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(0x80 + i);
  AeadNonce nonce = {0x07, 0, 0, 0, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47};
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const std::uint8_t aad[] = {0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1,
                              0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7};
  AeadTag tag;
  const auto ct = aead_encrypt(
      key, nonce,
      {reinterpret_cast<const std::uint8_t*>(plaintext.data()), plaintext.size()},
      aad, tag);
  EXPECT_EQ(hex(std::span<const std::uint8_t>(ct.data(), 16)),
            "d31a8d34648e60db7b86afbc53ef7ec2");
  EXPECT_EQ(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
}

TEST(Aead, RoundTripRestoresPlaintext) {
  AeadKey key{};
  key[5] = 9;
  AeadNonce nonce{};
  nonce[0] = 1;
  std::vector<std::uint8_t> pt = {1, 2, 3, 4, 5, 200, 250};
  AeadTag tag;
  const auto ct = aead_encrypt(key, nonce, pt, {}, tag);
  EXPECT_EQ(aead_decrypt(key, nonce, ct, {}, tag), pt);
}

TEST(Aead, TamperedCiphertextRejected) {
  AeadKey key{};
  AeadNonce nonce{};
  std::vector<std::uint8_t> pt(64, 7);
  AeadTag tag;
  auto ct = aead_encrypt(key, nonce, pt, {}, tag);
  ct[10] ^= 1;
  EXPECT_THROW(aead_decrypt(key, nonce, ct, {}, tag), Error);
}

TEST(Aead, TamperedTagRejected) {
  AeadKey key{};
  AeadNonce nonce{};
  std::vector<std::uint8_t> pt(16, 3);
  AeadTag tag;
  const auto ct = aead_encrypt(key, nonce, pt, {}, tag);
  AeadTag bad = tag;
  bad[0] ^= 0x80;
  EXPECT_THROW(aead_decrypt(key, nonce, ct, {}, bad), Error);
}

TEST(Aead, WrongAadRejected) {
  AeadKey key{};
  AeadNonce nonce{};
  std::vector<std::uint8_t> pt(16, 3);
  const std::uint8_t aad1[] = {1, 2, 3};
  const std::uint8_t aad2[] = {1, 2, 4};
  AeadTag tag;
  const auto ct = aead_encrypt(key, nonce, pt, aad1, tag);
  EXPECT_THROW(aead_decrypt(key, nonce, ct, aad2, tag), Error);
}

TEST(Aead, EmptyPlaintextStillAuthenticated) {
  AeadKey key{};
  AeadNonce nonce{};
  AeadTag tag;
  const auto ct = aead_encrypt(key, nonce, {}, {}, tag);
  EXPECT_TRUE(ct.empty());
  EXPECT_NO_THROW(aead_decrypt(key, nonce, ct, {}, tag));
  AeadTag bad = tag;
  bad[3] ^= 2;
  EXPECT_THROW(aead_decrypt(key, nonce, ct, {}, bad), Error);
}

}  // namespace
}  // namespace gv
