#include "sgxsim/channel.hpp"

#include <gtest/gtest.h>

namespace gv {
namespace {

TEST(Channel, PushPopFifoOrder) {
  Enclave e("ch", SgxCostModel{});
  e.initialize();
  OneWayChannel ch(e);
  auto tx = ch.sender();
  auto rx = ch.receiver();
  tx.push(Matrix(1, 1, 1.0f));
  tx.push(Matrix(1, 1, 2.0f));
  EXPECT_EQ(rx.pending(), 2u);
  EXPECT_FLOAT_EQ(rx.pop()(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(rx.pop()(0, 0), 2.0f);
  EXPECT_TRUE(rx.empty());
}

TEST(Channel, PopEmptyThrows) {
  Enclave e("ch", SgxCostModel{});
  e.initialize();
  OneWayChannel ch(e);
  auto rx = ch.receiver();
  EXPECT_THROW(rx.pop(), Error);
}

TEST(Channel, CountsBytesAndBlocks) {
  Enclave e("ch", SgxCostModel{});
  e.initialize();
  OneWayChannel ch(e);
  auto tx = ch.sender();
  tx.push(Matrix(10, 10));  // 400 bytes
  tx.push(Matrix(5, 2));    // 40 bytes
  EXPECT_EQ(ch.total_blocks_pushed(), 2u);
  EXPECT_EQ(ch.total_bytes_pushed(), 440u);
  EXPECT_EQ(e.meter().bytes_in, 440u);
}

TEST(Channel, StagingMemoryTrackedInLedger) {
  Enclave e("ch", SgxCostModel{});
  e.initialize();
  OneWayChannel ch(e);
  auto tx = ch.sender();
  auto rx = ch.receiver();
  tx.push(Matrix(100, 10));  // 4000 bytes staged
  EXPECT_EQ(e.memory().current_bytes(), 4000u);
  rx.pop();
  EXPECT_EQ(e.memory().current_bytes(), 0u);
  EXPECT_EQ(e.memory().peak_bytes(), 4000u);
}

TEST(Channel, MultipleStagedBlocksSumInLedger) {
  Enclave e("ch", SgxCostModel{});
  e.initialize();
  OneWayChannel ch(e);
  auto tx = ch.sender();
  tx.push(Matrix(10, 10));  // 400
  tx.push(Matrix(20, 10));  // 800
  EXPECT_EQ(e.memory().current_bytes(), 1200u);
}

// The one-way property is structural: TrustedReceiver has no push API and
// UntrustedSender has no pop API. This test documents the surface.
template <typename T>
concept CanPush = requires(T t, Matrix m) { t.push(m); };
template <typename T>
concept CanPop = requires(T t) { t.pop(); };

TEST(Channel, EndpointsAreDirectional) {
  static_assert(CanPush<UntrustedSender>);
  static_assert(CanPop<TrustedReceiver>);
  static_assert(!CanPush<TrustedReceiver>);
  static_assert(!CanPop<UntrustedSender>);
  SUCCEED();
}

}  // namespace
}  // namespace gv
