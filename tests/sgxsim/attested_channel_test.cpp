// Mutually attested enclave-to-enclave channel: handshake, payload
// integrity, cross-code rejection, and the payload-kind audit counters the
// no-adjacency-leak argument rests on.
#include "sgxsim/attested_channel.hpp"

#include <gtest/gtest.h>

namespace gv {
namespace {

Enclave make_enclave(const std::string& tag, const Sha256Digest& platform_key) {
  Enclave e("shardvault.test", SgxCostModel{}, platform_key);
  e.extend_measurement(tag);
  e.initialize();
  return e;
}

Sha256Digest other_platform() {
  Sha256 h;
  h.update(std::string("some-other-machine"));
  return h.finish();
}

TEST(AttestedChannel, RoundTripsEmbeddingsBothDirections) {
  Enclave a = make_enclave("code-v1", Enclave::default_platform_key());
  Enclave b = make_enclave("code-v1", Enclave::default_platform_key());
  AttestedChannel ch(a, b);

  Matrix rows{{1.0f, 2.0f}, {3.0f, 4.0f}};
  ch.send_embeddings(a, {10, 20}, rows);
  ASSERT_TRUE(ch.has_embeddings(b));
  EXPECT_FALSE(ch.has_embeddings(a));
  const auto got = ch.recv_embeddings(b);
  EXPECT_EQ(got.nodes, (std::vector<std::uint32_t>{10, 20}));
  EXPECT_TRUE(got.rows.allclose(rows));

  ch.send_embeddings(b, {7}, Matrix{{9.0f, 8.0f}});
  const auto back = ch.recv_embeddings(a);
  EXPECT_EQ(back.nodes, (std::vector<std::uint32_t>{7}));
}

TEST(AttestedChannel, CrossPlatformHandshakeWithKnownKeys) {
  // Remote-attestation stand-in: the verifier trusts each platform's key.
  Enclave a = make_enclave("code-v1", Enclave::default_platform_key());
  Enclave b = make_enclave("code-v1", other_platform());
  AttestedChannel ch(a, b, Enclave::default_platform_key(), other_platform());
  ch.send_labels(a, {1, 2}, {5, 6});
  const auto got = ch.recv_labels(b);
  EXPECT_EQ(got.labels, (std::vector<std::uint32_t>{5, 6}));
}

TEST(AttestedChannel, RejectsWrongPlatformKey) {
  Enclave a = make_enclave("code-v1", Enclave::default_platform_key());
  Enclave b = make_enclave("code-v1", other_platform());
  // Verifier believes b runs on the default platform: report MAC fails.
  EXPECT_THROW(AttestedChannel(a, b, Enclave::default_platform_key(),
                               Enclave::default_platform_key()),
               Error);
}

TEST(AttestedChannel, RejectsPeerRunningDifferentCode) {
  Enclave a = make_enclave("code-v1", Enclave::default_platform_key());
  Enclave b = make_enclave("code-v2", Enclave::default_platform_key());
  EXPECT_THROW(AttestedChannel(a, b), Error);
}

TEST(AttestedChannel, OnlyEndpointsMayUseIt) {
  Enclave a = make_enclave("code-v1", Enclave::default_platform_key());
  Enclave b = make_enclave("code-v1", Enclave::default_platform_key());
  Enclave c = make_enclave("code-v1", Enclave::default_platform_key());
  AttestedChannel ch(a, b);
  EXPECT_THROW(ch.send_labels(c, {1}, {1}), Error);
  EXPECT_THROW(ch.recv_labels(c), Error);
}

TEST(AttestedChannel, AuditCountersSplitByPayloadKind) {
  Enclave a = make_enclave("code-v1", Enclave::default_platform_key());
  Enclave b = make_enclave("code-v1", Enclave::default_platform_key());
  AttestedChannel ch(a, b);
  ch.send_embeddings(a, {1}, Matrix{{1.0f, 2.0f, 3.0f}});
  ch.send_labels(a, {1}, {4});
  ch.send_package(a, std::vector<std::uint8_t>(100, 0xAB));

  EXPECT_GT(ch.embedding_bytes(), 0u);
  EXPECT_GT(ch.label_bytes(), 0u);
  EXPECT_EQ(ch.package_bytes(), 100u);
  EXPECT_EQ(ch.total_payload_bytes(),
            ch.embedding_bytes() + ch.label_bytes() + ch.package_bytes());
  EXPECT_EQ(ch.blocks_sent(), 3u);
  // The receiving enclave was charged for the crossing bytes.
  EXPECT_GT(b.meter_snapshot().bytes_in, 0u);
  EXPECT_EQ(ch.recv_package(b).size(), 100u);
}

TEST(AttestedChannel, RecvOnEmptyThrows) {
  Enclave a = make_enclave("code-v1", Enclave::default_platform_key());
  Enclave b = make_enclave("code-v1", Enclave::default_platform_key());
  AttestedChannel ch(a, b);
  EXPECT_THROW(ch.recv_embeddings(a), Error);
  EXPECT_THROW(ch.recv_labels(b), Error);
  EXPECT_THROW(ch.recv_transfer(b), Error);
}

TEST(AttestedChannel, PadBucketIsNextPowerOfTwoFloor64) {
  EXPECT_EQ(AttestedChannel::pad_bucket(0), 64u);
  EXPECT_EQ(AttestedChannel::pad_bucket(1), 64u);
  EXPECT_EQ(AttestedChannel::pad_bucket(64), 64u);
  EXPECT_EQ(AttestedChannel::pad_bucket(65), 128u);
  EXPECT_EQ(AttestedChannel::pad_bucket(1000), 1024u);
  EXPECT_EQ(AttestedChannel::pad_bucket(4096), 4096u);
}

TEST(AttestedChannel, PaddingHidesCardinalityButCountersStayLogical) {
  Enclave a = make_enclave("code-v1", Enclave::default_platform_key());
  Enclave b = make_enclave("code-v1", Enclave::default_platform_key());
  AttestedChannel ch(a, b);

  // Three-node halo-pull request: logical 4 + 3*4 = 16 bytes, one 64-byte
  // wire bucket — the relay cannot count the frontier.
  ch.send_request(a, {1, 2, 3});
  EXPECT_EQ(ch.request_bytes(), 16u);
  EXPECT_EQ(ch.padded_bytes(), 64u);
  EXPECT_EQ(ch.recv_request(b), (std::vector<std::uint32_t>{1, 2, 3}));

  // A 5-node request lands in the SAME bucket: sizes are indistinguishable.
  ch.send_request(a, {1, 2, 3, 4, 5});
  EXPECT_EQ(ch.padded_bytes(), 128u);
  (void)ch.recv_request(b);

  // Embedding blocks pad the same way and still parse exactly.
  ch.send_embeddings(a, {10}, Matrix{{1.0f, 2.0f}});
  const auto got = ch.recv_embeddings(b);
  EXPECT_EQ(got.nodes, (std::vector<std::uint32_t>{10}));
  EXPECT_GE(ch.padded_bytes(), ch.total_payload_bytes());
}

TEST(AttestedChannel, QueryIdTrailerRoundTripsWithoutTouchingTheAudit) {
  Enclave a = make_enclave("code-v1", Enclave::default_platform_key());
  Enclave b = make_enclave("code-v1", Enclave::default_platform_key());
  AttestedChannel ch(a, b);

  // The QueryLens trace id rides as a sealed trailer: it round-trips...
  ch.send_request(a, {1, 2, 3}, /*query_id=*/0x1234567890abcdULL);
  std::uint64_t qid = 0;
  EXPECT_EQ(ch.recv_request(b, &qid), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(qid, 0x1234567890abcdULL);
  // ...but the LOGICAL audit still counts only the frontier bytes (16 for
  // three nodes), and the 24-byte sealed payload stays in the same 64-byte
  // wire bucket — telemetry costs neither audit truth nor size hiding.
  EXPECT_EQ(ch.request_bytes(), 16u);
  EXPECT_EQ(ch.padded_bytes(), 64u);

  // Untraced requests (default id 0) read back as 0; a caller that does
  // not care may pass no out-param at all.
  ch.send_request(a, {9});
  qid = 77;
  (void)ch.recv_request(b, &qid);
  EXPECT_EQ(qid, 0u);
  ch.send_request(a, {8}, 42);
  EXPECT_EQ(ch.recv_request(b), (std::vector<std::uint32_t>{8}));
}

TEST(AttestedChannel, NodeTransferRoundTripsAndIsAuditedSeparately) {
  Enclave a = make_enclave("code-v1", Enclave::default_platform_key());
  Enclave b = make_enclave("code-v1", Enclave::default_platform_key());
  AttestedChannel ch(a, b);

  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5, 6, 7};
  ch.send_transfer(a, payload);
  ASSERT_TRUE(ch.has_transfer(b));
  EXPECT_FALSE(ch.has_transfer(a));
  EXPECT_EQ(ch.recv_transfer(b), payload);  // padding stripped exactly

  // Transfers are their own audit bucket — the "may carry adjacency" kind
  // never hides inside embedding or package traffic.
  EXPECT_EQ(ch.transfer_bytes(), payload.size());
  EXPECT_EQ(ch.embedding_bytes(), 0u);
  EXPECT_EQ(ch.package_bytes(), 0u);

  ch.send_transfer(a, payload);
  ch.drop_pending();
  EXPECT_FALSE(ch.has_transfer(b));
}

}  // namespace
}  // namespace gv
