#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gv {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(m(r, c), 1.5f);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 3.0f);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), Error);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_FLOAT_EQ(i(r, c), r == c ? 1.0f : 0.0f);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 2), Error);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, TransposedSwapsIndices) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_FLOAT_EQ(t(2, 1), 6.0f);
  EXPECT_FLOAT_EQ(t(0, 0), 1.0f);
}

TEST(Matrix, TransposeTwiceIsIdentityOp) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_TRUE(m.transposed().transposed().allclose(m));
}

TEST(Matrix, GatherRowsSelectsInOrder) {
  Matrix m{{1, 1}, {2, 2}, {3, 3}};
  const std::uint32_t idx[] = {2, 0};
  const Matrix g = m.gather_rows(std::span<const std::uint32_t>(idx, 2));
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_FLOAT_EQ(g(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(g(1, 0), 1.0f);
}

TEST(Matrix, GatherRowsOutOfRangeThrows) {
  Matrix m(2, 2);
  const std::uint32_t idx[] = {5};
  EXPECT_THROW(m.gather_rows(std::span<const std::uint32_t>(idx, 1)), Error);
}

TEST(Matrix, HconcatJoinsColumns) {
  Matrix a{{1}, {2}};
  Matrix b{{3, 4}, {5, 6}};
  const Matrix c = Matrix::hconcat(a, b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_FLOAT_EQ(c(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 5.0f);
}

TEST(Matrix, HconcatRowMismatchThrows) {
  Matrix a(2, 1);
  Matrix b(3, 1);
  EXPECT_THROW(Matrix::hconcat(a, b), Error);
}

TEST(Matrix, PlusEqualsAddsElementwise) {
  Matrix a{{1, 2}};
  Matrix b{{10, 20}};
  a += b;
  EXPECT_FLOAT_EQ(a(0, 1), 22.0f);
}

TEST(Matrix, MinusEqualsShapeMismatchThrows) {
  Matrix a(1, 2), b(2, 1);
  EXPECT_THROW(a -= b, Error);
}

TEST(Matrix, ScaleInPlace) {
  Matrix a{{2, -4}};
  a *= 0.5f;
  EXPECT_FLOAT_EQ(a(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(a(0, 1), -2.0f);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a{{3, 4}};
  EXPECT_NEAR(a.frobenius_norm(), 5.0f, 1e-6);
}

TEST(Matrix, AllcloseRespectsTolerance) {
  Matrix a{{1.0f}};
  Matrix b{{1.0001f}};
  EXPECT_TRUE(a.allclose(b, 1e-3f));
  EXPECT_FALSE(a.allclose(b, 1e-6f));
}

TEST(Matrix, PayloadBytes) {
  Matrix a(10, 10);
  EXPECT_EQ(a.payload_bytes(), 400u);
}

TEST(Matrix, FillResetsAllElements) {
  Matrix a(3, 3, 7.0f);
  a.fill(0.0f);
  EXPECT_FLOAT_EQ(a.frobenius_norm(), 0.0f);
}

}  // namespace
}  // namespace gv
