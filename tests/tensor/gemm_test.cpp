#include "tensor/gemm.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gv {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return m;
}

/// Reference triple-loop multiply.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k)
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += a(i, k) * b(k, j);
  return c;
}

TEST(Gemm, SmallKnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = random_matrix(7, 7, rng);
  EXPECT_TRUE(matmul(a, Matrix::identity(7)).allclose(a, 1e-5f));
  EXPECT_TRUE(matmul(Matrix::identity(7), a).allclose(a, 1e-5f));
}

TEST(Gemm, MatchesNaiveOnRandomShapes) {
  Rng rng(2);
  for (const auto& [m, k, n] :
       {std::tuple<int, int, int>{3, 5, 4}, {17, 9, 23}, {64, 33, 17}, {1, 128, 1}}) {
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    EXPECT_TRUE(matmul(a, b).allclose(naive_matmul(a, b), 1e-4f))
        << "shape " << m << "x" << k << "x" << n;
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(Gemm, TnMatchesExplicitTranspose) {
  Rng rng(3);
  const Matrix a = random_matrix(20, 6, rng);
  const Matrix b = random_matrix(20, 9, rng);
  EXPECT_TRUE(matmul_tn(a, b).allclose(matmul(a.transposed(), b), 1e-4f));
}

TEST(Gemm, NtMatchesExplicitTranspose) {
  Rng rng(4);
  const Matrix a = random_matrix(12, 8, rng);
  const Matrix b = random_matrix(15, 8, rng);
  EXPECT_TRUE(matmul_nt(a, b).allclose(matmul(a, b.transposed()), 1e-4f));
}

TEST(Gemm, TnShapeMismatchThrows) {
  Matrix a(3, 2), b(4, 2);
  EXPECT_THROW(matmul_tn(a, b), Error);
}

TEST(Gemm, NtShapeMismatchThrows) {
  Matrix a(3, 2), b(4, 3);
  EXPECT_THROW(matmul_nt(a, b), Error);
}

TEST(Gemm, AccumulateAddsToExisting) {
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{2, 3}, {4, 5}};
  Matrix c(2, 2, 1.0f);
  matmul_acc(a, b, c);
  EXPECT_FLOAT_EQ(c(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 6.0f);
}

TEST(Gemm, AccumulateShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 2), c(3, 2);
  EXPECT_THROW(matmul_acc(a, b, c), Error);
}

TEST(Gemm, ZeroShortcutSkipsCorrectly) {
  // The kernel skips zero A entries; verify results are still exact.
  Matrix a{{0, 2}, {3, 0}};
  Matrix b{{1, 1}, {1, 1}};
  const Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 3.0f);
}

TEST(Gemm, LargeParallelConsistency) {
  Rng rng(5);
  const Matrix a = random_matrix(300, 200, rng);
  const Matrix b = random_matrix(200, 150, rng);
  const Matrix c1 = matmul(a, b);
  const Matrix c2 = matmul(a, b);
  EXPECT_TRUE(c1.allclose(c2, 0.0f));  // deterministic across runs
}

}  // namespace
}  // namespace gv
