#include "tensor/csr.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/gemm.hpp"

namespace gv {
namespace {

CsrMatrix random_sparse(std::size_t rows, std::size_t cols, double density, Rng& rng) {
  std::vector<CooEntry> entries;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        entries.push_back({static_cast<std::uint32_t>(r), static_cast<std::uint32_t>(c),
                           static_cast<float>(rng.uniform(-1.0, 1.0))});
      }
    }
  }
  return CsrMatrix::from_coo(rows, cols, std::move(entries));
}

TEST(Csr, FromCooBasicLookup) {
  auto m = CsrMatrix::from_coo(3, 3, {{0, 1, 2.0f}, {2, 0, -1.0f}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.at(2, 0), -1.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 0.0f);
}

TEST(Csr, FromCooSumsDuplicates) {
  auto m = CsrMatrix::from_coo(2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_FLOAT_EQ(m.at(0, 0), 3.5f);
}

TEST(Csr, FromCooOutOfBoundsThrows) {
  EXPECT_THROW(CsrMatrix::from_coo(2, 2, {{2, 0, 1.0f}}), Error);
}

TEST(Csr, FromDenseRoundTrip) {
  Matrix d{{0, 1, 0}, {2, 0, 3}};
  const auto m = CsrMatrix::from_dense(d);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_TRUE(m.to_dense().allclose(d));
}

TEST(Csr, RowNnzCountsPerRow) {
  auto m = CsrMatrix::from_coo(3, 4, {{0, 0, 1}, {0, 3, 1}, {2, 1, 1}});
  EXPECT_EQ(m.row_nnz(0), 2u);
  EXPECT_EQ(m.row_nnz(1), 0u);
  EXPECT_EQ(m.row_nnz(2), 1u);
}

TEST(Csr, TransposedMatchesDenseTranspose) {
  Rng rng(10);
  const auto m = random_sparse(20, 13, 0.2, rng);
  EXPECT_TRUE(m.transposed().to_dense().allclose(m.to_dense().transposed()));
}

TEST(Csr, CooViewIsSortedRowMajor) {
  auto m = CsrMatrix::from_coo(3, 3, {{2, 2, 1}, {0, 1, 1}, {2, 0, 1}});
  const auto coo = m.to_coo();
  ASSERT_EQ(coo.size(), 3u);
  EXPECT_EQ(coo[0].row, 0u);
  EXPECT_EQ(coo[1].row, 2u);
  EXPECT_EQ(coo[1].col, 0u);
  EXPECT_EQ(coo[2].col, 2u);
}

TEST(Csr, MatvecMatchesDense) {
  Rng rng(11);
  const auto m = random_sparse(15, 10, 0.3, rng);
  std::vector<float> x(10);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto y = m.matvec(x);
  const Matrix d = m.to_dense();
  for (std::size_t r = 0; r < 15; ++r) {
    float expect = 0.0f;
    for (std::size_t c = 0; c < 10; ++c) expect += d(r, c) * x[c];
    EXPECT_NEAR(y[r], expect, 1e-5);
  }
}

TEST(Csr, MatvecShapeMismatchThrows) {
  auto m = CsrMatrix::from_coo(2, 3, {});
  std::vector<float> x(2);
  EXPECT_THROW(m.matvec(x), Error);
}

TEST(Spmm, MatchesDenseProduct) {
  Rng rng(12);
  const auto a = random_sparse(30, 25, 0.15, rng);
  Matrix b(25, 8);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  EXPECT_TRUE(spmm(a, b).allclose(matmul(a.to_dense(), b), 1e-4f));
}

TEST(Spmm, ShapeMismatchThrows) {
  auto a = CsrMatrix::from_coo(3, 4, {});
  Matrix b(5, 2);
  EXPECT_THROW(spmm(a, b), Error);
}

TEST(SpmmTn, MatchesDenseTransposeProduct) {
  Rng rng(13);
  const auto a = random_sparse(40, 12, 0.2, rng);
  Matrix b(40, 6);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  EXPECT_TRUE(spmm_tn(a, b).allclose(matmul(a.to_dense().transposed(), b), 1e-4f));
}

TEST(SpmmTn, ShapeMismatchThrows) {
  auto a = CsrMatrix::from_coo(3, 4, {});
  Matrix b(4, 2);
  EXPECT_THROW(spmm_tn(a, b), Error);
}

TEST(Csr, EmptyMatrixBehaves) {
  auto m = CsrMatrix::from_coo(4, 4, {});
  EXPECT_EQ(m.nnz(), 0u);
  Matrix b(4, 3, 1.0f);
  const Matrix c = spmm(m, b);
  EXPECT_FLOAT_EQ(c.frobenius_norm(), 0.0f);
}

TEST(Csr, PayloadBytesAccountsAllArrays) {
  auto m = CsrMatrix::from_coo(2, 2, {{0, 0, 1.0f}});
  // row_ptr: 3*8, col_idx: 1*4, values: 1*4.
  EXPECT_EQ(m.payload_bytes(), 3 * 8 + 4 + 4u);
}

}  // namespace
}  // namespace gv
