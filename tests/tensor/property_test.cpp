// Parameterized algebraic property tests over random shapes/densities.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "tensor/csr.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace gv {
namespace {

Matrix random_dense(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  return m;
}

CsrMatrix random_sparse(std::size_t r, std::size_t c, double density, Rng& rng) {
  std::vector<CooEntry> e;
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      if (rng.bernoulli(density)) {
        e.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j),
                     static_cast<float>(rng.uniform(-1.0, 1.0))});
      }
    }
  }
  return CsrMatrix::from_coo(r, c, std::move(e));
}

// (m, k, n, seed)
using Shape = std::tuple<int, int, int, int>;

class GemmProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmProperty, TransposeOfProductIsReversedProductOfTransposes) {
  const auto [m, k, n, seed] = GetParam();
  Rng rng(seed);
  const Matrix a = random_dense(m, k, rng);
  const Matrix b = random_dense(k, n, rng);
  const Matrix left = matmul(a, b).transposed();
  const Matrix right = matmul(b.transposed(), a.transposed());
  EXPECT_TRUE(left.allclose(right, 1e-3f));
}

TEST_P(GemmProperty, DistributesOverAddition) {
  const auto [m, k, n, seed] = GetParam();
  Rng rng(seed + 1000);
  const Matrix a = random_dense(m, k, rng);
  Matrix b1 = random_dense(k, n, rng);
  const Matrix b2 = random_dense(k, n, rng);
  Matrix sum = b1;
  sum += b2;
  Matrix lhs = matmul(a, sum);
  Matrix rhs = matmul(a, b1);
  rhs += matmul(a, b2);
  EXPECT_TRUE(lhs.allclose(rhs, 1e-3f));
}

TEST_P(GemmProperty, TnAndNtAgreeWithExplicitTransposes) {
  const auto [m, k, n, seed] = GetParam();
  Rng rng(seed + 2000);
  const Matrix at = random_dense(k, m, rng);  // stores A'
  const Matrix b = random_dense(k, n, rng);
  EXPECT_TRUE(matmul_tn(at, b).allclose(matmul(at.transposed(), b), 1e-3f));
  const Matrix a2 = random_dense(m, k, rng);
  const Matrix bt = random_dense(n, k, rng);
  EXPECT_TRUE(matmul_nt(a2, bt).allclose(matmul(a2, bt.transposed()), 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmProperty,
                         ::testing::Values(Shape{1, 1, 1, 1}, Shape{2, 7, 3, 2},
                                           Shape{16, 16, 16, 3}, Shape{31, 5, 17, 4},
                                           Shape{64, 128, 1, 5}, Shape{1, 64, 64, 6},
                                           Shape{100, 33, 27, 7}));

// (rows, cols, density-permille, seed)
using SparseShape = std::tuple<int, int, int, int>;

class CsrProperty : public ::testing::TestWithParam<SparseShape> {};

TEST_P(CsrProperty, DenseRoundTrip) {
  const auto [r, c, dens, seed] = GetParam();
  Rng rng(seed);
  const auto m = random_sparse(r, c, dens / 1000.0, rng);
  EXPECT_TRUE(CsrMatrix::from_dense(m.to_dense()).to_dense().allclose(m.to_dense()));
}

TEST_P(CsrProperty, TransposeIsInvolution) {
  const auto [r, c, dens, seed] = GetParam();
  Rng rng(seed + 10);
  const auto m = random_sparse(r, c, dens / 1000.0, rng);
  EXPECT_TRUE(m.transposed().transposed().to_dense().allclose(m.to_dense()));
}

TEST_P(CsrProperty, SpmmAgreesWithDense) {
  const auto [r, c, dens, seed] = GetParam();
  Rng rng(seed + 20);
  const auto a = random_sparse(r, c, dens / 1000.0, rng);
  const Matrix b = random_dense(c, 9, rng);
  EXPECT_TRUE(spmm(a, b).allclose(matmul(a.to_dense(), b), 1e-3f));
  const Matrix b2 = random_dense(r, 5, rng);
  EXPECT_TRUE(spmm_tn(a, b2).allclose(matmul(a.to_dense().transposed(), b2), 1e-3f));
}

TEST_P(CsrProperty, NnzConsistentWithRowNnz) {
  const auto [r, c, dens, seed] = GetParam();
  Rng rng(seed + 30);
  const auto m = random_sparse(r, c, dens / 1000.0, rng);
  std::size_t total = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) total += m.row_nnz(i);
  EXPECT_EQ(total, m.nnz());
}

INSTANTIATE_TEST_SUITE_P(Shapes, CsrProperty,
                         ::testing::Values(SparseShape{5, 5, 0, 1},
                                           SparseShape{20, 13, 100, 2},
                                           SparseShape{40, 40, 50, 3},
                                           SparseShape{7, 80, 300, 4},
                                           SparseShape{64, 3, 500, 5}));

class SoftmaxProperty : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxProperty, RowsAreDistributions) {
  Rng rng(GetParam());
  const Matrix x = random_dense(17, 1 + GetParam() % 9, rng);
  const Matrix s = softmax_rows(x);
  for (std::size_t r = 0; r < s.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < s.cols(); ++c) {
      EXPECT_GE(s(r, c), 0.0f);
      sum += s(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST_P(SoftmaxProperty, ArgmaxInvariantUnderLogSoftmax) {
  Rng rng(GetParam() + 100);
  const Matrix x = random_dense(23, 2 + GetParam() % 7, rng);
  EXPECT_EQ(argmax_rows(x), argmax_rows(log_softmax_rows(x)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace gv
