#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace gv {
namespace {

TEST(Ops, ReluClampsNegatives) {
  Matrix x{{-1, 0, 2}};
  const Matrix y = relu(x);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 2.0f);
}

TEST(Ops, ReluBackwardGatesOnForwardInput) {
  Matrix x{{-1, 0.5f, 2}};
  Matrix dy{{10, 10, 10}};
  const Matrix dx = relu_backward(dy, x);
  EXPECT_FLOAT_EQ(dx(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx(0, 1), 10.0f);
  EXPECT_FLOAT_EQ(dx(0, 2), 10.0f);
}

TEST(Ops, ReluBackwardShapeMismatchThrows) {
  Matrix x(1, 2), dy(2, 1);
  EXPECT_THROW(relu_backward(dy, x), Error);
}

TEST(Ops, DropoutKeepsScaledValues) {
  Rng rng(1);
  Matrix x(100, 10, 1.0f);
  const auto mask = dropout_forward(x, 0.5f, rng);
  int kept = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (mask.keep[i]) {
      EXPECT_FLOAT_EQ(x.data()[i], 2.0f);  // 1/(1-0.5)
      ++kept;
    } else {
      EXPECT_FLOAT_EQ(x.data()[i], 0.0f);
    }
  }
  EXPECT_NEAR(static_cast<double>(kept) / x.size(), 0.5, 0.05);
}

TEST(Ops, DropoutZeroProbabilityKeepsAll) {
  Rng rng(2);
  Matrix x(5, 5, 3.0f);
  const auto mask = dropout_forward(x, 0.0f, rng);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(mask.keep[i], 1);
    EXPECT_FLOAT_EQ(x.data()[i], 3.0f);
  }
}

TEST(Ops, DropoutBackwardAppliesSameMask) {
  Rng rng(3);
  Matrix x(10, 10, 1.0f);
  const auto mask = dropout_forward(x, 0.3f, rng);
  Matrix dy(10, 10, 1.0f);
  dropout_backward(dy, mask);
  for (std::size_t i = 0; i < dy.size(); ++i) {
    if (mask.keep[i]) {
      EXPECT_NEAR(dy.data()[i], mask.scale, 1e-6);
    } else {
      EXPECT_FLOAT_EQ(dy.data()[i], 0.0f);
    }
  }
}

TEST(Ops, DropoutInvalidProbabilityThrows) {
  Rng rng(4);
  Matrix x(2, 2);
  EXPECT_THROW(dropout_forward(x, 1.0f, rng), Error);
  EXPECT_THROW(dropout_forward(x, -0.1f, rng), Error);
}

TEST(Ops, LogSoftmaxRowsSumToOne) {
  Matrix x{{1, 2, 3}, {-5, 0, 5}};
  const Matrix lp = log_softmax_rows(x);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += std::exp(lp(r, c));
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, LogSoftmaxIsShiftInvariant) {
  Matrix a{{1, 2, 3}};
  Matrix b{{101, 102, 103}};
  EXPECT_TRUE(log_softmax_rows(a).allclose(log_softmax_rows(b), 1e-4f));
}

TEST(Ops, LogSoftmaxHandlesExtremeValues) {
  Matrix x{{1000, 0, -1000}};
  const Matrix lp = log_softmax_rows(x);
  EXPECT_NEAR(lp(0, 0), 0.0f, 1e-4);
  EXPECT_LT(lp(0, 2), -1000.0f);
}

TEST(Ops, SoftmaxMatchesExpOfLogSoftmax) {
  Matrix x{{0.5f, -1.0f, 2.0f}};
  const Matrix s = softmax_rows(x);
  double sum = 0.0;
  for (std::size_t c = 0; c < 3; ++c) sum += s(0, c);
  EXPECT_NEAR(sum, 1.0, 1e-5);
  EXPECT_GT(s(0, 2), s(0, 0));
}

TEST(Ops, AddBiasRows) {
  Matrix x(2, 3, 0.0f);
  add_bias_rows(x, {1.0f, 2.0f, 3.0f});
  EXPECT_FLOAT_EQ(x(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x(1, 2), 3.0f);
}

TEST(Ops, AddBiasShapeMismatchThrows) {
  Matrix x(2, 3);
  EXPECT_THROW(add_bias_rows(x, {1.0f}), Error);
}

TEST(Ops, ColSums) {
  Matrix x{{1, 2}, {3, 4}};
  const auto s = col_sums(x);
  EXPECT_FLOAT_EQ(s[0], 4.0f);
  EXPECT_FLOAT_EQ(s[1], 6.0f);
}

TEST(Ops, ArgmaxRowsPicksFirstOfTies) {
  Matrix x{{1, 3, 3}, {5, 2, 1}};
  const auto am = argmax_rows(x);
  EXPECT_EQ(am[0], 1u);
  EXPECT_EQ(am[1], 0u);
}

TEST(Ops, NllLossMaskedPerfectPredictionNearZero) {
  // log-probs heavily favoring the correct class.
  Matrix logits{{10, 0, 0}, {0, 10, 0}};
  const Matrix lp = log_softmax_rows(logits);
  Matrix dlp;
  const double loss = nll_loss_masked(lp, {0, 1}, {0, 1}, dlp);
  EXPECT_LT(loss, 0.01);
}

TEST(Ops, NllLossGradientOnlyOnMaskedRows) {
  Matrix lp = log_softmax_rows(Matrix{{1, 2}, {3, 1}, {0, 0}});
  Matrix dlp;
  nll_loss_masked(lp, {0, 1, 0}, {1}, dlp);
  // Row 1 label 1 gets -1/|mask|; all other entries zero.
  EXPECT_FLOAT_EQ(dlp(1, 1), -1.0f);
  EXPECT_FLOAT_EQ(dlp(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dlp(2, 0), 0.0f);
}

TEST(Ops, NllLossEmptyMaskThrows) {
  Matrix lp(1, 2);
  Matrix dlp;
  EXPECT_THROW(nll_loss_masked(lp, {0}, {}, dlp), Error);
}

TEST(Ops, NllLossLabelOutOfRangeThrows) {
  Matrix lp = log_softmax_rows(Matrix{{1, 2}});
  Matrix dlp;
  EXPECT_THROW(nll_loss_masked(lp, {5}, {0}, dlp), Error);
}

TEST(Ops, LogSoftmaxBackwardFiniteDifference) {
  // Check d(loss)/dz of loss = -logp(z)[0, y] numerically.
  Matrix z{{0.3f, -0.7f, 1.1f}};
  const std::vector<std::uint32_t> labels = {2};
  const std::vector<std::uint32_t> mask = {0};
  auto loss_of = [&](const Matrix& zz) {
    Matrix dlp;
    return nll_loss_masked(log_softmax_rows(zz), labels, mask, dlp);
  };
  Matrix lp = log_softmax_rows(z);
  Matrix dlp;
  nll_loss_masked(lp, labels, mask, dlp);
  const Matrix dz = log_softmax_backward(dlp, lp);
  const float eps = 1e-3f;
  for (std::size_t c = 0; c < 3; ++c) {
    Matrix zp = z, zm = z;
    zp(0, c) += eps;
    zm(0, c) -= eps;
    const double numeric = (loss_of(zp) - loss_of(zm)) / (2.0 * eps);
    EXPECT_NEAR(dz(0, c), numeric, 1e-3) << "channel " << c;
  }
}

TEST(Ops, L2NormalizeRowsUnitNorm) {
  Matrix x{{3, 4}, {0, 0}};
  l2_normalize_rows(x);
  EXPECT_NEAR(x(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(x(0, 1), 0.8f, 1e-6);
  EXPECT_FLOAT_EQ(x(1, 0), 0.0f);  // zero row untouched
}

TEST(Ops, RowDistancesKnownValues) {
  Matrix x{{0, 0}, {3, 4}};
  EXPECT_NEAR(row_euclidean(x, 0, 1), 5.0f, 1e-5);
  EXPECT_NEAR(row_chebyshev(x, 0, 1), 4.0f, 1e-5);
}

TEST(Ops, RowCosineParallelAndOrthogonal) {
  Matrix x{{1, 0}, {2, 0}, {0, 5}};
  EXPECT_NEAR(row_cosine(x, 0, 1), 1.0f, 1e-5);
  EXPECT_NEAR(row_cosine(x, 0, 2), 0.0f, 1e-5);
}

TEST(Ops, RowCorrelationInvariantToShiftScale) {
  Matrix x{{1, 2, 3, 4}, {10, 20, 30, 40}, {4, 3, 2, 1}};
  EXPECT_NEAR(row_correlation(x, 0, 1), 1.0f, 1e-5);
  EXPECT_NEAR(row_correlation(x, 0, 2), -1.0f, 1e-5);
}

TEST(Ops, RowBraycurtisBounds) {
  Matrix x{{1, 1}, {1, 1}, {0, 2}};
  EXPECT_NEAR(row_braycurtis(x, 0, 1), 0.0f, 1e-6);
  const float d = row_braycurtis(x, 0, 2);
  EXPECT_GT(d, 0.0f);
  EXPECT_LE(d, 1.0f);
}

TEST(Ops, RowCanberraSkipsZeroDenominator) {
  Matrix x{{0, 1}, {0, 2}};
  // First component 0/0 skipped; second |1-2|/3.
  EXPECT_NEAR(row_canberra(x, 0, 1), 1.0f / 3.0f, 1e-5);
}

TEST(Ops, RowMetricsOutOfRangeThrow) {
  Matrix x(2, 2);
  EXPECT_THROW(row_euclidean(x, 0, 5), Error);
  EXPECT_THROW(row_cosine(x, 3, 0), Error);
}

}  // namespace
}  // namespace gv
