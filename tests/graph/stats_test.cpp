#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gv {
namespace {

TEST(Stats, StarGraphDegrees) {
  Graph g(5);
  for (std::uint32_t v = 1; v < 5; ++v) g.add_edge(0, v);
  const auto s = compute_stats(g);
  EXPECT_EQ(s.num_nodes, 5u);
  EXPECT_EQ(s.num_undirected_edges, 4u);
  EXPECT_EQ(s.num_directed_edges, 8u);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_NEAR(s.avg_degree, 8.0 / 5.0, 1e-12);
  EXPECT_EQ(s.isolated_nodes, 0u);
}

TEST(Stats, IsolatedNodesCounted) {
  Graph g(4);
  g.add_edge(0, 1);
  const auto s = compute_stats(g);
  EXPECT_EQ(s.isolated_nodes, 2u);
}

TEST(Stats, GiniZeroForRegularGraph) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const auto s = compute_stats(g);
  EXPECT_NEAR(s.degree_gini, 0.0, 1e-9);
}

TEST(Stats, GiniPositiveForStar) {
  Graph g(6);
  for (std::uint32_t v = 1; v < 6; ++v) g.add_edge(0, v);
  const auto s = compute_stats(g);
  EXPECT_GT(s.degree_gini, 0.3);
}

TEST(LabelStats, CountsAndHomophily) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(1, 2);
  const std::uint32_t labels[] = {0, 0, 1, 1};
  const auto s = compute_label_stats(g, std::span<const std::uint32_t>(labels, 4), 2);
  EXPECT_EQ(s.class_counts[0], 2u);
  EXPECT_EQ(s.class_counts[1], 2u);
  EXPECT_NEAR(s.edge_homophily, 2.0 / 3.0, 1e-12);
}

TEST(LabelStats, LabelOutOfRangeThrows) {
  Graph g(2);
  g.add_edge(0, 1);
  const std::uint32_t labels[] = {0, 7};
  EXPECT_THROW(compute_label_stats(g, std::span<const std::uint32_t>(labels, 2), 2),
               Error);
}

}  // namespace
}  // namespace gv
