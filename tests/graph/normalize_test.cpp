#include "graph/normalize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gv {
namespace {

TEST(Normalize, RowNormalizeMakesRowsStochastic) {
  auto m = CsrMatrix::from_coo(2, 3, {{0, 0, 2.0f}, {0, 2, 2.0f}, {1, 1, 5.0f}});
  const auto n = row_normalize(m);
  EXPECT_NEAR(n.at(0, 0), 0.5f, 1e-6);
  EXPECT_NEAR(n.at(0, 2), 0.5f, 1e-6);
  EXPECT_NEAR(n.at(1, 1), 1.0f, 1e-6);
}

TEST(Normalize, RowNormalizeLeavesEmptyRows) {
  auto m = CsrMatrix::from_coo(2, 2, {{0, 0, 3.0f}});
  const auto n = row_normalize(m);
  EXPECT_EQ(n.row_nnz(1), 0u);
}

TEST(Normalize, L2RowsUnitNorm) {
  auto m = CsrMatrix::from_coo(1, 2, {{0, 0, 3.0f}, {0, 1, 4.0f}});
  l2_normalize_rows_csr(m);
  EXPECT_NEAR(m.at(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(m.at(0, 1), 0.8f, 1e-6);
}

TEST(Normalize, L2HandlesZeroRows) {
  auto m = CsrMatrix::from_coo(2, 2, {{0, 0, 1.0f}});
  EXPECT_NO_THROW(l2_normalize_rows_csr(m));
  EXPECT_NEAR(m.at(0, 0), 1.0f, 1e-6);
}

TEST(Normalize, L1RowsSumToOne) {
  auto m = CsrMatrix::from_coo(1, 3, {{0, 0, 1.0f}, {0, 1, 1.0f}, {0, 2, 2.0f}});
  l1_normalize_rows_csr(m);
  EXPECT_NEAR(m.at(0, 0), 0.25f, 1e-6);
  EXPECT_NEAR(m.at(0, 2), 0.5f, 1e-6);
}

TEST(Normalize, L1HandlesNegativeValuesViaAbs) {
  auto m = CsrMatrix::from_coo(1, 2, {{0, 0, -1.0f}, {0, 1, 3.0f}});
  l1_normalize_rows_csr(m);
  EXPECT_NEAR(m.at(0, 0), -0.25f, 1e-6);
  EXPECT_NEAR(m.at(0, 1), 0.75f, 1e-6);
}

}  // namespace
}  // namespace gv
