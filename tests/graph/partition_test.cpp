#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"

namespace gv {
namespace {

Graph ring(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

TEST(Partition, CoversEveryNodeWithinRange) {
  const Graph g = ring(40);
  const auto res = greedy_edge_cut_partition(g, 4);
  ASSERT_EQ(res.owner.size(), 40u);
  ASSERT_EQ(res.num_parts, 4u);
  for (const auto p : res.owner) EXPECT_LT(p, 4u);
  double total = 0.0;
  for (const auto w : res.part_weight) total += w;
  EXPECT_DOUBLE_EQ(total, 40.0);
}

TEST(Partition, SinglePartHasNoCut) {
  const Graph g = ring(10);
  const auto res = greedy_edge_cut_partition(g, 1);
  EXPECT_EQ(res.cut_edges, 0u);
  for (const auto p : res.owner) EXPECT_EQ(p, 0u);
}

TEST(Partition, RingCutIsNearOptimal) {
  // A ring has an optimal 2-way cut of exactly 2 edges; the greedy pass
  // should stay within a small constant of it.
  const Graph g = ring(100);
  const auto res = greedy_edge_cut_partition(g, 2);
  EXPECT_LE(res.cut_edges, 6u);
  EXPECT_GE(res.part_weight[0], 30.0);
  EXPECT_GE(res.part_weight[1], 30.0);
}

TEST(Partition, BalancesWeightedNodesWithinSlack) {
  SyntheticSpec spec;
  spec.num_nodes = 300;
  spec.num_classes = 3;
  spec.num_undirected_edges = 900;
  spec.feature_dim = 40;
  const Dataset ds = generate_synthetic(spec, 5);
  const auto deg = ds.graph.degrees();
  std::vector<double> weights(ds.num_nodes());
  for (std::uint32_t v = 0; v < ds.num_nodes(); ++v) weights[v] = 1.0 + deg[v];
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);

  const double slack = 1.15;
  const auto res = greedy_edge_cut_partition(ds.graph, 3, weights, slack);
  for (const auto w : res.part_weight) {
    EXPECT_LE(w, slack * total / 3.0 * 1.05);  // cap + one node of spill
    EXPECT_GT(w, 0.0);
  }
}

TEST(Partition, CutBeatsRandomAssignmentOnHomophilousGraph) {
  SyntheticSpec spec;
  spec.num_nodes = 400;
  spec.num_classes = 4;
  spec.num_undirected_edges = 1600;
  const Dataset ds = generate_synthetic(spec, 9);
  const auto res = greedy_edge_cut_partition(ds.graph, 4);

  Rng rng(123);
  std::vector<std::uint32_t> random_owner(ds.num_nodes());
  for (auto& o : random_owner) o = static_cast<std::uint32_t>(rng.next_u64() % 4);
  const std::size_t random_cut = count_cut_edges(ds.graph, random_owner);
  // Random 4-way assignment cuts ~75% of edges; greedy must do clearly
  // better for halo traffic to be worth anything.
  EXPECT_LT(res.cut_edges, random_cut * 3 / 4);
}

TEST(Partition, DeterministicAcrossCalls) {
  const Graph g = ring(64);
  const auto a = greedy_edge_cut_partition(g, 3);
  const auto b = greedy_edge_cut_partition(g, 3);
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
}

TEST(Partition, RejectsBadArguments) {
  const Graph g = ring(8);
  EXPECT_THROW(greedy_edge_cut_partition(g, 0), Error);
  const std::vector<double> short_weights(3, 1.0);
  EXPECT_THROW(greedy_edge_cut_partition(g, 2, short_weights), Error);
}

}  // namespace
}  // namespace gv
