#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace gv {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(GraphIo, RoundTripPreservesEdges) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  g.add_edge(1, 4);
  const auto path = temp_path("gv_graph_roundtrip.txt");
  save_graph(g, path);
  const Graph loaded = load_graph(path);
  EXPECT_EQ(loaded.num_nodes(), 5u);
  EXPECT_EQ(loaded.edges(), g.edges());
  std::remove(path.c_str());
}

TEST(GraphIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_graph("/nonexistent/gv.graph"), Error);
}

TEST(GraphIo, LoadMalformedHeaderThrows) {
  const auto path = temp_path("gv_graph_bad.txt");
  std::ofstream(path) << "not-a-graph 1 2\n";
  EXPECT_THROW(load_graph(path), Error);
  std::remove(path.c_str());
}

TEST(GraphIo, LoadEdgeCountMismatchThrows) {
  const auto path = temp_path("gv_graph_count.txt");
  std::ofstream(path) << "graph 3 2\ne 0 1\n";
  EXPECT_THROW(load_graph(path), Error);
  std::remove(path.c_str());
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  const auto path = temp_path("gv_graph_comments.txt");
  std::ofstream(path) << "# header comment\n\ngraph 3 1\n# edge below\ne 0 2\n";
  const Graph g = load_graph(path);
  EXPECT_TRUE(g.has_edge(0, 2));
  std::remove(path.c_str());
}

TEST(CsrIo, RoundTripPreservesValues) {
  const auto m =
      CsrMatrix::from_coo(3, 4, {{0, 1, 1.5f}, {2, 3, -2.25f}, {1, 0, 0.125f}});
  const auto path = temp_path("gv_csr_roundtrip.txt");
  save_csr(m, path);
  const auto loaded = load_csr(path);
  EXPECT_EQ(loaded.rows(), 3u);
  EXPECT_EQ(loaded.cols(), 4u);
  EXPECT_TRUE(loaded.to_dense().allclose(m.to_dense(), 1e-6f));
  std::remove(path.c_str());
}

TEST(CsrIo, NnzMismatchThrows) {
  const auto path = temp_path("gv_csr_bad.txt");
  std::ofstream(path) << "csr 2 2 2\nr 0 0 1.0\n";
  EXPECT_THROW(load_csr(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gv
