// Parameterized structural invariants over random graphs of varying size
// and density.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/substitute.hpp"

namespace gv {
namespace {

// (nodes, edges, seed)
using GraphShape = std::tuple<int, int, int>;

class GraphProperty : public ::testing::TestWithParam<GraphShape> {
 protected:
  Graph make() const {
    const auto [n, m, seed] = GetParam();
    Rng rng(seed);
    return build_random_graph(n, m, rng);
  }
};

TEST_P(GraphProperty, DegreeSumIsTwiceEdgeCount) {
  const Graph g = make();
  const auto deg = g.degrees();
  const auto sum = std::accumulate(deg.begin(), deg.end(), std::size_t{0});
  EXPECT_EQ(sum, 2 * g.num_edges());
}

TEST_P(GraphProperty, NeighborListsAreSymmetric) {
  const Graph g = make();
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    for (const auto u : g.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(u, v));
    }
  }
}

TEST_P(GraphProperty, GcnNormalizedRowSumBound) {
  // Each of the d̃_i terms in row i is 1/sqrt(d̃_i d̃_j) <= 1/sqrt(d̃_i),
  // so the row sum is positive (self-loop) and <= sqrt(d̃_i).
  const Graph g = make();
  const auto deg = g.degrees();
  const auto a = g.gcn_normalized();
  const Matrix d = a.to_dense();
  for (std::size_t r = 0; r < d.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < d.cols(); ++c) sum += d(r, c);
    EXPECT_GT(sum, 0.0);
    EXPECT_LE(sum, std::sqrt(static_cast<double>(deg[r] + 1)) + 1e-4);
  }
}

TEST_P(GraphProperty, GcnNormalizedSpectralBound) {
  // All entries of Â lie in (0, 1].
  const Graph g = make();
  for (const auto& e : g.gcn_normalized().to_coo()) {
    EXPECT_GT(e.value, 0.0f);
    EXPECT_LE(e.value, 1.0f);
  }
}

TEST_P(GraphProperty, CooRoundTripExact) {
  const Graph g = make();
  const auto direct = g.gcn_normalized();
  const auto via_coo = Graph::csr_from_coo_normalized(g.to_coo_normalized());
  EXPECT_TRUE(via_coo.to_dense().allclose(direct.to_dense(), 1e-6f));
}

TEST_P(GraphProperty, HomophilyIsAFraction) {
  const Graph g = make();
  std::vector<std::uint32_t> labels(g.num_nodes());
  Rng rng(std::get<2>(GetParam()) + 7);
  for (auto& l : labels) l = static_cast<std::uint32_t>(rng.uniform_index(4));
  const double h = g.edge_homophily(labels);
  EXPECT_GE(h, 0.0);
  EXPECT_LE(h, 1.0);
}

TEST_P(GraphProperty, AdjacencyCsrMatchesHasEdge) {
  const Graph g = make();
  const auto a = g.adjacency_csr();
  Rng rng(std::get<2>(GetParam()) + 13);
  for (int t = 0; t < 200; ++t) {
    const auto u = static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes()));
    const auto v = static_cast<std::uint32_t>(rng.uniform_index(g.num_nodes()));
    EXPECT_EQ(a.at(u, v) != 0.0f, g.has_edge(u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GraphProperty,
                         ::testing::Values(GraphShape{10, 9, 1},
                                           GraphShape{50, 200, 2},
                                           GraphShape{100, 99, 3},
                                           GraphShape{200, 1500, 4},
                                           GraphShape{33, 33, 5},
                                           GraphShape{4, 6, 6}));

class KnnProperty : public ::testing::TestWithParam<int> {};

TEST_P(KnnProperty, SymmetrizedDegreeBounds) {
  const int k = GetParam();
  Rng rng(77);
  std::vector<CooEntry> fe;
  for (std::uint32_t v = 0; v < 60; ++v) {
    for (int t = 0; t < 6; ++t) {
      fe.push_back({v, static_cast<std::uint32_t>(rng.uniform_index(40)), 1.0f});
    }
  }
  const auto features = CsrMatrix::from_coo(60, 40, std::move(fe));
  const Graph g = build_knn_graph(features, static_cast<std::uint32_t>(k));
  // Union-symmetrized kNN: every node picked k partners, so the total edge
  // count is between n*k/2 (all mutual) and n*k.
  EXPECT_LE(g.num_edges(), 60u * static_cast<std::size_t>(k));
  // Each node has at least SOME neighbor (features share dims with others).
  for (std::uint32_t v = 0; v < 60; ++v) {
    EXPECT_GE(g.neighbors(v).size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(K, KnnProperty, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace gv
