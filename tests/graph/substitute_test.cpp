#include "graph/substitute.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "graph/normalize.hpp"

namespace gv {
namespace {

/// Features with two obvious clusters: rows 0-2 share dims, rows 3-5 share
/// other dims.
CsrMatrix clustered_features() {
  std::vector<CooEntry> e;
  for (std::uint32_t r = 0; r < 3; ++r) {
    e.push_back({r, 0, 1.0f});
    e.push_back({r, 1, 1.0f});
    e.push_back({r, 10 + r, 0.2f});  // tiny per-row noise
  }
  for (std::uint32_t r = 3; r < 6; ++r) {
    e.push_back({r, 5, 1.0f});
    e.push_back({r, 6, 1.0f});
    e.push_back({r, 20 + r, 0.2f});
  }
  return CsrMatrix::from_coo(6, 32, std::move(e));
}

TEST(ScatterSimilarities, MatchesDenseDotProducts) {
  auto x = clustered_features();
  l2_normalize_rows_csr(x);
  const auto xt = x.transposed();
  std::vector<float> sims;
  scatter_similarities(x, xt, 0, sims);
  const Matrix d = x.to_dense();
  for (std::size_t j = 0; j < 6; ++j) {
    float expect = 0.0f;
    for (std::size_t c = 0; c < 32; ++c) expect += d(0, c) * d(j, c);
    EXPECT_NEAR(sims[j], expect, 1e-5) << "node " << j;
  }
}

TEST(ScatterSimilarities, WrongTransposeThrows) {
  auto x = clustered_features();
  std::vector<float> sims;
  EXPECT_THROW(scatter_similarities(x, x, 0, sims), Error);
}

TEST(KnnGraph, ConnectsSimilarNodes) {
  const auto x = clustered_features();
  const Graph g = build_knn_graph(x, 2);
  // Within-cluster edges must exist; across-cluster must not.
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(2, 5));
}

TEST(KnnGraph, DegreeAtLeastKWhenSimilarExists) {
  const auto x = clustered_features();
  const Graph g = build_knn_graph(x, 2);
  // Each node has 2 same-cluster partners with positive similarity.
  for (std::uint32_t v = 0; v < 6; ++v) {
    EXPECT_GE(g.neighbors(v).size(), 2u) << "node " << v;
  }
}

TEST(KnnGraph, KZeroThrows) {
  const auto x = clustered_features();
  EXPECT_THROW(build_knn_graph(x, 0), Error);
}

TEST(KnnGraph, EdgeCountScalesWithK) {
  SyntheticSpec spec;
  spec.num_nodes = 300;
  spec.num_classes = 3;
  spec.num_undirected_edges = 900;
  spec.feature_dim = 128;
  const Dataset ds = generate_synthetic(spec, 99);
  const Graph g1 = build_knn_graph(ds.features, 1);
  const Graph g4 = build_knn_graph(ds.features, 4);
  EXPECT_GT(g4.num_edges(), g1.num_edges());
  // Symmetrized k-NN: between n*k/2 (fully mutual) and n*k edges.
  EXPECT_LE(g4.num_edges(), 300u * 4u);
}

TEST(CosineGraph, ThresholdRespectsTau) {
  const auto x = clustered_features();
  Rng rng(5);
  // tau close to 1: only near-identical rows connect (the clusters).
  const Graph g = build_cosine_graph(x, 0.9f, 0, rng);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(CosineGraph, MaxEdgesCapsSize) {
  SyntheticSpec spec;
  spec.num_nodes = 200;
  spec.num_classes = 2;
  spec.num_undirected_edges = 400;
  spec.feature_dim = 64;
  const Dataset ds = generate_synthetic(spec, 17);
  Rng rng(6);
  const Graph capped = build_cosine_graph(ds.features, 0.1f, 100, rng);
  EXPECT_LE(capped.num_edges(), 100u);
  EXPECT_GT(capped.num_edges(), 0u);
}

TEST(CosineGraph, InvalidTauThrows) {
  const auto x = clustered_features();
  Rng rng(7);
  EXPECT_THROW(build_cosine_graph(x, 0.0f, 0, rng), Error);
}

TEST(RandomGraph, ExactEdgeCount) {
  Rng rng(8);
  const Graph g = build_random_graph(100, 250, rng);
  EXPECT_EQ(g.num_edges(), 250u);
  EXPECT_EQ(g.num_nodes(), 100u);
}

TEST(RandomGraph, CapsAtCompleteGraph) {
  Rng rng(9);
  const Graph g = build_random_graph(5, 1000, rng);
  EXPECT_EQ(g.num_edges(), 10u);  // C(5,2)
}

TEST(RandomGraph, TooFewNodesThrows) {
  Rng rng(10);
  EXPECT_THROW(build_random_graph(1, 5, rng), Error);
}

TEST(RandomGraph, DeterministicGivenSeed) {
  Rng a(11), b(11);
  const Graph g1 = build_random_graph(50, 80, a);
  const Graph g2 = build_random_graph(50, 80, b);
  EXPECT_EQ(g1.edges(), g2.edges());
}

TEST(KnnGraph, SubstituteHomophilyTracksFeatures) {
  // On a synthetic dataset with class-correlated features, the KNN
  // substitute graph should be label-assortative — the property that makes
  // the public backbone useful at all.
  SyntheticSpec spec;
  spec.num_nodes = 400;
  spec.num_classes = 4;
  spec.num_undirected_edges = 1200;
  spec.feature_dim = 256;
  spec.feature_signal = 0.6;
  const Dataset ds = generate_synthetic(spec, 31);
  const Graph knn = build_knn_graph(ds.features, 2);
  EXPECT_GT(knn.edge_homophily(ds.labels), 0.5);
}

}  // namespace
}  // namespace gv
