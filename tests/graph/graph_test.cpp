#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace gv {
namespace {

Graph triangle() {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = {{0, 1}, {1, 2}, {0, 2}};
  return Graph::from_pairs(3, pairs);
}

TEST(Graph, FromPairsDedupsAndDropsSelfLoops) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = {
      {0, 1}, {1, 0}, {2, 2}, {1, 2}};
  const Graph g = Graph::from_pairs(3, pairs);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(Graph, FromPairsOutOfRangeThrows) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = {{0, 5}};
  EXPECT_THROW(Graph::from_pairs(3, pairs), Error);
}

TEST(Graph, DirectedEdgeCountIsTwiceUndirected) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 6u);
}

TEST(Graph, AddEdgeRejectsDuplicatesAndSelfLoops) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));
  EXPECT_FALSE(g.add_edge(1, 1));
  EXPECT_FALSE(g.add_edge(0, 9));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, NeighborsAreSortedAndComplete) {
  Graph g(4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(2, 1);
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 1u);
  EXPECT_EQ(nb[2], 3u);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
}

TEST(Graph, NeighborsIndexInvalidatedByAddEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  g.add_edge(0, 2);
  EXPECT_EQ(g.neighbors(0).size(), 2u);
}

TEST(Graph, DegreesMatchEdges) {
  const Graph g = triangle();
  const auto deg = g.degrees();
  for (const auto d : deg) EXPECT_EQ(d, 2u);
}

TEST(Graph, EdgeHomophilyAllSameLabels) {
  const Graph g = triangle();
  const std::uint32_t labels[] = {1, 1, 1};
  EXPECT_DOUBLE_EQ(g.edge_homophily(std::span<const std::uint32_t>(labels, 3)), 1.0);
}

TEST(Graph, EdgeHomophilyMixedLabels) {
  const Graph g = triangle();
  const std::uint32_t labels[] = {0, 0, 1};
  EXPECT_NEAR(g.edge_homophily(std::span<const std::uint32_t>(labels, 3)), 1.0 / 3.0,
              1e-12);
}

TEST(Graph, DensityOfCompleteGraphIsOne) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(g.density(), 1.0);
}

TEST(Graph, AdjacencyCsrSymmetric) {
  const Graph g = triangle();
  const auto a = g.adjacency_csr();
  EXPECT_EQ(a.nnz(), 6u);
  EXPECT_FLOAT_EQ(a.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(a.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 0.0f);
}

TEST(Graph, AdjacencyCsrWithSelfLoops) {
  const Graph g = triangle();
  const auto a = g.adjacency_csr(/*add_self_loops=*/true);
  EXPECT_EQ(a.nnz(), 9u);
  EXPECT_FLOAT_EQ(a.at(1, 1), 1.0f);
}

TEST(Graph, GcnNormalizedRowsSumProperty) {
  // For Â = D̃^{-1/2}(A+I)D̃^{-1/2} of a k-regular graph, every row sums to 1.
  const Graph g = triangle();  // 2-regular
  const auto norm = g.gcn_normalized();
  const Matrix dense = norm.to_dense();
  for (std::size_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += dense(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Graph, GcnNormalizedValues) {
  // Path graph 0-1: degrees+1 are {2, 2}. Â(0,1) = 1/sqrt(2*2) = 0.5.
  Graph g(2);
  g.add_edge(0, 1);
  const auto norm = g.gcn_normalized();
  EXPECT_NEAR(norm.at(0, 1), 0.5f, 1e-6);
  EXPECT_NEAR(norm.at(0, 0), 0.5f, 1e-6);
}

TEST(Graph, GcnNormalizedIsSymmetric) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto norm = g.gcn_normalized();
  const Matrix d = norm.to_dense();
  EXPECT_TRUE(d.allclose(d.transposed(), 1e-6f));
}

TEST(Graph, CooNormalizedRoundTripMatchesDirectCsr) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto direct = g.gcn_normalized();
  const auto coo = g.to_coo_normalized();
  const auto rebuilt = Graph::csr_from_coo_normalized(coo);
  EXPECT_TRUE(rebuilt.to_dense().allclose(direct.to_dense(), 1e-6f));
}

TEST(Graph, CooFormCountsEntries) {
  const Graph g = triangle();
  const auto coo = g.to_coo_normalized();
  // 2 directed per edge + n self loops.
  EXPECT_EQ(coo.src.size(), 2 * 3 + 3u);
  EXPECT_EQ(coo.deg_inv_sqrt.size(), 3u);
  EXPECT_NEAR(coo.deg_inv_sqrt[0], 1.0f / std::sqrt(3.0f), 1e-6);
}

TEST(Graph, CsrFromCooRejectsBadSizes) {
  CooAdjacency coo;
  coo.num_nodes = 2;
  coo.src = {0};
  coo.dst = {1, 0};
  coo.deg_inv_sqrt = {1.0f, 1.0f};
  EXPECT_THROW(Graph::csr_from_coo_normalized(coo), Error);
}

TEST(Graph, DenseAdjacencyMb) {
  // 2708^2 * 8 bytes = ~55.9 MB (float64 cells).
  EXPECT_NEAR(Graph::dense_adjacency_mb(2708, 8), 55.95, 0.05);
  EXPECT_GT(Graph::dense_adjacency_mb(19717, 8), 2900.0);  // far beyond EPC
}

TEST(Graph, EmptyGraphBehaves) {
  Graph g(3);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.density(), 0.0);
  const auto norm = g.gcn_normalized();
  EXPECT_EQ(norm.nnz(), 3u);  // just self-loops
  EXPECT_NEAR(norm.at(1, 1), 1.0f, 1e-6);
}

}  // namespace
}  // namespace gv
