#include "nn/param.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gv {
namespace {

TEST(Parameter, GlorotInitWithinLimit) {
  Rng rng(1);
  Parameter p;
  p.init_glorot(50, 30, rng);
  const float limit = std::sqrt(6.0f / 80.0f);
  for (std::size_t i = 0; i < p.value.size(); ++i) {
    EXPECT_LE(std::fabs(p.value.data()[i]), limit);
  }
  EXPECT_FLOAT_EQ(p.grad.frobenius_norm(), 0.0f);
}

TEST(Parameter, GlorotIsNotDegenerate) {
  Rng rng(2);
  Parameter p;
  p.init_glorot(20, 20, rng);
  EXPECT_GT(p.value.frobenius_norm(), 0.1f);
}

TEST(Parameter, ZeroGradClears) {
  Rng rng(3);
  Parameter p;
  p.init_glorot(4, 4, rng);
  p.grad.fill(1.0f);
  p.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.frobenius_norm(), 0.0f);
}

TEST(ParamRefs, TotalCountSumsMatricesAndVectors) {
  Rng rng(4);
  Parameter w;
  w.init_glorot(3, 5, rng);
  VectorParameter b;
  b.init_zero(5);
  ParamRefs refs;
  refs.matrices.push_back(&w);
  refs.vectors.push_back(&b);
  EXPECT_EQ(refs.total_count(), 20u);
}

TEST(Adam, StepMovesAgainstGradient) {
  Rng rng(5);
  Parameter w;
  w.init_zero(1, 1);
  w.value(0, 0) = 1.0f;
  w.grad(0, 0) = 1.0f;  // positive gradient -> value must decrease
  ParamRefs refs;
  refs.matrices.push_back(&w);
  Adam::Config cfg;
  cfg.lr = 0.1;
  cfg.weight_decay = 0.0;
  Adam opt(cfg);
  opt.step(refs);
  EXPECT_LT(w.value(0, 0), 1.0f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2 / 2; grad = w - 3.
  Parameter w;
  w.init_zero(1, 1);
  ParamRefs refs;
  refs.matrices.push_back(&w);
  Adam::Config cfg;
  cfg.lr = 0.1;
  cfg.weight_decay = 0.0;
  Adam opt(cfg);
  for (int i = 0; i < 500; ++i) {
    w.grad(0, 0) = w.value(0, 0) - 3.0f;
    opt.step(refs);
  }
  EXPECT_NEAR(w.value(0, 0), 3.0f, 0.05);
}

TEST(Adam, WeightDecayShrinksWeightsWithZeroGrad) {
  Parameter w;
  w.init_zero(1, 1);
  w.value(0, 0) = 5.0f;
  ParamRefs refs;
  refs.matrices.push_back(&w);
  Adam::Config cfg;
  cfg.lr = 0.05;
  cfg.weight_decay = 1e-2;
  Adam opt(cfg);
  for (int i = 0; i < 100; ++i) {
    w.zero_grad();
    opt.step(refs);
  }
  EXPECT_LT(w.value(0, 0), 5.0f);
}

TEST(Adam, BiasesAreNotDecayed) {
  VectorParameter b;
  b.init_zero(1);
  b.value[0] = 5.0f;
  ParamRefs refs;
  refs.vectors.push_back(&b);
  Adam::Config cfg;
  cfg.lr = 0.05;
  cfg.weight_decay = 1e-2;
  Adam opt(cfg);
  for (int i = 0; i < 100; ++i) {
    b.zero_grad();
    opt.step(refs);
  }
  EXPECT_FLOAT_EQ(b.value[0], 5.0f);
}

TEST(Adam, StepCounterIncrements) {
  Adam opt;
  ParamRefs refs;
  EXPECT_EQ(opt.steps_taken(), 0u);
  opt.step(refs);
  opt.step(refs);
  EXPECT_EQ(opt.steps_taken(), 2u);
}

}  // namespace
}  // namespace gv
