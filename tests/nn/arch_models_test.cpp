// GraphSAGE / GAT layer and model tests, including numerical gradient
// checks through the mean-aggregator and the attention softmax.
#include "nn/arch_models.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace gv {
namespace {

struct Problem {
  Graph graph;
  CsrMatrix features;
  std::vector<std::uint32_t> labels;
  std::vector<std::uint32_t> mask;
};

Problem make_problem(std::uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.graph = Graph(10);
  for (std::uint32_t v = 0; v + 1 < 10; ++v) p.graph.add_edge(v, v + 1);
  p.graph.add_edge(0, 4);
  p.graph.add_edge(2, 7);
  std::vector<CooEntry> fe;
  for (std::uint32_t r = 0; r < 10; ++r) {
    for (std::uint32_t c = 0; c < 5; ++c) {
      if (rng.bernoulli(0.5)) {
        fe.push_back({r, c, static_cast<float>(rng.uniform(-1.0, 1.0))});
      }
    }
    fe.push_back({r, r % 5u, 1.0f});
  }
  p.features = CsrMatrix::from_coo(10, 5, std::move(fe));
  for (std::uint32_t v = 0; v < 10; ++v) p.labels.push_back(v % 3);
  p.mask = {0, 2, 4, 6, 8};
  return p;
}

double model_loss(NodeModel& m, const Problem& p) {
  Matrix dlp;
  return nll_loss_masked(log_softmax_rows(m.forward(p.features, true)), p.labels,
                         p.mask, dlp);
}

void gradcheck(NodeModel& m, const Problem& p, double tol) {
  ParamRefs refs;
  m.collect_parameters(refs);
  refs.zero_grad();
  {
    const Matrix logits = m.forward(p.features, true);
    const Matrix logp = log_softmax_rows(logits);
    Matrix dlp;
    nll_loss_masked(logp, p.labels, p.mask, dlp);
    m.backward(log_softmax_backward(dlp, logp));
  }
  const float eps = 1e-3f;
  for (auto* param : refs.matrices) {
    const std::size_t stride = std::max<std::size_t>(1, param->value.size() / 6);
    for (std::size_t i = 0; i < param->value.size(); i += stride) {
      const float orig = param->value.data()[i];
      param->value.data()[i] = orig + eps;
      const double lp = model_loss(m, p);
      param->value.data()[i] = orig - eps;
      const double lm = model_loss(m, p);
      param->value.data()[i] = orig;
      EXPECT_NEAR(param->grad.data()[i], (lp - lm) / (2.0 * eps), tol);
    }
  }
  for (auto* param : refs.vectors) {
    const std::size_t stride = std::max<std::size_t>(1, param->value.size() / 4);
    for (std::size_t i = 0; i < param->value.size(); i += stride) {
      const float orig = param->value[i];
      param->value[i] = orig + eps;
      const double lp = model_loss(m, p);
      param->value[i] = orig - eps;
      const double lm = model_loss(m, p);
      param->value[i] = orig;
      EXPECT_NEAR(param->grad[i], (lp - lm) / (2.0 * eps), tol);
    }
  }
}

TEST(SagePropagationBuilder, RowStochasticAndTransposed) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  const auto prop = make_sage_propagation(g);
  const Matrix p = prop.p->to_dense();
  for (std::size_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) sum += p(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);  // every node here has >= 1 neighbor
  }
  EXPECT_TRUE(prop.pt->to_dense().allclose(p.transposed(), 1e-6f));
}

TEST(SageModel, ForwardShapesAndDeterminism) {
  const Problem p = make_problem(1);
  Rng rng(10);
  SageModel m({5, {8, 3}, 0.0f}, make_sage_propagation(p.graph), rng);
  const Matrix a = m.forward(p.features, false);
  EXPECT_EQ(a.rows(), 10u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_TRUE(a.allclose(m.forward(p.features, false), 0.0f));
}

TEST(SageModel, GradCheckTwoLayers) {
  const Problem p = make_problem(2);
  Rng rng(11);
  SageModel m({5, {6, 3}, 0.0f}, make_sage_propagation(p.graph), rng);
  gradcheck(m, p, 2e-3);
}

TEST(SageModel, SelfAndNeighborWeightsAreSeparate) {
  const Problem p = make_problem(3);
  Rng rng(12);
  SageModel m({5, {3}, 0.0f}, make_sage_propagation(p.graph), rng);
  ParamRefs refs;
  m.collect_parameters(refs);
  EXPECT_EQ(refs.matrices.size(), 2u);  // W_self and W_neigh for one layer
}

TEST(GatLayer, AttentionRowsSumToOneEffect) {
  // With identical z rows, attention is uniform; output = z (plus bias 0).
  Rng rng(13);
  GatLayer layer(2, 2, rng);
  layer.weight().value = Matrix::identity(2);
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto adj = g.adjacency_csr(true);
  Matrix x(3, 2, 1.0f);  // identical rows
  const Matrix y = layer.forward(adj, x, false);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(y(r, 0), 1.0f, 1e-5);
    EXPECT_NEAR(y(r, 1), 1.0f, 1e-5);
  }
}

TEST(GatModel, GradCheckTwoLayers) {
  const Problem p = make_problem(4);
  Rng rng(14);
  auto adj = std::make_shared<const CsrMatrix>(p.graph.adjacency_csr(true));
  GatModel m({5, {6, 3}, 0.0f, 0.2f}, adj, rng);
  gradcheck(m, p, 3e-3);
}

TEST(GatModel, ForwardDeterministicInEval) {
  const Problem p = make_problem(5);
  Rng rng(15);
  auto adj = std::make_shared<const CsrMatrix>(p.graph.adjacency_csr(true));
  GatModel m({5, {8, 3}, 0.5f, 0.2f}, adj, rng);
  const Matrix a = m.forward(p.features, false);
  EXPECT_TRUE(a.allclose(m.forward(p.features, false), 0.0f));
}

TEST(ArchModels, BothTrainAboveChanceOnSyntheticGraph) {
  SyntheticSpec spec;
  spec.num_nodes = 250;
  spec.num_classes = 3;
  spec.num_undirected_edges = 800;
  spec.feature_dim = 80;
  spec.homophily = 0.85;
  spec.feature_signal = 0.5;
  const Dataset ds = generate_synthetic(spec, 77);
  TrainConfig tc;
  tc.epochs = 60;

  Rng rng1(20);
  SageModel sage({ds.feature_dim(), {16, ds.num_classes}, 0.3f},
                 make_sage_propagation(ds.graph), rng1);
  train_node_classifier(sage, ds.features, ds.labels, ds.split.train, tc);
  EXPECT_GT(evaluate_accuracy(sage, ds.features, ds.labels, ds.split.test), 0.55);

  Rng rng2(21);
  auto adj = std::make_shared<const CsrMatrix>(ds.graph.adjacency_csr(true));
  GatModel gat({ds.feature_dim(), {16, ds.num_classes}, 0.3f, 0.2f}, adj, rng2);
  train_node_classifier(gat, ds.features, ds.labels, ds.split.train, tc);
  EXPECT_GT(evaluate_accuracy(gat, ds.features, ds.labels, ds.split.test), 0.55);
}

}  // namespace
}  // namespace gv
