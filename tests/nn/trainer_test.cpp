#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/synthetic.hpp"

namespace gv {
namespace {

Dataset small_dataset(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.num_nodes = 300;
  spec.num_classes = 3;
  spec.num_undirected_edges = 900;
  spec.feature_dim = 100;
  spec.homophily = 0.85;
  spec.feature_signal = 0.6;
  spec.features_per_node = 15;
  return generate_synthetic(spec, seed);
}

TEST(Trainer, LossDecreasesOnGcn) {
  const Dataset ds = small_dataset(1);
  Rng rng(1);
  GcnConfig cfg{ds.feature_dim(), {16, ds.num_classes}, 0.3f};
  GcnModel model(cfg, std::make_shared<const CsrMatrix>(ds.graph.gcn_normalized()),
                 rng);
  TrainConfig tc;
  tc.epochs = 60;
  const auto result =
      train_node_classifier(model, ds.features, ds.labels, ds.split.train, tc);
  EXPECT_EQ(result.loss_history.size(), 60u);
  EXPECT_LT(result.final_loss, result.loss_history.front() * 0.5);
}

TEST(Trainer, GcnBeatsChanceOnHomophilousGraph) {
  const Dataset ds = small_dataset(2);
  Rng rng(2);
  GcnConfig cfg{ds.feature_dim(), {16, ds.num_classes}, 0.3f};
  GcnModel model(cfg, std::make_shared<const CsrMatrix>(ds.graph.gcn_normalized()),
                 rng);
  TrainConfig tc;
  tc.epochs = 100;
  train_node_classifier(model, ds.features, ds.labels, ds.split.train, tc);
  const double acc = evaluate_accuracy(model, ds.features, ds.labels, ds.split.test);
  EXPECT_GT(acc, 0.55);  // chance is 1/3
}

TEST(Trainer, TrainAccuracyHighAfterFit) {
  const Dataset ds = small_dataset(3);
  Rng rng(3);
  GcnConfig cfg{ds.feature_dim(), {16, ds.num_classes}, 0.0f};
  GcnModel model(cfg, std::make_shared<const CsrMatrix>(ds.graph.gcn_normalized()),
                 rng);
  TrainConfig tc;
  tc.epochs = 120;
  const auto result =
      train_node_classifier(model, ds.features, ds.labels, ds.split.train, tc);
  EXPECT_GT(result.train_accuracy, 0.9);
}

TEST(Trainer, MlpTrainsToo) {
  const Dataset ds = small_dataset(4);
  Rng rng(4);
  MlpConfig cfg{ds.feature_dim(), {16, ds.num_classes}, 0.3f};
  MlpModel model(cfg, rng);
  TrainConfig tc;
  tc.epochs = 100;
  train_node_classifier(model, ds.features, ds.labels, ds.split.train, tc);
  const double acc = evaluate_accuracy(model, ds.features, ds.labels, ds.split.test);
  EXPECT_GT(acc, 0.4);
}

TEST(Trainer, EmptyMaskThrows) {
  const Dataset ds = small_dataset(5);
  Rng rng(5);
  GcnConfig cfg{ds.feature_dim(), {ds.num_classes}, 0.0f};
  GcnModel model(cfg, std::make_shared<const CsrMatrix>(ds.graph.gcn_normalized()),
                 rng);
  TrainConfig tc;
  EXPECT_THROW(train_node_classifier(model, ds.features, ds.labels, {}, tc), Error);
}

TEST(Trainer, ZeroEpochsThrows) {
  const Dataset ds = small_dataset(6);
  Rng rng(6);
  GcnConfig cfg{ds.feature_dim(), {ds.num_classes}, 0.0f};
  GcnModel model(cfg, std::make_shared<const CsrMatrix>(ds.graph.gcn_normalized()),
                 rng);
  TrainConfig tc;
  tc.epochs = 0;
  EXPECT_THROW(train_node_classifier(model, ds.features, ds.labels, ds.split.train, tc),
               Error);
}

TEST(Trainer, PredictReturnsLabelPerNode) {
  const Dataset ds = small_dataset(7);
  Rng rng(7);
  GcnConfig cfg{ds.feature_dim(), {8, ds.num_classes}, 0.0f};
  GcnModel model(cfg, std::make_shared<const CsrMatrix>(ds.graph.gcn_normalized()),
                 rng);
  const auto preds = predict(model, ds.features);
  EXPECT_EQ(preds.size(), ds.num_nodes());
  for (const auto p : preds) EXPECT_LT(p, ds.num_classes);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const Dataset ds = small_dataset(8);
  auto run = [&] {
    Rng rng(99);
    GcnConfig cfg{ds.feature_dim(), {8, ds.num_classes}, 0.5f};
    GcnModel model(cfg, std::make_shared<const CsrMatrix>(ds.graph.gcn_normalized()),
                   rng);
    TrainConfig tc;
    tc.epochs = 30;
    train_node_classifier(model, ds.features, ds.labels, ds.split.train, tc);
    return predict(model, ds.features);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace gv
