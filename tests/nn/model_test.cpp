#include "nn/model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/graph.hpp"

namespace gv {
namespace {

CsrMatrix small_features() {
  return CsrMatrix::from_coo(5, 4, {{0, 0, 1.0f},
                                    {1, 1, 1.0f},
                                    {2, 2, 1.0f},
                                    {3, 3, 1.0f},
                                    {4, 0, 0.5f}});
}

std::shared_ptr<const CsrMatrix> small_adj() {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  return std::make_shared<const CsrMatrix>(g.gcn_normalized());
}

TEST(GcnModel, ForwardShapes) {
  Rng rng(1);
  GcnConfig cfg{4, {8, 3}, 0.5f};
  GcnModel m(cfg, small_adj(), rng);
  const auto x = small_features();
  const Matrix logits = m.forward(x, false);
  EXPECT_EQ(logits.rows(), 5u);
  EXPECT_EQ(logits.cols(), 3u);
}

TEST(GcnModel, LayerOutputsExposeAllEmbeddings) {
  Rng rng(2);
  GcnConfig cfg{4, {8, 6, 3}, 0.5f};
  GcnModel m(cfg, small_adj(), rng);
  m.forward(small_features(), false);
  const auto& outs = m.layer_outputs();
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_EQ(outs[0].cols(), 8u);
  EXPECT_EQ(outs[1].cols(), 6u);
  EXPECT_EQ(outs[2].cols(), 3u);
}

TEST(GcnModel, HiddenOutputsAreReluNonNegative) {
  Rng rng(3);
  GcnConfig cfg{4, {8, 3}, 0.5f};
  GcnModel m(cfg, small_adj(), rng);
  m.forward(small_features(), false);
  const Matrix& h = m.layer_outputs()[0];
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_GE(h.data()[i], 0.0f);
}

TEST(GcnModel, EvalForwardIsDeterministic) {
  Rng rng(4);
  GcnConfig cfg{4, {8, 3}, 0.5f};
  GcnModel m(cfg, small_adj(), rng);
  const auto x = small_features();
  const Matrix a = m.forward(x, false);
  const Matrix b = m.forward(x, false);
  EXPECT_TRUE(a.allclose(b, 0.0f));
}

TEST(GcnModel, TrainingForwardAppliesDropout) {
  Rng rng(5);
  GcnConfig cfg{4, {64, 3}, 0.5f};
  GcnModel m(cfg, small_adj(), rng);
  const auto x = small_features();
  m.forward(x, true);
  const Matrix h_train = m.layer_outputs()[0];
  m.forward(x, false);
  const Matrix h_eval = m.layer_outputs()[0];
  // Dropout must have zeroed some units that are nonzero in eval mode.
  std::size_t zeroed = 0;
  for (std::size_t i = 0; i < h_train.size(); ++i) {
    if (h_eval.data()[i] > 0.0f && h_train.data()[i] == 0.0f) ++zeroed;
  }
  EXPECT_GT(zeroed, 0u);
}

TEST(GcnModel, BackwardWithoutTrainingForwardThrows) {
  Rng rng(6);
  GcnConfig cfg{4, {3}, 0.0f};
  GcnModel m(cfg, small_adj(), rng);
  m.forward(small_features(), false);
  Matrix d(5, 3, 1.0f);
  EXPECT_THROW(m.backward(d), Error);
}

TEST(GcnModel, ParameterCountMatchesArchitecture) {
  Rng rng(7);
  GcnConfig cfg{4, {8, 3}, 0.0f};
  GcnModel m(cfg, small_adj(), rng);
  EXPECT_EQ(m.parameter_count(), 4u * 8 + 8 + 8u * 3 + 3);
}

TEST(GcnModel, SetAdjacencyChangesPropagation) {
  Rng rng(8);
  GcnConfig cfg{4, {3}, 0.0f};
  GcnModel m(cfg, small_adj(), rng);
  const auto x = small_features();
  const Matrix before = m.forward(x, false);
  Graph g2(5);
  g2.add_edge(0, 4);
  m.set_adjacency(std::make_shared<const CsrMatrix>(g2.gcn_normalized()));
  const Matrix after = m.forward(x, false);
  EXPECT_FALSE(before.allclose(after, 1e-6f));
}

TEST(GcnModel, RejectsEmptyConfig) {
  Rng rng(9);
  GcnConfig cfg{0, {3}, 0.0f};
  EXPECT_THROW(GcnModel(cfg, small_adj(), rng), Error);
  GcnConfig cfg2{4, {}, 0.0f};
  EXPECT_THROW(GcnModel(cfg2, small_adj(), rng), Error);
  GcnConfig cfg3{4, {3}, 0.0f};
  EXPECT_THROW(GcnModel(cfg3, nullptr, rng), Error);
}

TEST(MlpModel, ForwardShapesAndLayerDims) {
  Rng rng(10);
  MlpConfig cfg{4, {6, 3}, 0.0f};
  MlpModel m(cfg, rng);
  const Matrix logits = m.forward(small_features(), false);
  EXPECT_EQ(logits.cols(), 3u);
  EXPECT_EQ(m.layer_dims(), (std::vector<std::size_t>{6, 3}));
}

TEST(MlpModel, IgnoresGraphStructureByDesign) {
  // An MLP's output for node v depends only on x_v: permuting other rows
  // must not change row v. (This is what makes it the DNN baseline.)
  Rng rng(11);
  MlpConfig cfg{4, {6, 3}, 0.0f};
  MlpModel m(cfg, rng);
  const Matrix a = m.forward(small_features(), false);
  auto perturbed = CsrMatrix::from_coo(
      5, 4, {{0, 0, 1.0f}, {1, 3, 9.0f}, {2, 2, 1.0f}, {3, 3, 1.0f}, {4, 0, 0.5f}});
  const Matrix b = m.forward(perturbed, false);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(a(0, c), b(0, c), 1e-6);
    EXPECT_NEAR(a(2, c), b(2, c), 1e-6);
  }
}

}  // namespace
}  // namespace gv
