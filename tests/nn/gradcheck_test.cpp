// Numerical gradient checks: the backward passes of every layer and of the
// full models are compared against central finite differences of the
// masked NLL loss. These are the strongest correctness guarantees in the
// nn substrate — if these pass, training optimizes the right objective.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "graph/graph.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace gv {
namespace {

struct Problem {
  CsrMatrix features;
  CsrMatrix adj;
  std::vector<std::uint32_t> labels;
  std::vector<std::uint32_t> mask;
};

Problem make_problem(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 12, d = 6;
  std::vector<CooEntry> fe;
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < d; ++c) {
      if (rng.bernoulli(0.4)) {
        fe.push_back({r, c, static_cast<float>(rng.uniform(-1.0, 1.0))});
      }
    }
    fe.push_back({r, r % static_cast<std::uint32_t>(d), 1.0f});  // no empty rows
  }
  Problem p;
  p.features = CsrMatrix::from_coo(n, d, std::move(fe));
  Graph g(n);
  for (std::uint32_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.add_edge(0, 5);
  g.add_edge(3, 9);
  p.adj = g.gcn_normalized();
  for (std::uint32_t v = 0; v < n; ++v) p.labels.push_back(v % 3);
  p.mask = {0, 2, 4, 6, 8, 10};
  return p;
}

double model_loss(NodeModel& model, const Problem& p) {
  // Training-mode forward with dropout disabled (configs use dropout 0).
  const Matrix logits = model.forward(p.features, /*training=*/true);
  const Matrix logp = log_softmax_rows(logits);
  Matrix dlogp;
  return nll_loss_masked(logp, p.labels, p.mask, dlogp);
}

void backprop_once(NodeModel& model, const Problem& p) {
  ParamRefs refs;
  model.collect_parameters(refs);
  refs.zero_grad();
  const Matrix logits = model.forward(p.features, /*training=*/true);
  const Matrix logp = log_softmax_rows(logits);
  Matrix dlogp;
  nll_loss_masked(logp, p.labels, p.mask, dlogp);
  model.backward(log_softmax_backward(dlogp, logp));
}

/// Compare analytic vs numeric gradient on a subset of coordinates.
void check_gradients(NodeModel& model, const Problem& p, double tol) {
  backprop_once(model, p);
  ParamRefs refs;
  model.collect_parameters(refs);
  const float eps = 1e-3f;
  for (auto* param : refs.matrices) {
    // Probe a deterministic spread of coordinates (all would be slow).
    const std::size_t stride = std::max<std::size_t>(1, param->value.size() / 7);
    for (std::size_t i = 0; i < param->value.size(); i += stride) {
      const float orig = param->value.data()[i];
      param->value.data()[i] = orig + eps;
      const double lp = model_loss(model, p);
      param->value.data()[i] = orig - eps;
      const double lm = model_loss(model, p);
      param->value.data()[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(param->grad.data()[i], numeric, tol)
          << "matrix param coordinate " << i;
    }
  }
  for (auto* param : refs.vectors) {
    for (std::size_t i = 0; i < param->value.size();
         i += std::max<std::size_t>(1, param->value.size() / 5)) {
      const float orig = param->value[i];
      param->value[i] = orig + eps;
      const double lp = model_loss(model, p);
      param->value[i] = orig - eps;
      const double lm = model_loss(model, p);
      param->value[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(param->grad[i], numeric, tol) << "bias coordinate " << i;
    }
  }
}

TEST(GradCheck, SingleLayerGcn) {
  const Problem p = make_problem(1);
  Rng rng(100);
  GcnConfig cfg{/*input_dim=*/6, /*channels=*/{3}, /*dropout=*/0.0f};
  GcnModel model(cfg, std::make_shared<const CsrMatrix>(p.adj), rng);
  check_gradients(model, p, 2e-3);
}

TEST(GradCheck, TwoLayerGcn) {
  const Problem p = make_problem(2);
  Rng rng(101);
  GcnConfig cfg{6, {5, 3}, 0.0f};
  GcnModel model(cfg, std::make_shared<const CsrMatrix>(p.adj), rng);
  check_gradients(model, p, 2e-3);
}

TEST(GradCheck, ThreeLayerGcnWithWiderHidden) {
  const Problem p = make_problem(3);
  Rng rng(102);
  GcnConfig cfg{6, {8, 4, 3}, 0.0f};
  GcnModel model(cfg, std::make_shared<const CsrMatrix>(p.adj), rng);
  check_gradients(model, p, 2e-3);
}

TEST(GradCheck, TwoLayerMlp) {
  const Problem p = make_problem(4);
  Rng rng(103);
  MlpConfig cfg{6, {5, 3}, 0.0f};
  MlpModel model(cfg, rng);
  check_gradients(model, p, 2e-3);
}

TEST(GradCheck, ThreeLayerMlp) {
  const Problem p = make_problem(5);
  Rng rng(104);
  MlpConfig cfg{6, {7, 4, 3}, 0.0f};
  MlpModel model(cfg, rng);
  check_gradients(model, p, 2e-3);
}

}  // namespace
}  // namespace gv
