#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/dense_layer.hpp"
#include "nn/gcn_layer.hpp"
#include "tensor/gemm.hpp"

namespace gv {
namespace {

CsrMatrix identity_adj(std::size_t n) {
  std::vector<CooEntry> e;
  for (std::uint32_t i = 0; i < n; ++i) e.push_back({i, i, 1.0f});
  return CsrMatrix::from_coo(n, n, std::move(e));
}

TEST(GcnLayer, ForwardWithIdentityAdjIsLinear) {
  Rng rng(1);
  GcnLayer layer(3, 2, rng);
  const auto adj = identity_adj(4);
  Matrix x(4, 3, 1.0f);
  const Matrix y = layer.forward(adj, x, /*training=*/false);
  const Matrix expect = matmul(x, layer.weight().value);
  EXPECT_TRUE(y.allclose(expect, 1e-5f));  // bias initialized to zero
}

TEST(GcnLayer, ForwardAggregatesNeighbors) {
  Rng rng(2);
  GcnLayer layer(1, 1, rng);
  layer.weight().value(0, 0) = 1.0f;
  // adj row 0 averages nodes 0 and 1.
  auto adj = CsrMatrix::from_coo(2, 2, {{0, 0, 0.5f}, {0, 1, 0.5f}, {1, 1, 1.0f}});
  Matrix x{{2.0f}, {4.0f}};
  const Matrix y = layer.forward(adj, x, false);
  EXPECT_NEAR(y(0, 0), 3.0f, 1e-5);
  EXPECT_NEAR(y(1, 0), 4.0f, 1e-5);
}

TEST(GcnLayer, SparseForwardMatchesDenseForward) {
  Rng rng(3);
  GcnLayer layer(5, 3, rng);
  const auto adj = identity_adj(6);
  auto xs = CsrMatrix::from_coo(
      6, 5, {{0, 0, 1.0f}, {1, 2, 2.0f}, {3, 4, -1.0f}, {5, 1, 0.5f}});
  const Matrix xd = xs.to_dense();
  const Matrix y_sparse = layer.forward(adj, xs, false);
  const Matrix y_dense = layer.forward(adj, xd, false);
  EXPECT_TRUE(y_sparse.allclose(y_dense, 1e-5f));
}

TEST(GcnLayer, InputDimMismatchThrows) {
  Rng rng(4);
  GcnLayer layer(3, 2, rng);
  const auto adj = identity_adj(4);
  Matrix x(4, 7);
  EXPECT_THROW(layer.forward(adj, x, false), Error);
}

TEST(GcnLayer, AdjacencyShapeMismatchThrows) {
  Rng rng(5);
  GcnLayer layer(3, 2, rng);
  const auto adj = identity_adj(9);
  Matrix x(4, 3);
  EXPECT_THROW(layer.forward(adj, x, false), Error);
}

TEST(GcnLayer, BackwardWithoutTrainingForwardThrows) {
  Rng rng(6);
  GcnLayer layer(3, 2, rng);
  const auto adj = identity_adj(4);
  Matrix dy(4, 2, 1.0f);
  EXPECT_THROW(layer.backward(adj, dy), Error);
}

TEST(GcnLayer, ParameterCountIncludesBias) {
  Rng rng(7);
  GcnLayer layer(10, 4, rng);
  EXPECT_EQ(layer.parameter_count(), 10u * 4u + 4u);
}

TEST(GcnLayer, BiasGradientIsColumnSum) {
  Rng rng(8);
  GcnLayer layer(2, 2, rng);
  const auto adj = identity_adj(3);
  Matrix x(3, 2, 1.0f);
  layer.forward(adj, x, /*training=*/true);
  Matrix dy(3, 2, 0.0f);
  dy(0, 0) = 1.0f;
  dy(1, 0) = 2.0f;
  dy(2, 1) = 4.0f;
  layer.backward(adj, dy);
  EXPECT_NEAR(layer.bias().grad[0], 3.0f, 1e-5);
  EXPECT_NEAR(layer.bias().grad[1], 4.0f, 1e-5);
}

TEST(DenseLayer, ForwardIsAffine) {
  Rng rng(9);
  DenseLayer layer(3, 2, rng);
  layer.bias().value = {1.0f, -1.0f};
  Matrix x(2, 3, 0.0f);
  const Matrix y = layer.forward(x, false);
  EXPECT_NEAR(y(0, 0), 1.0f, 1e-6);
  EXPECT_NEAR(y(1, 1), -1.0f, 1e-6);
}

TEST(DenseLayer, SparseForwardMatchesDense) {
  Rng rng(10);
  DenseLayer layer(4, 3, rng);
  auto xs = CsrMatrix::from_coo(5, 4, {{0, 1, 1.0f}, {2, 3, -2.0f}, {4, 0, 0.5f}});
  EXPECT_TRUE(layer.forward(xs, false).allclose(layer.forward(xs.to_dense(), false),
                                                1e-5f));
}

TEST(DenseLayer, BackwardComputesInputGradient) {
  Rng rng(11);
  DenseLayer layer(2, 2, rng);
  Matrix x{{1.0f, 2.0f}};
  layer.forward(x, /*training=*/true);
  Matrix dy{{1.0f, 0.0f}};
  const Matrix dx = layer.backward(dy);
  // dx = dy W'; with dy selecting first output column, dx = W[:,0]'.
  EXPECT_NEAR(dx(0, 0), layer.weight().value(0, 0), 1e-6);
  EXPECT_NEAR(dx(0, 1), layer.weight().value(1, 0), 1e-6);
}

TEST(DenseLayer, SparseBackwardAfterDenseForwardThrows) {
  Rng rng(12);
  DenseLayer layer(2, 2, rng);
  Matrix x(1, 2);
  layer.forward(x, true);
  Matrix dy(1, 2);
  EXPECT_THROW(layer.backward_sparse_input(dy), Error);
}

}  // namespace
}  // namespace gv
