// Full-system integration: generate a Table-I twin (scaled), run the whole
// GNNVault pipeline (all four steps of Fig. 2) plus the attack, and check
// every paper-level claim end to end.
#include <gtest/gtest.h>

#include "attack/link_stealing.hpp"
#include "core/deployment.hpp"
#include "data/catalog.hpp"
#include "metrics/silhouette.hpp"

namespace gv {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(load_dataset(DatasetId::kCora, 42, /*scale=*/0.25));
    VaultTrainConfig cfg;
    cfg.spec = model_spec_m1();
    cfg.backbone_train.epochs = 100;
    cfg.rectifier_train.epochs = 100;
    cfg.seed = 42;
    vault_ = new TrainedVault(train_vault(*ds_, cfg));
    TrainConfig tc;
    tc.epochs = 100;
    original_accuracy_ = 0.0;
    original_ = train_original_gnn(*ds_, cfg.spec, tc, 42, &original_accuracy_);
  }

  static void TearDownTestSuite() {
    delete ds_;
    delete vault_;
    original_.reset();
  }

  static Dataset* ds_;
  static TrainedVault* vault_;
  static std::shared_ptr<GcnModel> original_;
  static double original_accuracy_;
};

Dataset* EndToEnd::ds_ = nullptr;
TrainedVault* EndToEnd::vault_ = nullptr;
std::shared_ptr<GcnModel> EndToEnd::original_;
double EndToEnd::original_accuracy_ = 0.0;

TEST_F(EndToEnd, ProtectionOrderingHolds) {
  // p_bb < p_rec <= ~p_org: the paper's central accuracy relationship.
  EXPECT_GT(vault_->rectifier_test_accuracy, vault_->backbone_test_accuracy + 0.02);
  EXPECT_GT(original_accuracy_, vault_->backbone_test_accuracy);
  // Accuracy degradation p_org - p_rec below a loose bound (paper: <2% at
  // full scale; scaled twins get a wider margin).
  EXPECT_LT(original_accuracy_ - vault_->rectifier_test_accuracy, 0.12);
}

TEST_F(EndToEnd, SecureDeploymentPreservesPredictions) {
  TrainedVault copy = *vault_;
  const auto plain = copy.predict_rectified(ds_->features);
  VaultDeployment dep(*ds_, std::move(copy), {});
  EXPECT_EQ(dep.infer_labels(ds_->features), plain);
  EXPECT_LT(dep.enclave_peak_bytes(), dep.cost_model().epc_bytes);
}

TEST_F(EndToEnd, LinkStealingDefeated) {
  original_->forward(ds_->features, false);
  const auto org_layers = original_->layer_outputs();
  const auto gv_layers = vault_->backbone_outputs(ds_->features);
  Rng rng(11);
  const PairSample sample = sample_link_pairs(ds_->graph, 1200, rng);
  int wins = 0;
  for (const auto metric : all_similarity_metrics()) {
    const double auc_org = link_stealing_auc(org_layers, sample, metric);
    const double auc_gv = link_stealing_auc(gv_layers, sample, metric);
    if (auc_gv < auc_org - 0.03) ++wins;
  }
  // GNNVault must reduce leakage on (at least) five of the six metrics.
  EXPECT_GE(wins, 5);
}

TEST_F(EndToEnd, RectifierRestoresClusterStructure) {
  // Fig. 4: the rectified embedding clusters like the original model's,
  // while the backbone's stays poor.
  const auto bb_layers = vault_->backbone_outputs(ds_->features);
  const Matrix rect_logits = vault_->rectifier->forward(bb_layers, false);
  original_->forward(ds_->features, false);
  const Matrix org_logits = original_->layer_outputs().back();

  const double s_bb = silhouette_score(bb_layers.back(), ds_->labels, 400);
  const double s_rect = silhouette_score(rect_logits, ds_->labels, 400);
  const double s_org = silhouette_score(org_logits, ds_->labels, 400);
  EXPECT_GT(s_rect, s_bb);
  EXPECT_GT(s_org, s_bb);
}

TEST_F(EndToEnd, ThetaRecIsSmallFractionOfThetaBb) {
  EXPECT_LT(vault_->rectifier_parameters * 2, vault_->backbone_parameters);
}

}  // namespace
}  // namespace gv
