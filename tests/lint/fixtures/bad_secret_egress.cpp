// VaultLint fixture: GV_SECRET values flowing into untrusted sinks.
// NOT compiled — linted by tests/lint/run_fixture_test.py; golden findings
// in tests/lint/golden_findings.json.
#include "common/annotations.hpp"

namespace gv {

class SessionState {
 public:
  void debug_dump() {
    // Both lines leak confidential enclave state into telemetry the host
    // can read; each is one secret-egress finding.
    GV_LOG_INFO << "session key " << session_key_;
    span_.arg("key_word0", session_key_);
  }

 private:
  GV_SECRET unsigned long long session_key_ = 0;
  TraceSpan span_{"fixture", "leak"};
};

}  // namespace gv
