// VaultLint fixture: a PayloadKind enumerator missing its pad-policy row
// and its byte-audit case.  NOT compiled — linted by run_fixture_test.py.
#include "common/annotations.hpp"

namespace gv {

class MiniChannel {
 public:
  enum class PayloadKind : unsigned char {
    kEmbeddings = 0,
    kLabels = 1,
    kRogue = 2,  // added without updating the policy table or byte audit
  };

  struct KindPolicy {
    PayloadKind kind;
    const char* name;
  };

  // kRogue has no row here: one channel-kind finding.
  static constexpr KindPolicy kKindPolicies[] = {
      {PayloadKind::kEmbeddings, "embeddings"},
      {PayloadKind::kLabels, "labels"},
  };

  const char* kind_name(PayloadKind k) const {
    switch (k) {
      case PayloadKind::kEmbeddings:
        return "embeddings";
      case PayloadKind::kLabels:
        return "labels";
      case PayloadKind::kRogue:
        return "rogue";
    }
    return "?";
  }

  unsigned long kind_bytes(PayloadKind k) const {
    // kRogue bytes are never audited: one channel-kind finding.
    switch (k) {
      case PayloadKind::kEmbeddings:
        return 1;
      case PayloadKind::kLabels:
        return 2;
    }
    return 0;
  }
};

}  // namespace gv
