// VaultLint fixture: malformed suppressions.  NOT compiled — linted by
// run_fixture_test.py.
#include "common/annotations.hpp"

namespace gv {

// Unknown check name (typo): one suppression finding.
GV_LINT_ALLOW("spectre-egress", "typo in the check name");

// Known check, empty reason: one suppression finding.
GV_LINT_ALLOW("secret-egress", "");

}  // namespace gv
