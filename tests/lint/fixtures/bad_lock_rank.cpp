// VaultLint fixture: a lexically nested lock-order inversion against the
// gv::lockrank table.  NOT compiled — linted by run_fixture_test.py.
#include "common/annotations.hpp"

#include <mutex>

namespace gv {

class BackwardsLocker {
 public:
  void telemetry_then_control() {
    std::lock_guard<std::mutex> stats(stats_mu_);
    GV_RANK_SCOPE(lockrank::kTelemetry);
    // Control-plane rank 20 acquired under telemetry rank 90: both the
    // guard and its rank scope are inversions (two lock-rank findings).
    std::lock_guard<std::mutex> ctl(control_mu_);
    GV_RANK_SCOPE(lockrank::kServerControl);
  }

 private:
  std::mutex control_mu_ GV_LOCK_RANK(gv::lockrank::kServerControl);
  std::mutex stats_mu_ GV_LOCK_RANK(gv::lockrank::kTelemetry);
};

}  // namespace gv
