// VaultLint fixture: every annotation used CORRECTLY — the false-positive
// guard.  A run over this file must produce zero unsuppressed findings
// (one justified suppression is exercised on purpose).  NOT compiled.
#include "common/annotations.hpp"

#include <mutex>

namespace gv {

class CleanEnclaveState {
 public:
  enum class PayloadKind : unsigned char { kEmbeddings = 0, kLabels = 1 };

  struct KindPolicy {
    PayloadKind kind;
    const char* name;
  };

  // Every enumerator has its policy row, name case, and byte-audit case.
  static constexpr KindPolicy kKindPolicies[] = {
      {PayloadKind::kEmbeddings, "embeddings"},
      {PayloadKind::kLabels, "labels"},
  };

  const char* kind_name(PayloadKind k) const {
    switch (k) {
      case PayloadKind::kEmbeddings:
        return "embeddings";
      case PayloadKind::kLabels:
        return "labels";
    }
    return "?";
  }

  unsigned long kind_bytes(PayloadKind k) const {
    switch (k) {
      case PayloadKind::kEmbeddings:
        return 1;
      case PayloadKind::kLabels:
        return 2;
    }
    return 0;
  }

  /// Approved boundary: sealing protects the argument before it leaves.
  void seal_out(const unsigned char* bytes, unsigned long n) GV_BOUNDARY_OK;

  void ordered_locking() {
    std::lock_guard<std::mutex> outer(entry_mu_);
    GV_RANK_SCOPE(lockrank::kEnclaveEntry);
    std::lock_guard<std::mutex> inner(meter_mu_);
    GV_RANK_SCOPE(lockrank::kEnclaveMeter);
  }

  void report_capacity() {
    // A store's SIZE is capacity metadata; the suppression documents why
    // this particular egress is acceptable.
    GV_LINT_ALLOW("secret-egress", "store size is capacity metadata, not label plaintext");
    GV_LOG_INFO << "labels held: " << sizeof(labels_) / sizeof(labels_[0]);
  }

 private:
  struct GV_ECALL_ABI WireCounter {
    unsigned long long calls = 0;
    double seconds = 0.0;
  };

  GV_SECRET unsigned labels_[4] = {};
  std::mutex entry_mu_ GV_LOCK_RANK(gv::lockrank::kEnclaveEntry);
  std::mutex meter_mu_ GV_LOCK_RANK(gv::lockrank::kEnclaveMeter);
};

}  // namespace gv
