// VaultLint fixture: an ecall-ABI struct with host indirection.
// NOT compiled — linted by run_fixture_test.py.
#include "common/annotations.hpp"

#include <string>

namespace gv {

// Crosses the (simulated) enclave boundary by value, so every member must
// be trivially copyable with no host addresses.
struct GV_ECALL_ABI LeakyReport {
  unsigned long long ecalls = 0;
  const char* last_error;  // finding: host pointer crosses the ABI
  std::string detail;      // finding: not trivially copyable
};

}  // namespace gv
