#!/usr/bin/env python3
"""Fixture harness for VaultLint (registered with ctest as lint_fixtures).

Each fixture is linted in its OWN vault_lint invocation — the channel-kind
check unions coverage across the analyzed file set, so co-linting a clean
fixture with a violating one would mask the hole the fixture plants.

Asserts, per fixture, the exact per-check finding counts recorded in
golden_findings.json:
  * every check fires on its violating TU (detection), and
  * clean.cpp produces zero unsuppressed findings and exercises one
    justified suppression (no false positives).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
DRIVER = os.path.join(REPO, "tools", "vault_lint", "vault_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
GOLDEN = os.path.join(HERE, "golden_findings.json")


def lint(fixture: str) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        artifact = os.path.join(tmp, "findings.json")
        proc = subprocess.run(
            [sys.executable, DRIVER, "--files",
             os.path.join(FIXTURES, fixture),
             "--frontend", "fallback", "--quiet", "--json", artifact],
            capture_output=True, text=True)
        with open(artifact, encoding="utf-8") as f:
            report = json.load(f)
    report["exit_code"] = proc.returncode
    return report


def main() -> int:
    with open(GOLDEN, encoding="utf-8") as f:
        golden = json.load(f)
    failures = []
    for fixture, expected in sorted(golden.items()):
        report = lint(fixture)
        got: dict[str, int] = {}
        for finding in report["findings"]:
            got[finding["check"]] = got.get(finding["check"], 0) + 1
        if got != expected:
            failures.append(f"{fixture}: expected {expected}, got {got}")
            continue
        want_exit = 1 if expected else 0
        if report["exit_code"] != want_exit:
            failures.append(f"{fixture}: expected exit {want_exit}, "
                            f"got {report['exit_code']}")
            continue
        if fixture == "clean.cpp" and len(report.get("suppressed", [])) != 1:
            failures.append(
                f"clean.cpp: expected exactly 1 exercised suppression, got "
                f"{len(report.get('suppressed', []))}")
            continue
        print(f"PASS {fixture}: {expected or 'clean'}")
    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print(f"all {len(golden)} fixtures pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
