// FlightRecorder contract tests: arming, bundle dumping, the owner-scoped
// topology provider, and the independent bundle validator.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace gv {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("gv_flight_" + std::to_string(::testing::UnitTest::GetInstance()
                                              ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override {
    FlightRecorder::instance().disarm();
    FlightRecorder::instance().attach_timeseries(nullptr);
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(FlightRecorderTest, UnarmedTripCountsButWritesNothing) {
  auto& fr = FlightRecorder::instance();
  fr.disarm();
  const auto before = fr.trips();
  EXPECT_EQ(fr.trip(FaultKind::kManual, -1, "unarmed"), "");
  EXPECT_EQ(fr.trips(), before + 1);
}

TEST_F(FlightRecorderTest, ArmedTripDumpsAValidBundle) {
  auto& fr = FlightRecorder::instance();
  fr.configure(dir_.string(), 64);
  EXPECT_TRUE(fr.armed());
  const std::string path = fr.trip(FaultKind::kDeadShard, 2, "test fault");
  ASSERT_FALSE(path.empty());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_NE(path.find("dead_shard"), std::string::npos);
  const std::string json = slurp(path);
  std::string err;
  EXPECT_TRUE(validate_flight_bundle(json, &err)) << err;
  EXPECT_NE(json.find("\"kind\": \"dead_shard\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\": 2"), std::string::npos);
  EXPECT_NE(json.find("test fault"), std::string::npos);
}

TEST_F(FlightRecorderTest, BundleEmbedsSpansTimeseriesAndTopology) {
  auto& rec = TraceRecorder::instance();
  rec.clear();
  rec.set_enabled(true);
  { TraceSpan span("test", "bundled_span"); }
  rec.set_enabled(false);

  MetricsRegistry reg;
  reg.counter("req").add(5);
  TimeSeriesRing ring(reg, {1.0, 4});
  ring.sample(0.0);
  reg.counter("req").add(2);
  ring.sample(1.0);

  auto& fr = FlightRecorder::instance();
  fr.configure(dir_.string(), 64);
  fr.attach_timeseries(&ring);
  const int owner = 0;
  fr.set_topology_provider(&owner, [] {
    return std::string("{\"num_shards\":3,\"shards\":[]}");
  });
  const std::string path = fr.trip(FaultKind::kChannelAnomaly, -1, "audit");
  fr.clear_topology_provider(&owner);
  fr.attach_timeseries(nullptr);

  ASSERT_FALSE(path.empty());
  const std::string json = slurp(path);
  std::string err;
  ASSERT_TRUE(validate_flight_bundle(json, &err)) << err;
  EXPECT_NE(json.find("bundled_span"), std::string::npos);
  EXPECT_NE(json.find("\"num_shards\":3"), std::string::npos);
  EXPECT_NE(json.find("\"interval_seconds\""), std::string::npos);
  rec.clear();
}

TEST_F(FlightRecorderTest, TopologyProviderClearIsOwnerScoped) {
  auto& fr = FlightRecorder::instance();
  fr.configure(dir_.string(), 16);
  const int owner_a = 0, owner_b = 0;
  fr.set_topology_provider(&owner_a, [] { return std::string("{\"v\":1}"); });
  // A stranger's clear must not unhook owner_a's provider.
  fr.clear_topology_provider(&owner_b);
  std::string json = slurp(fr.trip(FaultKind::kManual, -1, "scoped"));
  EXPECT_NE(json.find("\"v\":1"), std::string::npos);
  // The owner's clear does.
  fr.clear_topology_provider(&owner_a);
  json = slurp(fr.trip(FaultKind::kManual, -1, "cleared"));
  EXPECT_NE(json.find("\"topology\": null"), std::string::npos);
}

TEST_F(FlightRecorderTest, SequenceNumbersOrderCascadingFaults) {
  auto& fr = FlightRecorder::instance();
  fr.configure(dir_.string(), 16);
  const std::string p1 = fr.trip(FaultKind::kDeadShard, 0, "first");
  const std::string p2 = fr.trip(FaultKind::kPromotionFailure, 0, "second");
  ASSERT_FALSE(p1.empty());
  ASSERT_FALSE(p2.empty());
  EXPECT_NE(p1, p2);
  EXPECT_LT(fs::path(p1).filename().string(), fs::path(p2).filename().string());
}

TEST(FlightBundleValidator, RejectsMalformedDocuments) {
  std::string err;
  EXPECT_FALSE(validate_flight_bundle("", &err));
  EXPECT_FALSE(validate_flight_bundle("not json", &err));
  EXPECT_FALSE(validate_flight_bundle("[]", &err));
  EXPECT_FALSE(validate_flight_bundle("{}", &err));
  // Wrong schema string.
  EXPECT_FALSE(validate_flight_bundle(
      R"({"schema":"something.else","seq":1,"wall_ns":2,)"
      R"("fault":{"kind":"manual","shard":-1,"detail":""},"spans":[],)"
      R"("metrics":{"counters":[],"gauges":[],"histograms":[]},)"
      R"("timeseries":null,"topology":null})",
      &err));
  // Unknown fault kind.
  EXPECT_FALSE(validate_flight_bundle(
      R"({"schema":"gnnvault.flight_recorder.v1","seq":1,"wall_ns":2,)"
      R"("fault":{"kind":"gremlins","shard":-1,"detail":""},"spans":[],)"
      R"("metrics":{"counters":[],"gauges":[],"histograms":[]},)"
      R"("timeseries":null,"topology":null})",
      &err));
  // Trailing garbage after a valid document.
  EXPECT_FALSE(validate_flight_bundle(
      R"({"schema":"gnnvault.flight_recorder.v1","seq":1,"wall_ns":2,)"
      R"("fault":{"kind":"manual","shard":-1,"detail":""},"spans":[],)"
      R"("metrics":{"counters":[],"gauges":[],"histograms":[]},)"
      R"("timeseries":null,"topology":null} trailing)",
      &err));
}

TEST(FlightBundleValidator, AcceptsAMinimalHandWrittenBundle) {
  std::string err;
  EXPECT_TRUE(validate_flight_bundle(
      R"({"schema":"gnnvault.flight_recorder.v1","seq":7,"wall_ns":123,)"
      R"("fault":{"kind":"slo_page","shard":-1,"detail":"burn"},)"
      R"("spans":[{"cat":"serve","name":"batch_flush","ts_ns":1,"dur_ns":2,)"
      R"("modeled_sgx_s":0.5,"args":{"query_id":9}}],)"
      R"("metrics":{"counters":[],"gauges":[],"histograms":[]},)"
      R"("timeseries":null,"topology":{"num_shards":2}})",
      &err))
      << err;
}

}  // namespace
}  // namespace gv
