// EngineScope profile export: folded-stack reconstruction from interval
// nesting, the independent grammar validator, and the unified ops report.
#include "obs/profile_export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/engine_probe.hpp"
#include "obs/metrics.hpp"
#include "obs/tenant_ledger.hpp"
#include "obs/trace.hpp"

namespace gv {
namespace {

TraceEvent make_event(const char* category, const char* name,
                      std::uint64_t start_ns, std::uint64_t dur_ns,
                      double tid = 0.0, bool async = false) {
  TraceEvent ev;
  ev.category = category;
  ev.name = name;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.async = async;
  ev.add_arg("tid", tid);
  return ev;
}

std::map<std::string, std::uint64_t> parse_folded(const std::string& folded) {
  std::map<std::string, std::uint64_t> out;
  std::istringstream is(folded);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    out[line.substr(0, space)] = std::stoull(line.substr(space + 1));
  }
  return out;
}

TEST(FoldedProfile, SelfTimeIsDurationMinusChildren) {
  // tid 0:  root [0,1000)
  //           child [100,400)  with leaf [150,200)
  //           child [500,600)            (same frame, second visit: merges)
  std::vector<TraceEvent> events;
  events.push_back(make_event("serve", "root", 0, 1000));
  events.push_back(make_event("serve", "child", 100, 300));
  events.push_back(make_event("serve", "leaf", 150, 50));
  events.push_back(make_event("serve", "child", 500, 100));

  const std::string folded = folded_profile(events);
  std::string err;
  EXPECT_TRUE(validate_folded(folded, &err)) << err;

  const auto lines = parse_folded(folded);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines.at("tid_0;serve/root"), 600u);  // 1000 - 300 - 100
  EXPECT_EQ(lines.at("tid_0;serve/root;serve/child"), 350u);  // 250 + 100
  EXPECT_EQ(lines.at("tid_0;serve/root;serve/child;serve/leaf"), 50u);
}

TEST(FoldedProfile, ThreadsFoldIndependentlyAndAsyncIsSkipped) {
  std::vector<TraceEvent> events;
  events.push_back(make_event("a", "x", 0, 100, /*tid=*/0));
  events.push_back(make_event("a", "x", 0, 100, /*tid=*/1));
  // An async queue-wait overlapping both stacks must not corrupt either.
  events.push_back(make_event("a", "wait", 10, 500, /*tid=*/0, /*async=*/true));
  const auto lines = parse_folded(folded_profile(events));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines.at("tid_0;a/x"), 100u);
  EXPECT_EQ(lines.at("tid_1;a/x"), 100u);
}

TEST(FoldedProfile, StructuralCharactersAreSanitized) {
  std::vector<TraceEvent> events;
  events.push_back(make_event("cat", "bad name;x", 0, 10));
  const std::string folded = folded_profile(events);
  EXPECT_NE(folded.find("tid_0;cat/bad_name_x 10"), std::string::npos);
  std::string err;
  EXPECT_TRUE(validate_folded(folded, &err)) << err;
}

TEST(FoldedProfile, OverhangingChildIsClampedToItsParent) {
  // The child claims to end 20 ns past its parent (ns-granularity skew);
  // the builder trims it so the parent's self time never underflows.
  std::vector<TraceEvent> events;
  events.push_back(make_event("s", "parent", 0, 100));
  events.push_back(make_event("s", "child", 50, 70));
  const auto lines = parse_folded(folded_profile(events));
  EXPECT_EQ(lines.at("tid_0;s/parent"), 50u);
  EXPECT_EQ(lines.at("tid_0;s/parent;s/child"), 50u);
}

TEST(FoldedProfile, ValidatorRejectsMalformedLinesAndEmptyProfiles) {
  std::string err;
  EXPECT_TRUE(validate_folded("root;a/b 10\nroot;a/b;c 5\n", &err)) << err;
  // Empty: the CI gate must notice a silently-disabled recorder.
  EXPECT_FALSE(validate_folded("", &err));
  EXPECT_FALSE(validate_folded("no_count\n", &err));
  EXPECT_FALSE(validate_folded("stack 12x\n", &err));
  EXPECT_FALSE(validate_folded("a;;b 10\n", &err));  // empty frame
  EXPECT_FALSE(validate_folded(" 10\n", &err));      // empty stack
}

TEST(FoldedProfile, LiveRecorderRoundTrip) {
  auto& rec = TraceRecorder::instance();
  rec.clear();
  rec.set_enabled(true);
  {
    TraceSpan outer("profile_test", "outer");
    TraceSpan inner("profile_test", "inner");
  }
  rec.set_enabled(false);
  const std::string folded = folded_profile_snapshot();
  std::string err;
  EXPECT_TRUE(validate_folded(folded, &err)) << err;
  EXPECT_NE(folded.find("profile_test/outer"), std::string::npos);
}

TEST(OpsReport, LiveAndCachedDocumentsValidate) {
  // A live probe makes the engines array non-trivial.
  EngineProbe probe(MetricsRegistry::global(), "ops-test");
  const std::string live = ops_report();
  std::string err;
  EXPECT_TRUE(validate_ops_report(live, &err)) << err;
  EXPECT_NE(live.find("\"schema\":\"gnnvault.ops_report.v1\""),
            std::string::npos);
  EXPECT_NE(live.find("\"engine\":\"ops-test\""), std::string::npos);

  const std::string cached = ops_report_cached();
  EXPECT_TRUE(validate_ops_report(cached, &err)) << err;
}

TEST(OpsReport, ValidatorIsIndependentOfTheWriter) {
  std::string err;
  EXPECT_FALSE(validate_ops_report("{}", &err));
  EXPECT_FALSE(validate_ops_report("not json", &err));
  // Truncation must not validate.
  std::string doc = ops_report();
  doc.resize(doc.size() / 2);
  EXPECT_FALSE(validate_ops_report(doc, &err));
  // A wrong schema tag must not validate.
  std::string wrong = ops_report();
  const auto pos = wrong.find("gnnvault.ops_report.v1");
  ASSERT_NE(pos, std::string::npos);
  wrong.replace(pos, 22, "gnnvault.ops_report.v9");
  EXPECT_FALSE(validate_ops_report(wrong, &err));
}

TEST(OpsReport, ValidatorDecodesStringEscapes) {
  // Regression: the independent reader used to push the escape LETTER
  // ("\n" decoded to 'n') and drop \u payloads entirely, so an escaped
  // string compared wrong against schema/name checks.  The schema tag
  // spelled with escapes must still validate...
  std::string doc = ops_report();
  const std::string plain = "\"gnnvault.ops_report.v1\"";
  const auto pos = doc.find(plain);
  ASSERT_NE(pos, std::string::npos);
  std::string escaped = "\"\\u0067nnvault.ops_report.v1\"";  // \u0067 == 'g'
  doc.replace(pos, plain.size(), escaped);
  std::string err;
  EXPECT_TRUE(validate_ops_report(doc, &err)) << err;
  // ...an invalid escape must not...
  std::string bad = doc;
  bad.replace(bad.find(escaped), escaped.size(),
              "\"\\qnnvault.ops_report.v1\"");
  EXPECT_FALSE(validate_ops_report(bad, &err));
  // ...and a tenant name exercising every escape class (quote, backslash,
  // newline, control char) survives writer-escape + reader-decode intact.
  auto& ledger = TenantLedger::global();
  int owner = 0;
  ledger.register_provider(&owner, "quo\"te\\back\nline\x01ctl", [] {
    TenantUsage u;
    u.ecalls = 1;
    return u;
  });
  const std::string report = ops_report();
  EXPECT_TRUE(validate_ops_report(report, &err)) << err;
  ledger.unregister(&owner);
}

TEST(OpsReport, FilesRoundTripThroughDisk) {
  const std::string dir = ::testing::TempDir();
  const std::string folded_path = dir + "/profile_test.folded";
  const std::string report_path = dir + "/ops_report_test.json";
  auto& rec = TraceRecorder::instance();
  rec.clear();
  rec.set_enabled(true);
  {
    TraceSpan span("profile_test", "disk");
  }
  rec.set_enabled(false);
  write_folded(folded_path);
  write_ops_report(report_path);
  std::ifstream ff(folded_path);
  std::stringstream fs;
  fs << ff.rdbuf();
  std::string err;
  EXPECT_TRUE(validate_folded(fs.str(), &err)) << err;
  std::ifstream rf(report_path);
  std::stringstream rs;
  rs << rf.rdbuf();
  EXPECT_TRUE(validate_ops_report(rs.str(), &err)) << err;
}

}  // namespace
}  // namespace gv
