// EngineScope TenantLedger: per-tenant attribution rows, the conservation
// invariant (sum over tenants == fleet totals == what the back ends report),
// EPC push rows from the registry books, and the unregister/in-flight
// provider-call protocol.
#include "obs/tenant_ledger.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "obs/metrics.hpp"
#include "serve/registry.hpp"
#include "../serve/serve_test_util.hpp"

namespace gv {
namespace {

TenantUsage usage(double modeled, std::uint64_t ecalls,
                  std::uint64_t batches) {
  TenantUsage u;
  u.modeled_seconds = modeled;
  u.ecalls = ecalls;
  u.batches = batches;
  return u;
}

TEST(TenantLedger, RowsSumProvidersSharingATenantAndConserveTotals) {
  TenantLedger ledger;
  int owner_a = 0, owner_b = 0, owner_c = 0;
  // Two back ends serve "acme" (a sharded tenant is many providers), one
  // serves "zeta".
  ledger.register_provider(&owner_a, "acme", [] { return usage(1.5, 10, 4); });
  ledger.register_provider(&owner_b, "acme", [] { return usage(0.5, 6, 2); });
  ledger.register_provider(&owner_c, "zeta", [] { return usage(2.0, 3, 1); });
  ledger.set_epc_bytes("acme", 1 << 20);
  EXPECT_EQ(ledger.num_providers(), 3u);

  const auto rows = ledger.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "acme");
  EXPECT_DOUBLE_EQ(rows[0].second.modeled_seconds, 2.0);
  EXPECT_EQ(rows[0].second.ecalls, 16u);
  EXPECT_EQ(rows[0].second.batches, 6u);
  EXPECT_EQ(rows[0].second.epc_resident_bytes, std::uint64_t(1) << 20);
  EXPECT_EQ(rows[1].first, "zeta");
  EXPECT_EQ(rows[1].second.ecalls, 3u);

  // Conservation: the fleet total is the exact column-wise sum of the rows.
  const TenantUsage fleet = ledger.fleet_totals();
  TenantUsage sum;
  for (const auto& [tenant, u] : ledger.snapshot()) sum += u;
  EXPECT_DOUBLE_EQ(fleet.modeled_seconds, sum.modeled_seconds);
  EXPECT_EQ(fleet.ecalls, sum.ecalls);
  EXPECT_EQ(fleet.batches, sum.batches);
  EXPECT_EQ(fleet.epc_resident_bytes, sum.epc_resident_bytes);
  EXPECT_EQ(fleet.ecalls, 19u);

  ledger.unregister(&owner_b);
  EXPECT_EQ(ledger.num_providers(), 2u);
  EXPECT_EQ(ledger.fleet_totals().ecalls, 13u);
}

TEST(TenantLedger, EpcPushAloneCreatesARow) {
  TenantLedger ledger;
  ledger.set_epc_bytes("queued-tenant", 4096);
  auto rows = ledger.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, "queued-tenant");
  EXPECT_EQ(rows[0].second.epc_resident_bytes, 4096u);
  EXPECT_EQ(rows[0].second.ecalls, 0u);
  ledger.clear_epc_bytes("queued-tenant");
  EXPECT_TRUE(ledger.snapshot().empty());
}

TEST(TenantLedger, UnregisterBlocksUntilInFlightProviderReturns) {
  TenantLedger ledger;
  int owner = 0;
  std::atomic<bool> in_provider{false};
  std::atomic<bool> provider_done{false};
  std::atomic<bool> unregistered{false};
  ledger.register_provider(&owner, "slow", [&] {
    in_provider.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    provider_done.store(true);
    return usage(1.0, 1, 1);
  });

  std::thread snapshotter([&] { ledger.snapshot(); });
  while (!in_provider.load()) std::this_thread::yield();
  std::thread remover([&] {
    ledger.unregister(&owner);
    // The provider must have fully returned before unregister() does — the
    // owner destroys provider-visible state right after this call.
    EXPECT_TRUE(provider_done.load());
    unregistered.store(true);
  });
  snapshotter.join();
  remover.join();
  EXPECT_TRUE(unregistered.load());
  EXPECT_EQ(ledger.num_providers(), 0u);
}

// Regression: the pin is a COUNT, not a flag.  Two concurrent snapshots pin
// the same entry; when the first provider call returns it must not release
// the second's pin, or unregister() would come back while the second call
// is still reading provider-visible state the owner destroys next.
TEST(TenantLedger, UnregisterWaitsOutEveryConcurrentSnapshot) {
  TenantLedger ledger;
  int owner = 0;
  std::atomic<int> entered{0};
  std::atomic<int> returned{0};
  ledger.register_provider(&owner, "pinned", [&] {
    const int me = entered.fetch_add(1) + 1;
    // Both snapshots must be mid-provider (both pins held) before either
    // returns; then the first returns promptly and the second lingers.
    while (entered.load() < 2) std::this_thread::yield();
    if (me == 2) std::this_thread::sleep_for(std::chrono::milliseconds(60));
    returned.fetch_add(1);
    return usage(1.0, 1, 1);
  });

  std::thread s1([&] { ledger.snapshot(); });
  std::thread s2([&] { ledger.snapshot(); });
  while (entered.load() < 2) std::this_thread::yield();
  ledger.unregister(&owner);
  // Both in-flight calls — not just the first — returned before unregister.
  EXPECT_EQ(returned.load(), 2);
  s1.join();
  s2.join();
  EXPECT_EQ(ledger.num_providers(), 0u);
}

TEST(TenantLedger, JsonAndCachedJsonAgreeAfterSnapshot) {
  TenantLedger ledger;
  int owner = 0;
  ledger.register_provider(&owner, "t", [] { return usage(0.25, 2, 1); });
  // Before any snapshot the cached document is the empty-fleet fallback.
  EXPECT_NE(ledger.cached_json().find("\"tenants\":[]"), std::string::npos);
  const std::string live = ledger.to_json();
  EXPECT_NE(live.find("\"schema\":\"gnnvault.tenant_ledger.v1\""),
            std::string::npos);
  EXPECT_NE(live.find("\"tenant\":\"t\""), std::string::npos);
  EXPECT_EQ(ledger.cached_json(), live);
}

TEST(TenantLedger, PublishExportsPerTenantAndFleetGauges) {
  TenantLedger ledger;
  int owner = 0;
  ledger.register_provider(&owner, "pub", [] { return usage(1.25, 8, 3); });
  ledger.set_epc_bytes("pub", 512);
  MetricsRegistry reg;
  ledger.publish(reg);
  EXPECT_DOUBLE_EQ(
      reg.gauge("tenant.modeled_seconds", MetricLabels::of("tenant", "pub"))
          .value(),
      1.25);
  EXPECT_DOUBLE_EQ(
      reg.gauge("tenant.epc_resident_bytes", MetricLabels::of("tenant", "pub"))
          .value(),
      512.0);
  EXPECT_DOUBLE_EQ(reg.gauge("fleet.ecalls").value(), 8.0);
}

// The end-to-end conservation check: two REAL tenants admitted through the
// registry, served, and reconciled — the ledger's rows must match what each
// server reports directly, and the fleet EPC column must match the
// registry's own books exactly.
TEST(TenantLedger, RegistryTenantsReconcileExactly) {
  const Dataset ds_a = serve_dataset(71);
  const Dataset ds_b = serve_dataset(72, /*nodes=*/220);
  VaultRegistry registry;
  ServerConfig scfg;
  scfg.max_batch = 8;
  scfg.max_wait = std::chrono::microseconds(500);
  ASSERT_EQ(registry
                .admit("ledger-alice", ds_a,
                       serve_vault(ds_a, RectifierKind::kParallel, 1), scfg)
                .decision,
            AdmissionDecision::kAdmitted);
  ASSERT_EQ(registry
                .admit("ledger-bob", ds_b,
                       serve_vault(ds_b, RectifierKind::kSeries, 2), scfg)
                .decision,
            AdmissionDecision::kAdmitted);
  for (std::uint32_t n = 0; n < 24; ++n) {
    registry.server("ledger-alice")->query(n);
    registry.server("ledger-bob")->query(n);
  }

  std::map<std::string, TenantUsage> rows;
  for (auto& [tenant, u] : TenantLedger::global().snapshot()) rows[tenant] = u;
  ASSERT_TRUE(rows.count("ledger-alice"));
  ASSERT_TRUE(rows.count("ledger-bob"));

  // Per-tenant columns equal the server's own meters (same source, one
  // pass — nothing sampled twice from diverging clocks).
  const auto sa = registry.server("ledger-alice")->stats();
  const auto sb = registry.server("ledger-bob")->stats();
  EXPECT_EQ(rows["ledger-alice"].ecalls, sa.ecalls);
  EXPECT_EQ(rows["ledger-alice"].batches, sa.batches);
  EXPECT_DOUBLE_EQ(rows["ledger-alice"].modeled_seconds, sa.modeled_seconds);
  EXPECT_EQ(rows["ledger-bob"].ecalls, sb.ecalls);
  EXPECT_GT(rows["ledger-alice"].ecalls, 0u);

  // EPC conservation: the ledger's per-tenant resident bytes sum to the
  // registry's booked total.
  const std::uint64_t ledger_epc = rows["ledger-alice"].epc_resident_bytes +
                                   rows["ledger-bob"].epc_resident_bytes;
  EXPECT_EQ(ledger_epc, registry.epc_in_use());
  EXPECT_GT(ledger_epc, 0u);

  // Removal clears both the provider row and the EPC push.
  registry.remove("ledger-alice");
  rows.clear();
  for (auto& [tenant, u] : TenantLedger::global().snapshot()) rows[tenant] = u;
  EXPECT_FALSE(rows.count("ledger-alice"));
  ASSERT_TRUE(rows.count("ledger-bob"));
  EXPECT_EQ(rows["ledger-bob"].epc_resident_bytes, registry.epc_in_use());
}

}  // namespace
}  // namespace gv
