// TimeSeriesRing contract tests: window closing against an injected clock,
// counter rates/deltas (reset-aware), gauge folding, histogram window
// percentiles, ring eviction, and the JSON export.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace gv {
namespace {

TEST(TimeSeriesRing, FirstSampleIsBaselineOnly) {
  MetricsRegistry reg;
  reg.counter("req").add(10);
  TimeSeriesRing ring(reg, {1.0, 8});
  ring.sample(0.0);
  EXPECT_EQ(ring.windows(), 0u);  // nothing closed yet
  EXPECT_THROW(ring.window(0), Error);
}

TEST(TimeSeriesRing, CounterDeltaAndRatePerWindow) {
  MetricsRegistry reg;
  auto& c = reg.counter("req");
  TimeSeriesRing ring(reg, {2.0, 8});
  ring.sample(0.0);  // baseline at t=0
  c.add(6);
  ring.sample(2.0);  // closes [0,2)
  ASSERT_EQ(ring.windows(), 1u);
  EXPECT_EQ(ring.delta("req"), 6u);
  EXPECT_DOUBLE_EQ(ring.rate("req"), 3.0);  // 6 / 2s
  c.add(4);
  ring.sample(4.0);  // closes [2,4)
  ASSERT_EQ(ring.windows(), 2u);
  EXPECT_EQ(ring.delta("req", {}, 0), 4u);
  EXPECT_EQ(ring.delta("req", {}, 1), 6u);
  EXPECT_EQ(ring.delta_over("req", {}, 2), 10u);
  // Unknown series / out-of-range ages read as zero, not errors.
  EXPECT_EQ(ring.delta("nope"), 0u);
  EXPECT_DOUBLE_EQ(ring.rate("req", {}, 99), 0.0);
}

TEST(TimeSeriesRing, SkippedIntervalsCloseEmptyWindows) {
  MetricsRegistry reg;
  auto& c = reg.counter("req");
  TimeSeriesRing ring(reg, {1.0, 8});
  ring.sample(0.0);
  c.add(5);
  // The clock jumps 3 windows: the first closed window absorbs the whole
  // delta (we cannot know when within the gap it accrued), the rest close
  // empty.
  ring.sample(3.0);
  ASSERT_EQ(ring.windows(), 3u);
  EXPECT_EQ(ring.delta("req", {}, 2), 5u);
  EXPECT_EQ(ring.delta("req", {}, 1), 0u);
  EXPECT_EQ(ring.delta("req", {}, 0), 0u);
}

TEST(TimeSeriesRing, CounterResetReadsAsRestartNotUnderflow) {
  MetricsRegistry reg;
  auto& c = reg.counter("req");
  TimeSeriesRing ring(reg, {1.0, 8});
  c.add(100);
  ring.sample(0.0);
  reg.reset();  // counter back to 0 mid-window
  c.add(3);
  ring.sample(1.0);
  ASSERT_EQ(ring.windows(), 1u);
  // value(3) < baseline(100): the delta is the post-reset value, never a
  // wrapped-around huge number.
  EXPECT_EQ(ring.delta("req"), 3u);
}

TEST(TimeSeriesRing, GaugeLastMinMaxOverWindowSamples) {
  MetricsRegistry reg;
  auto& g = reg.gauge("headroom");
  TimeSeriesRing ring(reg, {10.0, 8});
  ring.sample(0.0);
  g.set(5.0);
  ring.sample(2.0);  // mid-window observation
  g.set(1.0);
  ring.sample(4.0);
  g.set(3.0);
  ring.sample(10.0);  // closes [0,10)
  ASSERT_EQ(ring.windows(), 1u);
  const auto w = ring.window(0);
  const auto it = w.gauges.find(TimeSeriesRing::series_key("headroom"));
  ASSERT_NE(it, w.gauges.end());
  // Window observations: 5 (t=2), 1 (t=4), 3 (folded by the closing sample
  // at t=10 — that reading describes the window it closes).  The baseline
  // sample at t=0 observed the default 0 but folds nothing.
  EXPECT_DOUBLE_EQ(it->second.last, 3.0);
  EXPECT_DOUBLE_EQ(it->second.min, 1.0);
  EXPECT_DOUBLE_EQ(it->second.max, 5.0);
  EXPECT_GE(it->second.samples, 2u);
}

TEST(TimeSeriesRing, HistogramWindowCountsAndPercentile) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", MetricLabels::of("stage", "flush"));
  TimeSeriesRing ring(reg, {1.0, 8});
  ring.sample(0.0);
  for (int i = 0; i < 90; ++i) h.record(0.010);
  for (int i = 0; i < 10; ++i) h.record(1.000);
  ring.sample(1.0);
  ASSERT_EQ(ring.windows(), 1u);
  const auto w = ring.window(0);
  const auto key =
      TimeSeriesRing::series_key("lat", MetricLabels::of("stage", "flush"));
  const auto it = w.histograms.find(key);
  ASSERT_NE(it, w.histograms.end());
  EXPECT_EQ(it->second.count_delta, 100u);
  EXPECT_NEAR(it->second.sum_delta, 90 * 0.010 + 10 * 1.0, 1e-9);
  // p50 lands in the 10ms bucket, p99 in the 1s bucket (log-bucketed upper
  // bounds bracket the recorded value within one 2^(1/4) step).
  EXPECT_LT(it->second.percentile(0.50), 0.02);
  EXPECT_GT(it->second.percentile(0.99), 0.5);
  // Empty window -> percentile 0.
  ring.sample(2.0);
  const auto w2 = ring.window(0);
  const auto it2 = w2.histograms.find(key);
  if (it2 != w2.histograms.end()) {
    EXPECT_DOUBLE_EQ(it2->second.percentile(0.99), 0.0);
  }
}

TEST(TimeSeriesRing, RingEvictsOldestBeyondCapacity) {
  MetricsRegistry reg;
  auto& c = reg.counter("req");
  TimeSeriesRing ring(reg, {1.0, 3});
  ring.sample(0.0);
  for (int i = 1; i <= 5; ++i) {
    c.add(static_cast<std::uint64_t>(i));
    ring.sample(double(i));
  }
  EXPECT_EQ(ring.windows(), 3u);
  // Newest-first ages: deltas 5, 4, 3 (windows 1 and 2 were evicted).
  EXPECT_EQ(ring.delta("req", {}, 0), 5u);
  EXPECT_EQ(ring.delta("req", {}, 1), 4u);
  EXPECT_EQ(ring.delta("req", {}, 2), 3u);
}

TEST(TimeSeriesRing, ToJsonMentionsWindowsAndSeries) {
  MetricsRegistry reg;
  reg.counter("req", MetricLabels::of("kind", "cold")).add(2);
  TimeSeriesRing ring(reg, {1.0, 4});
  ring.sample(0.0);
  reg.counter("req", MetricLabels::of("kind", "cold")).add(3);
  ring.sample(1.0);
  const std::string json = ring.to_json();
  EXPECT_NE(json.find("\"interval_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
  EXPECT_NE(json.find("req|kind=cold"), std::string::npos);
}

}  // namespace
}  // namespace gv
