// MetricsRegistry contract tests: label canonicalization, instrument
// identity, the log-bucketed histogram's percentile accuracy bounds, and
// the JSON exporter.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace gv {
namespace {

TEST(MetricLabels, CanonicalFormIsOrderIndependent) {
  const MetricLabels a{{"shard", "3"}, {"tenant", "acme"}};
  const MetricLabels b{{"tenant", "acme"}, {"shard", "3"}};
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.canonical(), "shard=3,tenant=acme");
  EXPECT_TRUE(MetricLabels{}.empty());
}

TEST(MetricsRegistry, SameNameAndLabelsResolveTheSameInstrument) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("requests", MetricLabels::of("tenant", "a"));
  Counter& c2 = reg.counter("requests", {{"tenant", "a"}});
  Counter& other = reg.counter("requests", MetricLabels::of("tenant", "b"));
  c1.add(2);
  c2.add(3);
  other.add(7);
  EXPECT_EQ(c1.value(), 5u);
  EXPECT_EQ(&c1, &c2);
  EXPECT_NE(&c1, &other);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("imbalance");
  g.set(1.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 1.75);
  reg.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketIndexMonotoneAndUnderflowIsZero) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_index(Histogram::kMinValue), 0);
  int prev = 0;
  for (double v = 1e-8; v < 1e12; v *= 3.7) {
    const int i = Histogram::bucket_index(v);
    EXPECT_GE(i, prev);
    EXPECT_LE(i, Histogram::kNumBuckets);
    prev = i;
    // The bucket's bounds actually bracket the value (until saturation).
    if (i >= 1 && i < Histogram::kNumBuckets) {
      EXPECT_LE(v, Histogram::bucket_upper(i) * (1.0 + 1e-12));
      EXPECT_GT(v, Histogram::bucket_upper(i - 1) * (1.0 - 1e-12));
    }
  }
}

TEST(Histogram, PercentileWithinRelativeErrorBound) {
  Histogram h;
  // Uniform 1..10000 ms: every percentile is known exactly.
  for (int i = 1; i <= 10000; ++i) h.record(double(i));
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 10000u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 10000.0);
  for (const double p : {0.50, 0.95, 0.99}) {
    const double exact = p * 10000.0;
    const double est = snap.percentile(p);
    // 2^(1/4) buckets: the geometric-mean estimate is within ~9.1% of any
    // value in the bucket.
    EXPECT_NEAR(est, exact, exact * 0.095)
        << "p=" << p << " est=" << est << " exact=" << exact;
  }
}

TEST(Histogram, ZeroLatenciesReportZeroPercentiles) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(0.0);  // cache hits
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.percentile(0.99), 0.0);
}

TEST(Histogram, MixedZeroAndNonZero) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(0.0);
  for (int i = 0; i < 10; ++i) h.record(100.0);
  const auto snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(0.5), 0.0);  // median is a cache hit
  EXPECT_NEAR(snap.percentile(0.99), 100.0, 100.0 * 0.095);
  // Percentiles never exceed the observed max.
  EXPECT_LE(snap.percentile(0.999), snap.max);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5.0);
  h.reset();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.percentile(0.5), 0.0);
}

TEST(MetricsRegistry, ToJsonContainsInstrumentsAndEscapes) {
  MetricsRegistry reg;
  reg.counter("cold.queries", MetricLabels::of("tenant", "a\"b")).add(4);
  reg.gauge("drift.cut_growth").set(0.125);
  reg.histogram("latency_ms").record(2.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"cold.queries\""), std::string::npos);
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);  // quote escaped
  EXPECT_NE(json.find("\"drift.cut_growth\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one line, newline-free
}

TEST(MetricsRegistry, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace gv
