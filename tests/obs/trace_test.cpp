// TraceRecorder contract tests: the disabled no-op guarantee, span
// arguments and dual clocks, explicit-timestamp and async emission, ring
// wrap-around accounting, and the Chrome-trace exporter + validator
// (including its rejection of overlapping non-nested slices).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/trace.hpp"

namespace gv {
namespace {

/// Every test starts from a clean, disabled recorder (tests in this binary
/// share the process-wide singleton).
struct TraceTest : ::testing::Test {
  void SetUp() override {
    TraceRecorder::instance().set_enabled(false);
    TraceRecorder::instance().clear();
  }
  void TearDown() override {
    TraceRecorder::instance().set_enabled(false);
    TraceRecorder::instance().clear();
  }
};

TEST_F(TraceTest, DisabledSpansEmitNothing) {
  {
    TraceSpan span("test", "quiet");
    span.arg("x", 1.0);
    span.modeled_seconds(0.5);
    EXPECT_FALSE(span.active());
  }
  TraceRecorder::instance().emit(
      "test", "quiet2", std::chrono::steady_clock::now(),
      std::chrono::steady_clock::now());
  EXPECT_TRUE(TraceRecorder::instance().snapshot().empty());
}

TEST_F(TraceTest, SpanRecordsArgsAndBothClocks) {
  auto& rec = TraceRecorder::instance();
  rec.set_enabled(true);
  {
    TraceSpan span("cat", "work");
    span.arg("shard", 3.0);
    span.arg("layer", 1.0);
    span.modeled_seconds(0.125);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& ev = events[0];
  EXPECT_STREQ(ev.category, "cat");
  EXPECT_STREQ(ev.name, "work");
  EXPECT_GE(ev.dur_ns, 1'000'000u);  // slept >= 2 ms; allow timer slop
  EXPECT_DOUBLE_EQ(ev.modeled_s, 0.125);
  ASSERT_GE(ev.num_args, 2);
  EXPECT_STREQ(ev.args[0].key, "shard");
  EXPECT_DOUBLE_EQ(ev.args[0].value, 3.0);
}

TEST_F(TraceTest, CancelSuppressesEmission) {
  auto& rec = TraceRecorder::instance();
  rec.set_enabled(true);
  {
    TraceSpan span("cat", "probe");
    span.cancel();
  }
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST_F(TraceTest, NestedSpansExportWellNestedAndValidate) {
  auto& rec = TraceRecorder::instance();
  rec.set_enabled(true);
  {
    TraceSpan outer("cat", "outer");
    {
      TraceSpan inner("cat", "inner");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    {
      TraceSpan inner2("cat", "inner2");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // snapshot() sorts by start (ties: longest first): outer leads.
  EXPECT_STREQ(events[0].name, "outer");
  const std::string json = rec.to_chrome_json();
  std::string why;
  EXPECT_TRUE(validate_trace_json(json, &why)) << why;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(TraceTest, ValidatorRejectsOverlappingSlices) {
  auto& rec = TraceRecorder::instance();
  rec.set_enabled(true);
  // Two hand-emitted sync slices that overlap without nesting: [0, 10ms)
  // and [5ms, 15ms) on the same thread.
  const auto t0 = std::chrono::steady_clock::now();
  rec.emit("bad", "a", t0, t0 + std::chrono::milliseconds(10));
  rec.emit("bad", "b", t0 + std::chrono::milliseconds(5),
           t0 + std::chrono::milliseconds(15));
  std::string why;
  EXPECT_FALSE(validate_trace_json(rec.to_chrome_json(), &why));
  EXPECT_NE(why.find("overlap"), std::string::npos) << why;
}

TEST_F(TraceTest, AsyncEventsAreExemptFromNesting) {
  auto& rec = TraceRecorder::instance();
  rec.set_enabled(true);
  // The same overlapping pair, emitted async (queue waits legitimately
  // overlap the worker's slice stack): exported as "b"/"e" pairs, which the
  // slice validator ignores.
  const auto t0 = std::chrono::steady_clock::now();
  rec.emit_async("serve", "queue_wait", t0, t0 + std::chrono::milliseconds(10));
  rec.emit_async("serve", "queue_wait", t0 + std::chrono::milliseconds(5),
                 t0 + std::chrono::milliseconds(15));
  const std::string json = rec.to_chrome_json();
  std::string why;
  EXPECT_TRUE(validate_trace_json(json, &why)) << why;
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
}

TEST_F(TraceTest, RingWrapCountsDrops) {
  auto& rec = TraceRecorder::instance();
  rec.set_enabled(true);
  const std::size_t total = TraceRecorder::kRingCapacity + 7;
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < total; ++i) {
    rec.emit("wrap", "e", now, now);
  }
  EXPECT_EQ(rec.dropped(), 7u);
  EXPECT_EQ(rec.snapshot().size(), TraceRecorder::kRingCapacity);
  rec.clear();
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST_F(TraceTest, SnapshotMergesThreads) {
  auto& rec = TraceRecorder::instance();
  rec.set_enabled(true);
  std::thread other([&] { TraceSpan span("cat", "other_thread"); });
  other.join();
  { TraceSpan span("cat", "this_thread"); }
  EXPECT_EQ(rec.snapshot().size(), 2u);
  EXPECT_GE(rec.num_threads(), 2u);
  std::string why;
  EXPECT_TRUE(validate_trace_json(rec.to_chrome_json(), &why)) << why;
}

TEST_F(TraceTest, ValidatorRejectsGarbage) {
  EXPECT_FALSE(validate_trace_json("not json", nullptr));
  EXPECT_FALSE(validate_trace_json("{\"traceEvents\": 3}", nullptr));
  std::string why;
  EXPECT_FALSE(validate_trace_json("{}", &why));
  EXPECT_FALSE(why.empty());
}

}  // namespace
}  // namespace gv
