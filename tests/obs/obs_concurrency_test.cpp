// VaultScope concurrency: N threads hammer the TraceRecorder and the
// MetricsRegistry while a poller thread snapshots, exports, and resets
// concurrently.  Run under TSan in CI: the per-thread ring mutexes, the
// registry mutex, and the lock-free histogram/counter paths must all be
// clean, and no event or sample may be torn.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gv {
namespace {

TEST(ObsConcurrency, WritersAndPollerRaceCleanly) {
  auto& rec = TraceRecorder::instance();
  rec.set_enabled(false);
  rec.clear();
  rec.set_enabled(true);

  MetricsRegistry reg;
  constexpr int kWriters = 4;
  constexpr int kSpansPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> polls{0};

  // Poller: snapshot + export + percentile concurrently with the writers.
  std::thread poller([&] {
    while (!stop.load()) {
      const auto events = rec.snapshot();
      (void)rec.to_chrome_json();
      for (const auto& ev : events) {
        // Every observed event is fully formed (no torn pointers).
        ASSERT_NE(ev.name, nullptr);
        ASSERT_NE(ev.category, nullptr);
      }
      (void)reg.to_json();
      polls.fetch_add(1);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Counter& c = reg.counter("spans", MetricLabels::of("writer",
                                                         std::to_string(w)));
      Histogram& h = reg.histogram("latency_ms");
      Gauge& g = reg.gauge("depth");
      for (int i = 0; i < kSpansPerWriter; ++i) {
        TraceSpan outer("stress", "outer");
        outer.arg("i", double(i));
        {
          TraceSpan inner("stress", "inner");
          inner.modeled_seconds(1e-6);
          h.record(0.01 * double(i % 100));
        }
        c.add();
        g.set(double(i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  poller.join();

  rec.set_enabled(false);
  EXPECT_GT(polls.load(), 0u);

  // Every span landed (2 per iteration per writer), none torn.
  const auto events = rec.snapshot();
  EXPECT_EQ(events.size() + rec.dropped(),
            std::size_t{kWriters} * kSpansPerWriter * 2);

  std::uint64_t total = 0;
  for (int w = 0; w < kWriters; ++w) {
    total += reg.counter("spans", MetricLabels::of("writer", std::to_string(w)))
                 .value();
  }
  EXPECT_EQ(total, std::uint64_t{kWriters} * kSpansPerWriter);
  const auto snap = reg.histogram("latency_ms").snapshot();
  EXPECT_EQ(snap.count, std::uint64_t{kWriters} * kSpansPerWriter);

  // The final trace still validates (well-nested per thread).
  std::string why;
  EXPECT_TRUE(validate_trace_json(rec.to_chrome_json(), &why)) << why;
  rec.clear();
}

TEST(ObsConcurrency, ResetRacesRecording) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("latency_ms");
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load()) {
      reg.reset();
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 20000; ++i) h.record(double(i % 50) + 0.5);
  stop.store(true);
  resetter.join();
  // No torn state: a final snapshot is internally consistent.
  const auto snap = h.snapshot();
  std::uint64_t bucket_sum = 0;
  for (const auto& [upper, c] : snap.buckets) bucket_sum += c;
  EXPECT_LE(snap.count, 20000u);
  // Bucket counts and the total are stored separately; under a racing
  // reset they may diverge transiently, but never exceed what was written.
  EXPECT_LE(bucket_sum, 20000u);
}

}  // namespace
}  // namespace gv
