// SloMonitor contract tests, pinning the edge cases the burn-rate math has
// to get right: empty windows, counter resets, and burn exactly at the
// alert threshold (inclusive).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"

namespace gv {
namespace {

SloObjective ratio_objective(double target = 0.9, double burn_threshold = 1.0) {
  SloObjective o;
  o.name = "serve-availability";
  o.kind = SloObjective::Kind::kCounterRatio;
  o.bad_series = TimeSeriesRing::series_key("bad");
  o.total_series = TimeSeriesRing::series_key("total");
  o.target = target;
  o.burn_threshold = burn_threshold;
  o.short_windows = 1;
  o.long_windows = 3;
  return o;
}

TEST(SloMonitor, RejectsDegenerateObjectives) {
  MetricsRegistry reg;
  TimeSeriesRing ring(reg, {1.0, 8});
  SloMonitor slo(ring, reg);
  SloObjective unnamed = ratio_objective();
  unnamed.name.clear();
  EXPECT_THROW(slo.add(unnamed), Error);
  SloObjective no_budget = ratio_objective();
  no_budget.target = 1.0;
  EXPECT_THROW(slo.add(no_budget), Error);
  SloObjective no_span = ratio_objective();
  no_span.long_windows = 0;
  EXPECT_THROW(slo.add(no_span), Error);
}

TEST(SloMonitor, EmptyRingBurnsZeroAndNeverAlerts) {
  MetricsRegistry reg;
  TimeSeriesRing ring(reg, {1.0, 8});
  SloMonitor slo(ring, reg);
  slo.add(ratio_objective());
  const auto evals = slo.evaluate();
  ASSERT_EQ(evals.size(), 1u);
  EXPECT_DOUBLE_EQ(evals[0].long_burn, 0.0);
  EXPECT_DOUBLE_EQ(evals[0].short_burn, 0.0);
  EXPECT_FALSE(evals[0].alert);
  EXPECT_EQ(slo.evaluations(), 1u);
  EXPECT_EQ(slo.alerts(), 0u);
  // The bookkeeping instruments exist even without traffic.
  EXPECT_EQ(reg.counter("slo.evaluations").value(), 1u);
}

TEST(SloMonitor, WindowsWithNoTrafficBurnZero) {
  MetricsRegistry reg;
  auto& total = reg.counter("total");
  TimeSeriesRing ring(reg, {1.0, 8});
  ring.sample(0.0);
  total.add(0);      // series exists, no events
  ring.sample(1.0);  // one closed, fully idle window
  SloMonitor slo(ring, reg);
  slo.add(ratio_objective());
  const auto evals = slo.evaluate();
  EXPECT_DOUBLE_EQ(evals[0].short_burn, 0.0);
  EXPECT_FALSE(evals[0].alert);
}

TEST(SloMonitor, BurnExactlyAtThresholdAlerts) {
  MetricsRegistry reg;
  auto& bad = reg.counter("bad");
  auto& total = reg.counter("total");
  TimeSeriesRing ring(reg, {1.0, 8});
  ring.sample(0.0);
  // target 0.9 -> budget 0.1; bad fraction 10/100 = 0.1 -> burn exactly 1.0.
  bad.add(10);
  total.add(100);
  ring.sample(1.0);
  SloMonitor slo(ring, reg);
  slo.add(ratio_objective(0.9, 1.0));
  bool fired = false;
  slo.set_alert_handler(
      [&](const SloObjective&, const SloEvaluation& ev) { fired = ev.alert; });
  const auto evals = slo.evaluate();
  ASSERT_EQ(evals.size(), 1u);
  EXPECT_DOUBLE_EQ(evals[0].long_burn, 1.0);
  EXPECT_DOUBLE_EQ(evals[0].short_burn, 1.0);
  EXPECT_TRUE(evals[0].alert);  // >= is inclusive — exactly-at-threshold pages
  EXPECT_TRUE(fired);
  EXPECT_EQ(slo.alerts(), 1u);
  EXPECT_EQ(reg.counter("slo.alerts", MetricLabels::of("slo", "serve-availability"))
                .value(),
            1u);
}

TEST(SloMonitor, AlertNeedsBothWindowsBurning) {
  MetricsRegistry reg;
  auto& bad = reg.counter("bad");
  auto& total = reg.counter("total");
  TimeSeriesRing ring(reg, {1.0, 8});
  ring.sample(0.0);
  // Window 1: everything on fire.
  bad.add(50);
  total.add(50);
  ring.sample(1.0);
  // Window 2 (the short window): fully recovered — enough good traffic to
  // clear the short span, not so much that it dilutes the long span's
  // aggregate bad fraction below budget.
  total.add(100);
  ring.sample(2.0);
  SloMonitor slo(ring, reg);
  slo.add(ratio_objective(0.9, 1.0));
  const auto evals = slo.evaluate();
  EXPECT_GE(evals[0].long_burn, 1.0);   // long span still remembers the burn
  EXPECT_LT(evals[0].short_burn, 1.0);  // short span shows the recovery
  EXPECT_FALSE(evals[0].alert);         // no page during recovery
}

TEST(SloMonitor, CounterResetAfterRegistryResetDoesNotPage) {
  MetricsRegistry reg;
  auto& bad = reg.counter("bad");
  auto& total = reg.counter("total");
  TimeSeriesRing ring(reg, {1.0, 8});
  bad.add(500);
  total.add(500);
  ring.sample(0.0);  // baseline includes the pre-reset totals
  reg.reset();       // instruments restart from zero mid-window
  total.add(100);
  ring.sample(1.0);
  SloMonitor slo(ring, reg);
  slo.add(ratio_objective(0.9, 1.0));
  const auto evals = slo.evaluate();
  // Reset-aware deltas: bad 0, total 100 -> burn 0, no phantom page from
  // the pre-reset backlog reappearing as a huge wrapped delta.
  EXPECT_DOUBLE_EQ(evals[0].short_burn, 0.0);
  EXPECT_FALSE(evals[0].alert);
}

TEST(SloMonitor, HistogramThresholdObjective) {
  MetricsRegistry reg;
  auto& lat = reg.histogram("lat");
  TimeSeriesRing ring(reg, {1.0, 8});
  ring.sample(0.0);
  for (int i = 0; i < 80; ++i) lat.record(0.001);
  for (int i = 0; i < 20; ++i) lat.record(10.0);
  ring.sample(1.0);
  SloObjective o;
  o.name = "warm-latency";
  o.kind = SloObjective::Kind::kHistogramThreshold;
  o.histogram_series = TimeSeriesRing::series_key("lat");
  o.threshold = 1.0;  // recordings above 1s are bad
  o.target = 0.9;     // budget 0.1; bad fraction 0.2 -> burn 2.0
  o.burn_threshold = 1.5;
  SloMonitor slo(ring, reg);
  slo.add(o);
  const auto evals = slo.evaluate();
  ASSERT_EQ(evals.size(), 1u);
  EXPECT_NEAR(evals[0].short_burn, 2.0, 1e-9);
  EXPECT_TRUE(evals[0].alert);
}

TEST(SloMonitor, DefaultAlertActionTripsTheFlightRecorder) {
  auto& fr = FlightRecorder::instance();
  fr.disarm();  // counting only: no bundle files from a unit test
  const std::uint64_t trips_before = fr.trips();
  MetricsRegistry reg;
  auto& bad = reg.counter("bad");
  auto& total = reg.counter("total");
  TimeSeriesRing ring(reg, {1.0, 8});
  ring.sample(0.0);
  bad.add(100);
  total.add(100);
  ring.sample(1.0);
  SloMonitor slo(ring, reg);
  slo.add(ratio_objective(0.9, 1.0));
  const auto evals = slo.evaluate();  // no handler set -> kSloPage trip
  ASSERT_TRUE(evals[0].alert);
  EXPECT_EQ(fr.trips(), trips_before + 1);
}

}  // namespace
}  // namespace gv
