// VaultScope golden trace: run the full kill -> promote -> cold-query
// scenario on a small sharded fleet with tracing enabled and check the
// exported Chrome/Perfetto JSON end to end — it parses, every per-thread
// slice pair nests or is disjoint, the spans actually cover the serving
// stack (queue wait, batch flush, per-shard ecalls, per-layer halo
// exchange, promotion phases, cold-path recursion), and each carries the
// dual clocks (wall ns + modeled SGX seconds).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "../serve/serve_test_util.hpp"
#include "obs/trace.hpp"
#include "shard/shard_planner.hpp"
#include "shard/sharded_server.hpp"

namespace gv {
namespace {

TrainedVault quick_vault(const Dataset& ds, std::uint64_t seed = 31) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {16, 8}, {16, 8}, 0.4f};
  cfg.backbone_train.epochs = 25;
  cfg.rectifier_train.epochs = 25;
  cfg.seed = seed;
  return train_vault(ds, cfg);
}

TEST(TraceGolden, FailoverColdQueryScenarioExportsValidDualClockTrace) {
  auto& rec = TraceRecorder::instance();
  rec.set_enabled(false);
  rec.clear();

  const Dataset ds = serve_dataset(131);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
  const auto truth = tv.predict_rectified(ds.features);

  ShardedServerConfig scfg;
  scfg.server.max_batch = 8;
  scfg.server.max_wait = std::chrono::microseconds(500);
  scfg.replicate = true;
  scfg.materialize_on_start = false;  // cold start: demand-driven cross-shard path

  rec.set_enabled(true);
  {
    ShardedVaultServer server(ds, std::move(tv), plan, {}, scfg);
    const auto wave = [&](std::uint32_t lo, std::uint32_t hi) {
      std::vector<std::uint32_t> nodes;
      for (std::uint32_t v = lo; v < hi; ++v) nodes.push_back(v);
      auto futs = server.submit_many(nodes);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        ASSERT_EQ(futs[i].get(), truth[nodes[i]]) << "node " << nodes[i];
      }
    };

    wave(0, 32);                        // cold path (stores not materialized)
    server.update_features(ds.features);  // materialize + replica re-ship
    wave(32, 64);                         // warm store lookups
    const std::uint32_t victim = server.deployment().plan().owner[0];
    server.kill_shard(victim);
    wave(64, 96);  // fenced until the standby is promoted, then served exactly
    server.flush();
  }  // the fleet (and its enclaves) is GONE before the export below:
     // span categories referencing enclave names must be interned copies,
     // not pointers into destroyed objects.
  rec.set_enabled(false);

  // --- The exported document is Perfetto-loadable and well-nested. ---------
  const std::string json = rec.to_chrome_json();
  std::string why;
  EXPECT_TRUE(validate_trace_json(json, &why)) << why;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"modeled_sgx_s\""), std::string::npos);
  // Queue waits overlap worker slices by design: exported as async pairs.
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);

  // --- Span coverage of the whole scenario. --------------------------------
  const auto events = rec.snapshot();
  std::set<std::string> names;
  for (const auto& ev : events) names.insert(ev.name);
  for (const char* required :
       {"queue_wait", "batch_flush", "route_batch", "shard_lookup", "ecall",
        "cold_forward", "cold_layer_compute", "cold_subset", "layer_compute",
        "halo_send", "refresh", "promotion", "unseal", "adopt"}) {
    EXPECT_EQ(names.count(required), 1u) << "missing span: " << required;
  }

  // --- Dual clocks: ecall spans carry a positive modeled-SGX charge. -------
  std::uint64_t ecalls = 0;
  double modeled = 0.0;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "ecall") {
      ++ecalls;
      modeled += ev.modeled_s;
      EXPECT_GT(ev.modeled_s, 0.0);  // transition cost alone is nonzero
    }
  }
  EXPECT_GT(ecalls, 0u);
  EXPECT_GT(modeled, 0.0);

  rec.clear();
}

}  // namespace
}  // namespace gv
