// QueryLens core contract: id allocation, QueryScope nesting, TraceSpan
// auto-attachment of the current query id, and the per-stage histograms.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "obs/trace.hpp"

namespace gv {
namespace {

TEST(QueryId, NeverZeroAndMonotonePerThread) {
  std::uint64_t prev = next_query_id();
  EXPECT_NE(prev, 0u);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = next_query_id();
    EXPECT_GT(id, prev);
    prev = id;
  }
  // Stays exactly representable as a double (the span-arg type).
  EXPECT_LT(prev, std::uint64_t{1} << 53);
}

TEST(QueryId, UniqueAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) got[t].push_back(next_query_id());
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (const auto& v : got) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), std::size_t(kThreads) * kPerThread);
}

TEST(QueryScope, NestsAndRestores) {
  EXPECT_EQ(current_query_id(), 0u);
  {
    QueryScope outer(41);
    EXPECT_EQ(current_query_id(), 41u);
    {
      QueryScope inner(42);
      EXPECT_EQ(current_query_id(), 42u);
      {
        // Entering 0 deliberately clears the context (a peer shard that
        // received no halo request must not inherit the previous query).
        QueryScope cleared(0);
        EXPECT_EQ(current_query_id(), 0u);
      }
      EXPECT_EQ(current_query_id(), 42u);
    }
    EXPECT_EQ(current_query_id(), 41u);
  }
  EXPECT_EQ(current_query_id(), 0u);
}

TEST(QueryScope, SpanClosedUnderScopeCarriesTheId) {
  auto& rec = TraceRecorder::instance();
  rec.clear();
  rec.set_enabled(true);
  {
    QueryScope scope(777);
    TraceSpan span("test", "tagged_span");
    span.arg("shard", 3.0);
  }
  {
    TraceSpan span("test", "untagged_span");
  }
  rec.set_enabled(false);
  bool saw_tagged = false, saw_untagged = false;
  for (const auto& ev : rec.snapshot()) {
    double qid = -1.0;
    for (int i = 0; i < ev.num_args; ++i) {
      if (std::string(ev.args[i].key) == "query_id") qid = ev.args[i].value;
    }
    if (std::string(ev.name) == "tagged_span") {
      saw_tagged = true;
      EXPECT_DOUBLE_EQ(qid, 777.0);
    }
    if (std::string(ev.name) == "untagged_span") {
      saw_untagged = true;
      EXPECT_DOUBLE_EQ(qid, -1.0);  // no scope -> no arg
    }
  }
  EXPECT_TRUE(saw_tagged);
  EXPECT_TRUE(saw_untagged);
  rec.clear();
}

TEST(QueryScope, ExplicitQueryIdArgIsNotDuplicated) {
  auto& rec = TraceRecorder::instance();
  rec.clear();
  rec.set_enabled(true);
  {
    QueryScope scope(99);
    TraceSpan span("test", "explicit_arg");
    span.arg("query_id", 55.0);  // caller-attributed wins
  }
  rec.set_enabled(false);
  for (const auto& ev : rec.snapshot()) {
    if (std::string(ev.name) != "explicit_arg") continue;
    int hits = 0;
    double val = 0.0;
    for (int i = 0; i < ev.num_args; ++i) {
      if (std::string(ev.args[i].key) == "query_id") {
        ++hits;
        val = ev.args[i].value;
      }
    }
    EXPECT_EQ(hits, 1);
    EXPECT_DOUBLE_EQ(val, 55.0);
  }
  rec.clear();
}

TEST(QueryStage, NamesAreStable) {
  EXPECT_STREQ(query_stage_name(QueryStage::kQueue), "queue");
  EXPECT_STREQ(query_stage_name(QueryStage::kFlush), "flush");
  EXPECT_STREQ(query_stage_name(QueryStage::kEcall), "ecall");
  EXPECT_STREQ(query_stage_name(QueryStage::kHalo), "halo");
  EXPECT_STREQ(query_stage_name(QueryStage::kCold), "cold");
  EXPECT_STREQ(query_stage_name(QueryStage::kFence), "fence");
}

TEST(QueryStage, RecordingLandsInTheLabeledHistogram) {
  auto& reg = MetricsRegistry::global();
  auto& h = reg.histogram("query.stage_seconds",
                          MetricLabels::of("stage", "fence"));
  const auto before = h.snapshot();
  record_query_stage(QueryStage::kFence, 0.25);
  record_query_stage(QueryStage::kFence, 0.50);
  const auto after = h.snapshot();
  EXPECT_EQ(after.count - before.count, 2u);
  EXPECT_NEAR(after.sum - before.sum, 0.75, 1e-12);
}

}  // namespace
}  // namespace gv
