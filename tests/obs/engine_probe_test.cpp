// EngineScope EngineProbe: delta-folding of the JobSystem's worker-local
// counters into labeled registry instruments, push-side occupancy gauges,
// and the process-wide engines_json() enumeration.
#include "obs/engine_probe.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/job_system.hpp"

namespace gv {
namespace {

std::uint64_t lane_executed(MetricsRegistry& reg, const std::string& engine,
                            std::size_t workers, const char* lane) {
  std::uint64_t sum = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    sum += reg
               .counter("jobs.executed", MetricLabels{{"engine", engine},
                                                      {"worker", std::to_string(w)},
                                                      {"lane", lane}})
               .value();
  }
  return sum;
}

double gauge_val(MetricsRegistry& reg, const char* name,
                 const std::string& engine) {
  return reg.gauge(name, MetricLabels::of("engine", engine)).value();
}

TEST(EngineProbe, FoldsExecutedCountersWithoutDoubleCounting) {
  MetricsRegistry reg;
  JobSystem jobs(2);
  constexpr int kJobs = 64;
  std::atomic<int> ran{0};
  for (int i = 0; i < kJobs; ++i) {
    jobs.post(JobClass::kInteractive, [&] { ran.fetch_add(1); });
  }
  while (ran.load() < kJobs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EngineProbe probe(reg, "t0");
  probe.attach(&jobs, nullptr, nullptr);
  probe.pull();
  const std::size_t workers = jobs.num_workers();
  EXPECT_EQ(lane_executed(reg, "t0", workers, "interactive"), kJobs);
  EXPECT_EQ(lane_executed(reg, "t0", workers, "maintenance"), 0u);

  // Folding is delta-based: pulling again with no new work adds nothing,
  // so the registry counters stay monotone and exact.
  probe.pull();
  probe.pull();
  EXPECT_EQ(lane_executed(reg, "t0", workers, "interactive"), kJobs);

  // The maintenance cap gauge mirrors the engine's configuration.
  EXPECT_EQ(gauge_val(reg, "jobs.maintenance_cap", "t0"),
            double(jobs.max_maintenance_in_flight()));

  const std::string snap = probe.snapshot_json();
  EXPECT_NE(snap.find("\"engine\":\"t0\""), std::string::npos);
  EXPECT_NE(snap.find("\"interactive\":64"), std::string::npos);
}

// Regression: pull() must be serialized end-to-end.  Unserialized, two
// pulls could gather snapshots S_old and S_new but fold them in the wrong
// order, underflowing the unsigned delta (prev already advanced past S_old)
// and adding ~2^64 to the monotone executed counters.  Hammer pulls while
// jobs run, then check the quiesced fold is EXACT.
TEST(EngineProbe, ConcurrentPullsFoldExactly) {
  MetricsRegistry reg;
  JobSystem jobs(2);
  EngineProbe probe(reg, "race");
  probe.attach(&jobs, nullptr, nullptr);

  std::atomic<bool> stop{false};
  std::vector<std::thread> pullers;
  for (int t = 0; t < 4; ++t) {
    pullers.emplace_back([&] {
      while (!stop.load()) probe.pull();
    });
  }

  constexpr int kJobs = 512;
  std::atomic<int> ran{0};
  for (int i = 0; i < kJobs; ++i) {
    jobs.post(JobClass::kInteractive, [&] { ran.fetch_add(1); });
  }
  while (ran.load() < kJobs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& t : pullers) t.join();

  probe.pull();  // quiesced: folds whatever tail the racers left
  EXPECT_EQ(lane_executed(reg, "race", jobs.num_workers(), "interactive"),
            kJobs);
}

TEST(EngineProbe, TokenPoolPushSetsOccupancyGauges) {
  MetricsRegistry reg;
  EngineProbe probe(reg, "push");
  probe.publish_token_pool(/*capacity=*/64, /*free_count=*/48, /*chunks=*/2);
  EXPECT_EQ(gauge_val(reg, "tokens.capacity", "push"), 64.0);
  EXPECT_EQ(gauge_val(reg, "tokens.free", "push"), 48.0);
  EXPECT_EQ(gauge_val(reg, "tokens.in_use", "push"), 16.0);
  EXPECT_EQ(gauge_val(reg, "tokens.chunks", "push"), 2.0);
}

TEST(EngineProbe, ArenaDeltasAggregateAcrossBatches) {
  MetricsRegistry reg;
  EngineProbe probe(reg, "arena");
  // Two batches grow, one rewinds (batch destroyed): the gauges track the
  // POOL total, which only delta publishing can maintain.
  probe.add_arena_delta(4096.0, 2.0, 4096.0);
  probe.add_arena_delta(2048.0, 1.0, 2048.0);
  probe.add_arena_delta(-1024.0, -1.0, 0.0);
  EXPECT_EQ(gauge_val(reg, "arena.retained_bytes", "arena"), 5120.0);
  EXPECT_EQ(gauge_val(reg, "arena.blocks", "arena"), 2.0);
  EXPECT_EQ(gauge_val(reg, "arena.high_water_bytes", "arena"), 6144.0);
}

TEST(EngineProbe, EnginesJsonEnumeratesLiveProbes) {
  MetricsRegistry reg;
  EngineProbe a(reg, "alpha");
  std::string all;
  {
    EngineProbe b(reg, "beta");
    EngineProbe::pull_all();
    all = EngineProbe::engines_json(/*live=*/false);
    EXPECT_NE(all.find("\"engine\":\"alpha\""), std::string::npos);
    EXPECT_NE(all.find("\"engine\":\"beta\""), std::string::npos);
  }
  // A destroyed probe unregisters itself.
  all = EngineProbe::engines_json();
  EXPECT_NE(all.find("\"engine\":\"alpha\""), std::string::npos);
  EXPECT_EQ(all.find("\"engine\":\"beta\""), std::string::npos);
  EXPECT_EQ(all.front(), '[');
  EXPECT_EQ(all.back(), ']');
}

TEST(EngineProbe, PullWithNothingAttachedYieldsEmptyShape) {
  MetricsRegistry reg;
  EngineProbe probe(reg, "bare");
  probe.pull();
  const std::string snap = probe.snapshot_json();
  EXPECT_NE(snap.find("\"workers\":0"), std::string::npos);
  EXPECT_NE(snap.find("\"engine\":\"bare\""), std::string::npos);
}

}  // namespace
}  // namespace gv
