#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace gv {
namespace {

TEST(Env, IntFallsBackWhenUnset) {
  ::unsetenv("GV_TEST_INT");
  EXPECT_EQ(env_int("GV_TEST_INT", 42), 42);
}

TEST(Env, IntParsesValue) {
  ::setenv("GV_TEST_INT", "-17", 1);
  EXPECT_EQ(env_int("GV_TEST_INT", 0), -17);
  ::unsetenv("GV_TEST_INT");
}

TEST(Env, IntFallsBackOnGarbage) {
  ::setenv("GV_TEST_INT", "abc", 1);
  EXPECT_EQ(env_int("GV_TEST_INT", 5), 5);
  ::unsetenv("GV_TEST_INT");
}

TEST(Env, DoubleParsesValue) {
  ::setenv("GV_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("GV_TEST_DBL", 0.0), 2.5);
  ::unsetenv("GV_TEST_DBL");
}

TEST(Env, StringFallsBackOnEmpty) {
  ::setenv("GV_TEST_STR", "", 1);
  EXPECT_EQ(env_string("GV_TEST_STR", "dflt"), "dflt");
  ::unsetenv("GV_TEST_STR");
}

TEST(Env, StringReadsValue) {
  ::setenv("GV_TEST_STR", "hello", 1);
  EXPECT_EQ(env_string("GV_TEST_STR", "dflt"), "hello");
  ::unsetenv("GV_TEST_STR");
}

TEST(Env, SeedDefaultsTo42) {
  ::unsetenv("GNNVAULT_SEED");
  EXPECT_EQ(experiment_seed(), 42u);
}

TEST(Env, FastModeDefaultsOff) {
  ::unsetenv("GNNVAULT_BENCH_FAST");
  EXPECT_FALSE(bench_fast_mode());
  ::setenv("GNNVAULT_BENCH_FAST", "1", 1);
  EXPECT_TRUE(bench_fast_mode());
  ::unsetenv("GNNVAULT_BENCH_FAST");
}

}  // namespace
}  // namespace gv
