// EngineScope lock-contention profiler: disabled-by-default cost shape,
// per-rank attribution of contended waits, and the runtime toggle.
//
// The TSan CI job runs this file too: the enable/record/disable sequence
// races a holder thread against a contending locker, so a data race in the
// instrument-resolution handoff (g_resolved release/acquire) would trip it.
#include "common/thread_safety.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/annotations.hpp"
#include "obs/metrics.hpp"

namespace gv {
namespace {

std::uint64_t contended_count(const char* rank_name) {
  return MetricsRegistry::global()
      .counter("lock.contended", MetricLabels::of("rank", rank_name))
      .value();
}

Histogram::Snapshot wait_hist(const char* rank_name) {
  return MetricsRegistry::global()
      .histogram("lock.wait_seconds", MetricLabels::of("rank", rank_name))
      .snapshot();
}

/// Block `locker` on `mu` for ~`hold` by sleeping while holding it.
void contend_once(Mutex& mu, std::chrono::milliseconds hold) {
  std::atomic<bool> held{false};
  std::thread holder([&] {
    MutexLock lock(mu);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(hold);
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    MutexLock lock(mu);  // blocks until the holder's sleep ends
  }
  holder.join();
}

// Must run FIRST (gtest declaration order): it needs instrument resolution
// to not have happened yet.  Regression for the env-var enablement path:
// resolve_instruments() takes the registry's own profiled gv::Mutex, and
// with g_state unseeded that nested lock's enabled() check used to re-enter
// the slow path and recurse until stack overflow.  Re-create the
// first-ever-lock conditions — state unseeded, env var set — and lock.
TEST(LockProf, EnvSeededEnableDoesNotRecurse) {
  ::setenv("GNNVAULT_LOCKPROF", "1", 1);
  lockprof::g_state.store(-1, std::memory_order_relaxed);
  Mutex mu{lockrank::kRegistry};
  {
    MutexLock lock(mu);  // first probe: seeds from the env, resolves
  }
  EXPECT_TRUE(lockprof::enabled());
  lockprof::set_enabled(false);
  ::unsetenv("GNNVAULT_LOCKPROF");
}

TEST(LockProf, DisabledWritesNothing) {
  lockprof::set_enabled(false);
  const auto profiled_before = lockprof::profiled_acquisitions();
  const auto instruments_before = MetricsRegistry::global().size();
  Mutex mu{lockrank::kRegistry};
  for (int i = 0; i < 1000; ++i) {
    MutexLock lock(mu);
  }
  // Disabled lock() is one relaxed load + the plain mutex: the profiled
  // path is never entered and no instrument is created or touched.
  EXPECT_EQ(lockprof::profiled_acquisitions(), profiled_before);
  EXPECT_EQ(MetricsRegistry::global().size(), instruments_before);
}

TEST(LockProf, UncontendedEnabledCountsButRecordsNoWait) {
  lockprof::set_enabled(true);
  const auto profiled_before = lockprof::profiled_acquisitions();
  const auto contended_before = lockprof::contended_acquisitions();
  Mutex mu{lockrank::kQueue};
  for (int i = 0; i < 100; ++i) {
    MutexLock lock(mu);
  }
  lockprof::set_enabled(false);
  EXPECT_GE(lockprof::profiled_acquisitions() - profiled_before, 100u);
  // try_lock won every time: nothing contended, nothing in the histogram.
  EXPECT_EQ(lockprof::contended_acquisitions(), contended_before);
  EXPECT_EQ(wait_hist("kQueue").count, 0u);
}

TEST(LockProf, ContendedWaitLandsInItsRankHistogram) {
  lockprof::set_enabled(true);
  const auto registry_before = contended_count("kRegistry");
  const auto registry_hist_before = wait_hist("kRegistry").count;
  const auto queue_before = wait_hist("kQueue").count;

  Mutex mu{lockrank::kRegistry};
  contend_once(mu, std::chrono::milliseconds(30));
  lockprof::set_enabled(false);

  EXPECT_GE(contended_count("kRegistry"), registry_before + 1);
  const auto snap = wait_hist("kRegistry");
  ASSERT_GE(snap.count, registry_hist_before + 1);
  // The wait spanned the holder's 30 ms sleep; well above bucket noise.
  EXPECT_GT(snap.max, 1e-3);
  // Attribution is per rank: the kQueue histogram saw nothing from this.
  EXPECT_EQ(wait_hist("kQueue").count, queue_before);
}

TEST(LockProf, UnrankedMutexFallsIntoUnrankedSlot) {
  lockprof::set_enabled(true);
  const auto before = contended_count("unranked");
  Mutex mu;  // no rank: the default-constructed form every caller gets
  contend_once(mu, std::chrono::milliseconds(10));
  lockprof::set_enabled(false);
  EXPECT_GE(contended_count("unranked"), before + 1);
}

TEST(LockProf, DisableStopsRecordingImmediately) {
  lockprof::set_enabled(true);
  lockprof::set_enabled(false);
  const auto profiled_before = lockprof::profiled_acquisitions();
  const auto hist_before = wait_hist("kRegistry").count;
  Mutex mu{lockrank::kRegistry};
  contend_once(mu, std::chrono::milliseconds(5));
  EXPECT_EQ(lockprof::profiled_acquisitions(), profiled_before);
  EXPECT_EQ(wait_hist("kRegistry").count, hist_before);
}

}  // namespace
}  // namespace gv
