// Arena / allocator-adapter semantics the JobServe warm path depends on:
// alignment, block retention across reset(), and free-list recycling.
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/arena.hpp"

namespace gv {
namespace {

TEST(Arena, AllocationsAreAligned) {
  Arena a;
  for (const std::size_t align : {1ul, 2ul, 4ul, 8ul, 16ul, 64ul}) {
    void* p = a.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
  auto doubles = a.alloc_array<double>(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) % alignof(double),
            0u);
  EXPECT_EQ(doubles.size(), 7u);
}

TEST(Arena, ResetRetainsBlocksAndReusesThem) {
  Arena a(/*first_block_bytes=*/256);
  // Warm up: force a few blocks into existence.
  for (int i = 0; i < 8; ++i) a.allocate(200, 8);
  const std::size_t reserved = a.bytes_reserved();
  const std::size_t blocks = a.num_blocks();
  EXPECT_GT(blocks, 1u);
  // Steady state: the same allocation pattern must not grow the arena.
  for (int round = 0; round < 16; ++round) {
    a.reset();
    EXPECT_EQ(a.bytes_used(), 0u);
    for (int i = 0; i < 8; ++i) a.allocate(200, 8);
    EXPECT_EQ(a.bytes_reserved(), reserved) << "round " << round;
    EXPECT_EQ(a.num_blocks(), blocks) << "round " << round;
  }
}

TEST(Arena, OversizedAllocationGetsDedicatedBlock) {
  Arena a(/*first_block_bytes=*/64);
  void* p = a.allocate(1 << 20, 16);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(a.bytes_reserved(), std::size_t{1} << 20);
  // Still usable afterwards.
  auto ints = a.alloc_array<std::uint32_t>(100);
  ints[99] = 7;
  EXPECT_EQ(ints[99], 7u);
}

TEST(Arena, StdContainerAdapterWorks) {
  Arena a;
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> v(
      (ArenaAllocator<std::uint32_t>(a)));
  for (std::uint32_t i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[999], 999u);
  EXPECT_GT(a.bytes_used(), 0u);
}

TEST(RecyclingAllocator, NodeChurnStopsAllocatingAfterWarmup) {
  using Alloc = RecyclingAllocator<std::uint32_t>;
  Alloc alloc;
  std::list<std::uint32_t, Alloc> l(alloc);
  for (int i = 0; i < 64; ++i) l.push_back(i);
  l.clear();  // 64 nodes now sit in the free list
  // Churn: every push pops a recycled node, every erase returns it.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i) l.push_back(i);
    l.clear();
  }
  SUCCEED();  // steady-state heap behavior is asserted end-to-end by the
              // front-end zero-allocation test; this pins the API shape
}

TEST(RecyclingAllocator, RebindCopiesSharePool) {
  // unordered_map rebinds the allocator for its nodes AND allocates bucket
  // arrays (n > 1, pass-through); both must work off one handle.
  using Alloc = RecyclingAllocator<std::pair<const std::uint32_t, std::uint32_t>>;
  std::unordered_map<std::uint32_t, std::uint32_t, std::hash<std::uint32_t>,
                     std::equal_to<std::uint32_t>, Alloc>
      m;
  m.reserve(128);
  for (std::uint32_t round = 0; round < 50; ++round) {
    for (std::uint32_t i = 0; i < 100; ++i) m.emplace(i, i * 2);
    EXPECT_EQ(m.at(7), 14u);
    m.clear();
  }
}

}  // namespace
}  // namespace gv
