#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace gv {
namespace {

TEST(Table, AsciiContainsHeaderAndCells) {
  Table t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string s = t.to_ascii();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("| 1 "), std::string::npos);
}

TEST(Table, AsciiAlignsColumnWidths) {
  Table t;
  t.set_header({"x"});
  t.add_row({"longcell"});
  const std::string s = t.to_ascii();
  // The header cell must be padded to the widest cell.
  EXPECT_NE(s.find("| x        |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t;
  t.set_header({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table t;
  t.set_header({"h1", "h2"});
  t.add_row({"v1", "v2"});
  EXPECT_EQ(t.to_csv(), "h1,h2\nv1,v2\n");
}

TEST(Table, WriteCsvCreatesFile) {
  Table t;
  t.set_header({"k"});
  t.add_row({"v"});
  const std::string path = ::testing::TempDir() + "gv_table_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvBadPathThrows) {
  Table t;
  EXPECT_THROW(t.write_csv("/nonexistent-dir-xyz/out.csv"), Error);
}

TEST(Table, RaggedRowsRenderWithEmptyCells) {
  Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  const std::string s = t.to_ascii();
  EXPECT_NE(s.find("| 1 |"), std::string::npos);
}

TEST(Table, FmtRoundsToPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
  EXPECT_EQ(Table::fmt(-1.005, 1), "-1.0");
}

TEST(Table, PctConvertsFractionToPercent) {
  EXPECT_EQ(Table::pct(0.804), "80.4");
  EXPECT_EQ(Table::pct(1.0), "100.0");
}

TEST(Table, RowCountTracksAdds) {
  Table t;
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace gv
