// Runtime lock-rank validator (gv::lint::RankScope) + annotation layer.
//
// The RankScope class is compiled unconditionally (the GV_RANK_SCOPE macro
// only instantiates it under GV_LOCK_RANK_VALIDATE), so these tests drive
// it directly and hold in every build flavor — including the sanitizer CI
// jobs that build with -DGV_VALIDATE_LOCK_RANKS=ON, where every annotated
// lock site in the tree runs through the same code path.

#include "common/annotations.hpp"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace gv::lint {
namespace {

std::atomic<int> g_violations{0};
std::atomic<int> g_last_held{-1};
std::atomic<int> g_last_acquiring{-1};

void count_violation(int held, int acquiring, const char* /*what*/) {
  g_violations.fetch_add(1);
  g_last_held.store(held);
  g_last_acquiring.store(acquiring);
}

class RankScopeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_violations.store(0);
    prev_ = set_rank_violation_handler(&count_violation);
  }
  void TearDown() override { set_rank_violation_handler(prev_); }
  RankViolationHandler prev_ = nullptr;
};

TEST_F(RankScopeTest, MonotoneAcquisitionIsClean) {
  EXPECT_EQ(RankScope::held_depth(), 0u);
  {
    RankScope control(lockrank::kServerControl, "control");
    RankScope deployment(lockrank::kDeployment, "deployment");
    RankScope channel(lockrank::kChannel, "channel");
    EXPECT_EQ(RankScope::held_depth(), 3u);
    EXPECT_EQ(RankScope::top_rank(), lockrank::kChannel);
  }
  EXPECT_EQ(RankScope::held_depth(), 0u);
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(RankScopeTest, EqualRanksMayNest) {
  // Distinct instances of a per-shard / per-replica mutex share a rank and
  // are allowed to nest (the ordering is non-strict).
  RankScope a(lockrank::kShardAccess, "shard A");
  RankScope b(lockrank::kShardAccess, "shard B");
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(RankScopeTest, InversionFiresHandlerWithBothRanks) {
  RankScope channel(lockrank::kChannel, "channel");
  {
    RankScope registry(lockrank::kRegistry, "registry under channel");
    EXPECT_EQ(g_violations.load(), 1);
    EXPECT_EQ(g_last_held.load(), lockrank::kChannel);
    EXPECT_EQ(g_last_acquiring.load(), lockrank::kRegistry);
  }
  // The violating scope still participates in the stack and pops cleanly.
  EXPECT_EQ(RankScope::top_rank(), lockrank::kChannel);
}

TEST_F(RankScopeTest, RecoveryAfterPop) {
  {
    RankScope channel(lockrank::kChannel, "channel");
  }
  // Once the high rank is released, a low rank is fine again.
  RankScope registry(lockrank::kRegistry, "registry");
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(RankScopeTest, HeldStackIsThreadLocal) {
  RankScope channel(lockrank::kChannel, "channel on main");
  std::atomic<int> other_thread_depth{-1};
  std::thread t([&] {
    // A fresh thread starts with an empty stack: acquiring a LOW rank here
    // must not be judged against main's held kChannel.
    RankScope registry(lockrank::kRegistry, "registry on worker");
    other_thread_depth.store(static_cast<int>(RankScope::held_depth()));
  });
  t.join();
  EXPECT_EQ(other_thread_depth.load(), 1);
  EXPECT_EQ(g_violations.load(), 0);
  EXPECT_EQ(RankScope::held_depth(), 1u);
}

TEST_F(RankScopeTest, RankTableIsMonotoneOuterToInner) {
  // The documented outer->inner order must stay strictly increasing; a new
  // subsystem squeezed in at the wrong spot breaks this at compile review
  // time AND here.
  const int order[] = {
      lockrank::kRegistry,    lockrank::kServerControl, lockrank::kReplicate,
      lockrank::kServerState, lockrank::kReplicaSlot,   lockrank::kDeployment,
      lockrank::kShardAccess, lockrank::kMoveFence,     lockrank::kServerSnap,
      lockrank::kEnclaveEntry, lockrank::kEnclaveMeter, lockrank::kChannel,
      lockrank::kQueue,       lockrank::kTelemetry};
  for (std::size_t i = 1; i < std::size(order); ++i) {
    EXPECT_LT(order[i - 1], order[i]) << "rank table out of order at " << i;
  }
}

// GV_LINT_ALLOW must compile away cleanly in any scope.
GV_LINT_ALLOW("lock-rank", "fixture: proves the macro is scope-agnostic");

TEST_F(RankScopeTest, SuppressionMacroCompilesInFunctionScope) {
  GV_LINT_ALLOW("secret-egress", "fixture: function-scope expansion");
  SUCCEED();
}

}  // namespace
}  // namespace gv::lint
