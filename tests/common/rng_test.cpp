#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace gv {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(19);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithMeanAndStddev) {
  Rng rng(31);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(37);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoBoundedByOneAndCap) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.pareto(2.0, 50.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 50.0);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng(43);
  // With alpha=1.5 a noticeable fraction should exceed 5x the minimum.
  int big = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) big += (rng.pareto(1.5, 1000.0) > 5.0);
  EXPECT_GT(big, n / 100);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to match
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(53);
  const auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (const auto v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(59);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(61);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), Error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(67);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Splitmix, KnownExpansionIsStable) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace gv
