#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gv {
namespace {

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 40 + 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&](std::size_t i) {
                          if (i == 7) throw std::runtime_error("bad index");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&sum] { sum.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 200);
}

}  // namespace
}  // namespace gv
