// JobSystem semantics the serving core depends on: every posted job runs
// exactly once (even under stealing), priority ordering within a worker,
// the maintenance in-flight cap, work stealing actually firing, and the
// staged shutdown contract (cancel interactive/cold, drain maintenance).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "serve/job_system.hpp"

namespace gv {
namespace {

void spin_for(std::chrono::microseconds dur) {
  const auto until = std::chrono::steady_clock::now() + dur;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(JobSystem, RunsEveryJobExactlyOnceUnderContention) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 250;
  JobSystem js(4);

  std::vector<std::atomic<int>> ran(kThreads * kPerThread);
  for (auto& r : ran) r.store(0);
  std::atomic<std::size_t> total{0};

  std::vector<std::thread> posters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    posters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t id = t * kPerThread + i;
        const JobClass cls = static_cast<JobClass>(id % kNumJobClasses);
        js.post(cls, [&, id] {
          ran[id].fetch_add(1, std::memory_order_relaxed);
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& p : posters) p.join();
  js.drain_idle();

  EXPECT_EQ(total.load(), kThreads * kPerThread);
  for (std::size_t i = 0; i < ran.size(); ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "job " << i;
  }
  const JobSystemStats s = js.stats();
  EXPECT_EQ(s.executed[0] + s.executed[1] + s.executed[2],
            kThreads * kPerThread);
  EXPECT_EQ(s.cancelled[0] + s.cancelled[1] + s.cancelled[2], 0u);
}

TEST(JobSystem, WorkStealingMovesJobsOffABusyWorker) {
  JobSystem js(4);
  std::atomic<std::size_t> done{0};

  // One producer job posts a burst from INSIDE the pool; those land on the
  // producer's own deque, so the only way another worker helps is a steal.
  std::promise<void> posted;
  js.post(JobClass::kInteractive, [&] {
    for (int i = 0; i < 400; ++i) {
      js.post(JobClass::kInteractive, [&] {
        spin_for(std::chrono::microseconds(50));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    posted.set_value();
  });
  posted.get_future().get();
  js.drain_idle();

  EXPECT_EQ(done.load(), 400u);
  EXPECT_GT(js.stats().stolen, 0u);
}

TEST(JobSystem, MaintenanceCapIsNeverExceeded) {
  JobSystem js(4, /*max_maintenance_in_flight=*/1);
  ASSERT_EQ(js.max_maintenance_in_flight(), 1u);

  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 32; ++i) {
    js.post(JobClass::kMaintenance, [&] {
      const int now = running.fetch_add(1, std::memory_order_acq_rel) + 1;
      int prev = peak.load(std::memory_order_relaxed);
      while (prev < now &&
             !peak.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
      }
      spin_for(std::chrono::microseconds(200));
      running.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  js.drain_idle();

  EXPECT_EQ(js.stats().executed[2], 32u);
  EXPECT_LE(peak.load(), 1);
}

TEST(JobSystem, DefaultMaintenanceCapLeavesAWorkerFree) {
  JobSystem js(4);
  EXPECT_EQ(js.max_maintenance_in_flight(), 3u);
  JobSystem solo(1);
  EXPECT_EQ(solo.max_maintenance_in_flight(), 1u);
}

TEST(JobSystem, OwnLanesDrainInteractiveFirst) {
  JobSystem js(1);

  // Park the only worker so the three queued jobs below cannot start until
  // all of them are enqueued; then the pop order is pure lane priority.
  std::promise<void> started;
  std::promise<void> release;
  auto gate = release.get_future().share();
  js.post(JobClass::kInteractive, [&, gate] {
    started.set_value();
    gate.get();
  });
  started.get_future().get();

  std::atomic<int> seq{0};
  std::atomic<int> order[kNumJobClasses] = {};
  js.post(JobClass::kMaintenance,
          [&] { order[2] = seq.fetch_add(1) + 1; });
  js.post(JobClass::kCold, [&] { order[1] = seq.fetch_add(1) + 1; });
  js.post(JobClass::kInteractive,
          [&] { order[0] = seq.fetch_add(1) + 1; });

  release.set_value();
  js.drain_idle();

  EXPECT_EQ(order[0].load(), 1);  // interactive ran first despite last post
  EXPECT_EQ(order[1].load(), 2);
  EXPECT_EQ(order[2].load(), 3);
}

TEST(JobSystem, StopCancelsQueuedInteractiveButDrainsMaintenance) {
  JobSystem js(1);

  std::promise<void> started;
  std::promise<void> release;
  auto gate = release.get_future().share();
  js.post(JobClass::kInteractive, [&, gate] {
    started.set_value();
    gate.get();
  });
  started.get_future().get();

  std::atomic<bool> interactive_ran{false};
  std::atomic<bool> interactive_cancelled{false};
  std::atomic<bool> maintenance_ran{false};
  std::atomic<bool> maintenance_cancelled{false};
  js.post(
      JobClass::kInteractive, [&] { interactive_ran = true; },
      [&] { interactive_cancelled = true; });
  js.post(
      JobClass::kMaintenance, [&] { maintenance_ran = true; },
      [&] { maintenance_cancelled = true; });

  std::thread stopper(
      [&] { js.stop(/*drain=*/std::chrono::milliseconds(5000)); });
  // Give stop() time to sweep the interactive lane (phase 1) while the
  // worker is still parked; then free the worker inside the drain window so
  // it can chew the queued maintenance job.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  release.set_value();
  stopper.join();

  EXPECT_FALSE(interactive_ran.load());
  EXPECT_TRUE(interactive_cancelled.load());
  EXPECT_TRUE(maintenance_ran.load());  // drained within the deadline
  EXPECT_FALSE(maintenance_cancelled.load());

  const JobSystemStats s = js.stats();
  EXPECT_EQ(s.cancelled[0], 1u);
  EXPECT_GE(s.executed[2], 1u);
}

TEST(JobSystem, StopPastDeadlineCancelsQueuedMaintenance) {
  JobSystem js(1);

  std::promise<void> started;
  std::promise<void> release;
  auto gate = release.get_future().share();
  js.post(JobClass::kInteractive, [&, gate] {
    started.set_value();
    gate.get();
  });
  started.get_future().get();

  std::atomic<bool> maintenance_ran{false};
  std::atomic<bool> maintenance_cancelled{false};
  js.post(
      JobClass::kMaintenance, [&] { maintenance_ran = true; },
      [&] { maintenance_cancelled = true; });

  // Zero drain budget: the deadline is already past when stop() reaches
  // phase 2, so the queued maintenance job must be cancelled, not run.
  std::thread stopper([&] { js.stop(std::chrono::milliseconds(0)); });
  while (!maintenance_cancelled.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.set_value();
  stopper.join();

  EXPECT_FALSE(maintenance_ran.load());
  EXPECT_TRUE(maintenance_cancelled.load());
  EXPECT_EQ(js.stats().cancelled[2], 1u);
}

TEST(JobSystem, PostAfterStopRunsCancelInline) {
  JobSystem js(2);
  js.stop();

  bool ran = false;
  bool cancelled = false;
  js.post(
      JobClass::kInteractive, [&] { ran = true; }, [&] { cancelled = true; });
  EXPECT_FALSE(ran);
  EXPECT_TRUE(cancelled);
  EXPECT_GE(js.stats().cancelled[0], 1u);

  js.stop();  // idempotent
}

}  // namespace
}  // namespace gv
