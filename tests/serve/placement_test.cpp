// VaultRegistry placement + failover accounting.
//
// Pins the oversized-tenant placement policy the code actually implements —
// WORST-FIT-DECREASING (largest shard first, each onto the platform with
// the most free budget) — so the docs and the code cannot drift apart
// again.  Also covers fail_shard: a failover promotion releases the dead
// platform's reservation (admitting queued tenants) and moves the bytes to
// the standby-platform account.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "serve/registry.hpp"
#include "shard/shard_planner.hpp"
#include "../shard/shard_test_util.hpp"
#include "serve_test_util.hpp"

namespace gv {
namespace {

ServerConfig quick_server_config() {
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait = std::chrono::microseconds(500);
  return cfg;
}

TEST(VaultRegistry, OversizedPlacementIsWorstFitDecreasing) {
  const Dataset big = shard_dataset(111);
  const Dataset small = serve_dataset(112, /*nodes=*/120);
  TrainedVault big_tv = shard_vault(big, 3);
  TrainedVault small_tv = serve_vault(small, RectifierKind::kParallel, 4);
  const std::size_t whale_bytes = VaultRegistry::estimate_enclave_bytes(big_tv, big);
  const std::size_t minnow_bytes =
      VaultRegistry::estimate_enclave_bytes(small_tv, small);

  RegistryConfig rcfg;
  rcfg.epc_budget_fraction = 1.0;
  rcfg.cost_model.epc_bytes = whale_bytes * 17 / 20;
  rcfg.num_platforms = 4;
  rcfg.max_shards = 8;
  VaultRegistry registry(rcfg);
  const std::size_t budget = registry.platform_budget();
  ASSERT_LT(minnow_bytes, budget);

  // The minnow lands first and seeds asymmetric free space: every platform
  // is empty, so least-loaded placement picks platform 0.
  ASSERT_EQ(registry.admit("minnow", small, std::move(small_tv),
                           quick_server_config())
                .decision,
            AdmissionDecision::kAdmitted);
  ASSERT_EQ(registry.platform_in_use()[0], minnow_bytes);

  // Reproduce the plan the registry will compute, then simulate
  // worst-fit-decreasing by hand: shards sorted by estimated bytes
  // descending (stable), each placed on the platform with the MOST free
  // budget.  First-fit(-decreasing) would dump the largest shard on
  // platform 0 despite the minnow — the policies genuinely diverge here.
  const ShardPlan plan =
      ShardPlanner::plan_for_budget(big, big_tv, budget, rcfg.max_shards);
  ASSERT_GE(plan.num_shards, 2u);
  std::vector<std::uint32_t> by_size(plan.num_shards);
  for (std::uint32_t s = 0; s < plan.num_shards; ++s) by_size[s] = s;
  std::stable_sort(by_size.begin(), by_size.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return plan.shards[a].estimated_bytes >
                            plan.shards[b].estimated_bytes;
                   });
  std::vector<std::size_t> expected(rcfg.num_platforms, 0);
  expected[0] = minnow_bytes;
  for (const std::uint32_t s : by_size) {
    std::size_t best = rcfg.num_platforms;
    for (std::size_t p = 0; p < rcfg.num_platforms; ++p) {
      if (budget - expected[p] < plan.shards[s].estimated_bytes) continue;
      if (best == rcfg.num_platforms ||
          budget - expected[p] > budget - expected[best]) {
        best = p;
      }
    }
    ASSERT_LT(best, rcfg.num_platforms) << "expected placement must fit";
    expected[best] += plan.shards[s].estimated_bytes;
  }

  const auto r =
      registry.admit("whale", big, std::move(big_tv), quick_server_config());
  ASSERT_EQ(r.decision, AdmissionDecision::kAdmittedSharded) << r.reason;
  EXPECT_EQ(r.num_shards, plan.num_shards);
  EXPECT_EQ(registry.platform_in_use(), expected);
}

TEST(VaultRegistry, FailShardFreesPrimaryCapacityAndAdmitsQueued) {
  const Dataset ds = shard_dataset(113);
  TrainedVault tv = shard_vault(ds, 5);
  // A distinct vault for the second whale: TrainedVault copies SHARE the
  // backbone model, and whale's async promotion refresh must not run the
  // same mutable GcnModel as whale2's admission refresh.  Same spec + same
  // dataset => identical working-set estimate and shard plan.
  TrainedVault tv2 = shard_vault(ds, 6);
  const std::size_t single_bytes = VaultRegistry::estimate_enclave_bytes(tv, ds);
  ASSERT_EQ(single_bytes, VaultRegistry::estimate_enclave_bytes(tv2, ds));
  const auto truth = ShardedVaultDeployment(ds, tv, ShardPlanner::plan(ds, tv, 1))
                         .infer_labels(ds.features);
  const auto truth2 =
      ShardedVaultDeployment(ds, tv2, ShardPlanner::plan(ds, tv2, 1))
          .infer_labels(ds.features);

  RegistryConfig rcfg;
  rcfg.epc_budget_fraction = 1.0;
  rcfg.cost_model.epc_bytes = single_bytes * 17 / 20;
  // This dataset/budget plans to 4 shards whose pairwise sums all exceed one
  // platform budget, so the whale occupies one shard per platform and a
  // second identical whale can only be QUEUED until capacity frees.
  rcfg.num_platforms = 4;
  rcfg.queue_when_full = true;
  rcfg.replicate_shards = true;
  VaultRegistry registry(rcfg);

  const auto first =
      registry.admit("whale", ds, std::move(tv), quick_server_config());
  ASSERT_EQ(first.decision, AdmissionDecision::kAdmittedSharded) << first.reason;
  const std::uint32_t num_shards = first.num_shards;
  // The fleet is now too full for a second whale of the same size: queued.
  ASSERT_EQ(registry.admit("whale2", ds, std::move(tv2), quick_server_config())
                .decision,
            AdmissionDecision::kQueued);

  // Fail every shard of the first whale over to the standby platform.  Each
  // fail_shard releases that shard's primary reservation immediately.
  const std::size_t in_use_before = registry.epc_in_use();
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    registry.fail_shard("whale", s);
    EXPECT_THROW(registry.fail_shard("whale", s), Error);  // already failed
  }
  EXPECT_EQ(registry.standby_in_use(), in_use_before);

  // The freed capacity admitted the queued whale...
  EXPECT_TRUE(registry.queued().empty());
  ASSERT_TRUE(registry.has("whale2"));
  EXPECT_TRUE(registry.is_sharded("whale2"));
  // ...and the failed-over whale still serves bit-exact labels from its
  // promoted PRIMARYs.
  auto server = registry.sharded_server("whale");
  for (std::uint32_t v = 40; v < 60; ++v) {
    EXPECT_EQ(server->query(v), truth[v]) << "node " << v;
  }
  auto server2 = registry.sharded_server("whale2");
  for (std::uint32_t v = 40; v < 44; ++v) {
    EXPECT_EQ(server2->query(v), truth2[v]) << "node " << v;
  }

  // Removing the failed-over tenant returns the standby bytes too.
  EXPECT_TRUE(registry.remove("whale"));
  EXPECT_EQ(registry.standby_in_use(), 0u);
  EXPECT_TRUE(registry.remove("whale2"));
  EXPECT_EQ(registry.epc_in_use(), 0u);
}

}  // namespace
}  // namespace gv
