// Shared fixtures for the serving-subsystem tests: a small synthetic
// dataset and a quickly trained vault (mirrors tests/core/deployment_test).
#pragma once

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"

namespace gv {

inline Dataset serve_dataset(std::uint64_t seed, std::uint32_t nodes = 260) {
  SyntheticSpec spec;
  spec.num_nodes = nodes;
  spec.num_classes = 3;
  spec.num_undirected_edges = nodes * 3;
  spec.feature_dim = 100;
  spec.homophily = 0.85;
  spec.feature_signal = 0.45;
  return generate_synthetic(spec, seed);
}

inline TrainedVault serve_vault(const Dataset& ds,
                                RectifierKind kind = RectifierKind::kParallel,
                                std::uint64_t seed = 11) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {24, 12}, {24, 12}, 0.4f};
  cfg.rectifier = kind;
  cfg.backbone_train.epochs = 50;
  cfg.rectifier_train.epochs = 50;
  cfg.seed = seed;
  return train_vault(ds, cfg);
}

}  // namespace gv
