// ServeFrontEnd contract tests: completion tokens (then/wait_all), the
// zero-heap warm lookup path (the JobServe ROADMAP claim, asserted with a
// global operator-new counter), tenant QoS under a maintenance flood, and
// the staged shutdown ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <new>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "serve/serve_frontend.hpp"

// --- global allocation counter ----------------------------------------------
// Replacing ::operator new in this TU makes every heap allocation in the
// test binary observable.  The default operator new[] and the nothrow
// variants funnel through this overload, so plain counting here is enough
// for the "zero allocations per warm lookup" assertion below.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace gv {
namespace {

/// Allocation-free backend: labels[i] = 3 * nodes[i].
class MockBackend : public ServeBackend {
 public:
  Sha256Digest row_digest(std::uint32_t node) const override {
    Sha256Digest d{};
    std::memcpy(d.data(), &node, sizeof(node));
    return d;
  }

  BatchResult execute(std::span<const std::uint32_t> nodes,
                      std::span<std::uint32_t> labels,
                      std::span<Sha256Digest> digests) override {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      labels[i] = nodes[i] * 3u;
      if (!digests.empty()) digests[i] = row_digest(nodes[i]);
    }
    batches.fetch_add(1, std::memory_order_relaxed);
    return {};
  }

  double modeled_seconds_total() const override { return 0.0; }

  std::atomic<std::uint64_t> batches{0};
};

void spin_for(std::chrono::microseconds dur) {
  const auto until = std::chrono::steady_clock::now() + dur;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(ServeFrontEnd, SubmitManyPreservesOrderAcrossHitsAndMisses) {
  MockBackend backend;
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait = std::chrono::microseconds(500);
  cfg.worker_threads = 2;
  ServeFrontEnd fe(backend, cfg, /*num_nodes=*/100);

  // Warm node 5 so the batch below mixes inline-ready and pending tokens.
  EXPECT_EQ(fe.query(5), 15u);

  const std::uint32_t nodes[] = {5, 6, 7, 5, 8};
  SubmitBatch batch = fe.submit_many(nodes);
  ASSERT_EQ(batch.size(), 5u);
  fe.flush();
  batch.wait_all();
  const auto labels = batch.get_all();
  const std::vector<std::uint32_t> want = {15, 18, 21, 15, 24};
  EXPECT_EQ(labels, want);
}

TEST(ServeFrontEnd, ThenCallbackFiresOnPendingAndReadyTokens) {
  MockBackend backend;
  ServerConfig cfg;
  cfg.worker_threads = 2;
  ServeFrontEnd fe(backend, cfg, /*num_nodes=*/100);

  // Pending token: the callback runs on the resolving worker.
  std::promise<std::uint32_t> pending_value;
  SubmitToken t = fe.submit(42);
  t.then([&](std::uint32_t v, std::exception_ptr err) {
    if (!err) pending_value.set_value(v);
  });
  fe.flush();
  EXPECT_EQ(pending_value.get_future().get(), 126u);

  // Ready token (cache hit): the callback runs inline.
  bool inline_ran = false;
  SubmitToken hit = fe.submit(42);
  ASSERT_TRUE(hit.ready());
  hit.then([&](std::uint32_t v, std::exception_ptr err) {
    EXPECT_EQ(v, 126u);
    EXPECT_EQ(err, nullptr);
    inline_ran = true;
  });
  EXPECT_TRUE(inline_ran);
}

TEST(ServeFrontEnd, WarmCacheHitLookupMakesZeroHeapAllocations) {
  MockBackend backend;
  ServerConfig cfg;
  cfg.worker_threads = 2;
  ServeFrontEnd fe(backend, cfg, /*num_nodes=*/100);

  // Warm up: resolve the node once, then hit the cache a few times so every
  // lazily-grown structure on the hit path reaches steady state.
  EXPECT_EQ(fe.query(7), 21u);
  for (int i = 0; i < 100; ++i) fe.query(7);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t sum = 0;
  for (int i = 0; i < 1000; ++i) sum += fe.query(7);
  const std::uint64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(sum, 21000u);
  EXPECT_EQ(delta, 0u) << "cache-hit lookups touched the heap";
}

TEST(ServeFrontEnd, WarmMissPathMakesZeroHeapAllocations) {
  MockBackend backend;
  ServerConfig cfg;
  cfg.max_batch = 32;
  cfg.max_wait = std::chrono::microseconds(200);
  cfg.worker_threads = 2;
  cfg.cache_capacity = 0;  // every lookup exercises the full miss machinery
  ServeFrontEnd fe(backend, cfg, /*num_nodes=*/100);

  std::vector<SubmitToken> tokens;
  tokens.reserve(32);
  const auto round = [&] {
    for (std::uint32_t i = 0; i < 32; ++i) tokens.push_back(fe.submit(i));
    fe.flush();
    std::uint64_t sum = 0;
    for (auto& t : tokens) sum += t.get();
    tokens.clear();
    return sum;
  };

  // Warm up: token pool chunks, queue slab, batch pool, arena blocks, the
  // job rings, and the stage-histogram statics all reach steady state.
  for (int i = 0; i < 30; ++i) round();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t sum = 0;
  for (int i = 0; i < 10; ++i) sum += round();
  const std::uint64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(sum, 10u * 3u * (31u * 32u / 2u));
  EXPECT_EQ(delta, 0u) << "warm miss-path lookups touched the heap";
}

TEST(ServeFrontEnd, InteractiveLatencySurvivesMaintenanceFlood) {
  MockBackend backend;
  ServerConfig cfg;
  cfg.max_batch = 16;
  cfg.max_wait = std::chrono::microseconds(200);
  cfg.worker_threads = 4;  // default maintenance cap: 3 of 4 workers
  ServeFrontEnd fe(backend, cfg, /*num_nodes=*/1000);

  constexpr int kFlood = 100;
  std::atomic<int> maintenance_done{0};
  for (int i = 0; i < kFlood; ++i) {
    fe.post_background(JobClass::kMaintenance, [&] {
      spin_for(std::chrono::microseconds(2000));
      maintenance_done.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // With the cap holding a worker free, interactive queries must complete
  // long before the flood drains — not behind it, as a FIFO pool would.
  const std::uint32_t nodes[] = {1, 2, 3, 4, 5, 6, 7, 8};
  SubmitBatch batch = fe.submit_many(nodes);
  fe.flush();
  batch.wait_all();
  const int done_at_completion = maintenance_done.load();
  EXPECT_LT(done_at_completion, kFlood)
      << "interactive work waited for the whole maintenance flood";

  fe.jobs().drain_idle();
  EXPECT_EQ(maintenance_done.load(), kFlood);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(batch[i].get(), (i + 1) * 3);
}

TEST(ServeFrontEnd, StopFailsQueuedInteractiveWithShutdownError) {
  MockBackend backend;
  ServerConfig cfg;
  cfg.max_batch = 64;                           // never fills
  cfg.max_wait = std::chrono::seconds(3600);    // never expires
  cfg.worker_threads = 1;
  ServeFrontEnd fe(backend, cfg, /*num_nodes=*/100);

  const std::uint32_t nodes[] = {1, 2, 3};
  SubmitBatch queued = fe.submit_many(nodes);
  EXPECT_EQ(fe.pending(), 3u);
  fe.stop();

  for (auto& t : queued) {
    EXPECT_THROW(t.get(), Error);
  }
  EXPECT_THROW(fe.submit(4), Error);
  EXPECT_EQ(backend.batches.load(), 0u);
}

TEST(ServeFrontEnd, StopDrainsMaintenanceButShedsQueuedColdWork) {
  MockBackend backend;
  ServerConfig cfg;
  cfg.worker_threads = 1;
  cfg.shutdown_drain = std::chrono::milliseconds(5000);
  ServeFrontEnd fe(backend, cfg, /*num_nodes=*/100);

  // Park the only worker so the background jobs below stay queued until
  // stop() has classified them.
  std::promise<void> started;
  std::promise<void> release;
  auto gate = release.get_future().share();
  fe.post_background(JobClass::kMaintenance, [&, gate] {
    started.set_value();
    gate.get();
  });
  started.get_future().get();

  std::atomic<bool> maintenance_ran{false};
  std::atomic<bool> cold_ran{false};
  std::atomic<bool> cold_cancelled{false};
  fe.post_background(JobClass::kMaintenance, [&] { maintenance_ran = true; });
  fe.post_background(
      JobClass::kCold, [&] { cold_ran = true; },
      [&] { cold_cancelled = true; });

  std::thread stopper([&] { fe.stop(); });
  // Let stop() reach the drain phase, then free the worker inside the
  // 5 s drain window.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  release.set_value();
  stopper.join();

  EXPECT_TRUE(maintenance_ran.load());   // drained within the deadline
  EXPECT_FALSE(cold_ran.load());         // shed at shutdown...
  EXPECT_TRUE(cold_cancelled.load());    // ...through its cancel handler
}

}  // namespace
}  // namespace gv
