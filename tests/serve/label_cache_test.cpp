#include "serve/label_cache.hpp"

#include <gtest/gtest.h>

namespace gv {
namespace {

Sha256Digest digest_of(const std::string& s) {
  Sha256 h;
  h.update(s);
  return h.finish();
}

TEST(LabelCache, MissThenHit) {
  LabelCache cache(4);
  const auto d = digest_of("row0");
  EXPECT_FALSE(cache.get(0, d).has_value());
  cache.put(0, d, 2);
  const auto hit = cache.get(0, d);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 2u);
}

TEST(LabelCache, DigestMismatchEvictsStaleEntry) {
  LabelCache cache(4);
  cache.put(7, digest_of("old-features"), 1);
  EXPECT_FALSE(cache.get(7, digest_of("new-features")).has_value());
  // The stale entry is gone entirely, not just bypassed.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LabelCache, EvictsLeastRecentlyUsed) {
  LabelCache cache(2);
  cache.put(1, digest_of("a"), 0);
  cache.put(2, digest_of("b"), 0);
  // Touch node 1 so node 2 becomes the LRU entry.
  EXPECT_TRUE(cache.get(1, digest_of("a")).has_value());
  cache.put(3, digest_of("c"), 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.get(1, digest_of("a")).has_value());
  EXPECT_FALSE(cache.get(2, digest_of("b")).has_value());
  EXPECT_TRUE(cache.get(3, digest_of("c")).has_value());
}

TEST(LabelCache, UpdateExistingEntryKeepsSizeStable) {
  LabelCache cache(2);
  cache.put(1, digest_of("a"), 0);
  cache.put(1, digest_of("a2"), 5);
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.get(1, digest_of("a2"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 5u);
}

TEST(LabelCache, ZeroCapacityDisables) {
  LabelCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.put(0, digest_of("x"), 1);
  EXPECT_FALSE(cache.get(0, digest_of("x")).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LabelCache, FeatureRowDigestDistinguishesRows) {
  Matrix dense(3, 4, 0.0f);
  dense(0, 1) = 1.0f;
  dense(1, 2) = 1.0f;
  dense(2, 1) = 1.0f;  // same pattern as row 0
  const CsrMatrix features = CsrMatrix::from_dense(dense);
  EXPECT_NE(feature_row_digest(features, 0), feature_row_digest(features, 1));
  EXPECT_EQ(feature_row_digest(features, 0), feature_row_digest(features, 2));
}

}  // namespace
}  // namespace gv
