// MicroBatchQueue contract tests: deadline handling under multi-worker
// draining and the shutdown path for still-queued waiters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "serve/batch_queue.hpp"

namespace gv {
namespace {

TEST(MicroBatchQueue, StopFailsPendingWaitersWithShutdownError) {
  MicroBatchQueue q(8, std::chrono::seconds(30));
  std::promise<std::uint32_t> p;
  auto fut = p.get_future();
  q.submit(1, Sha256Digest{}, std::move(p));
  q.stop();
  // The waiter sees an explicit shutdown error, never a broken_promise.
  try {
    fut.get();
    FAIL() << "expected a shutdown error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("shutting down"), std::string::npos)
        << e.what();
  }
  // New submissions are refused, and workers wake up and exit.
  std::promise<std::uint32_t> p2;
  EXPECT_THROW(q.submit(2, Sha256Digest{}, std::move(p2)), Error);
  EXPECT_TRUE(q.next_batch().empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(MicroBatchQueue, StopWakesBlockedWorkers) {
  MicroBatchQueue q(8, std::chrono::seconds(30));
  std::thread worker([&] { EXPECT_TRUE(q.next_batch().empty()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.stop();
  worker.join();
}

// Deadline-drift regression: a worker parked on entry A's deadline must not
// flush a FRESH entry B early after another worker drained A (full batch)
// — the wait deadline is recomputed from the current oldest entry, so a
// fresh batch always gets its own full max_wait.
TEST(MicroBatchQueue, FreshBatchGetsItsOwnDeadlineAfterAnotherWorkerDrains) {
  constexpr auto kWait = std::chrono::milliseconds(200);
  constexpr std::size_t kMaxBatch = 4;
  MicroBatchQueue q(kMaxBatch, kWait);

  std::atomic<bool> stopping{false};
  std::atomic<int> early{0};
  std::atomic<int> popped{0};
  auto worker = [&] {
    for (;;) {
      auto batch = q.next_batch();
      if (batch.empty()) return;
      const auto now = std::chrono::steady_clock::now();
      // A batch below max_batch may flush only once its OLDEST entry has
      // waited out max_wait (stop() short-circuits are exempt).
      if (!stopping.load() && batch.size() < kMaxBatch &&
          now - batch.front().enqueued < kWait / 2) {
        ++early;
      }
      popped.fetch_add(static_cast<int>(batch.size()));
    }
  };
  std::thread w1(worker), w2(worker);

  int submitted = 0;
  const auto submit = [&](std::uint32_t node) {
    std::promise<std::uint32_t> p;
    p.get_future();  // waiter outcome is irrelevant here
    q.submit(node, Sha256Digest{}, std::move(p));
    ++submitted;
  };
  for (int round = 0; round < 8; ++round) {
    // A full burst: one worker pops it immediately; the other may be left
    // parked inside its wait with the burst's (now stale) deadline.
    for (std::uint32_t i = 0; i < kMaxBatch; ++i) {
      submit(static_cast<std::uint32_t>(round * 100 + i));
    }
    // A fresh entry arriving well before the stale deadline expires: the
    // parked worker must give it a full max_wait, not the leftover.
    std::this_thread::sleep_for(kWait * 3 / 5);
    submit(static_cast<std::uint32_t>(round * 100 + 50));
    while (popped.load() < submitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  stopping.store(true);
  q.stop();
  w1.join();
  w2.join();
  EXPECT_EQ(early.load(), 0);
}

}  // namespace
}  // namespace gv
