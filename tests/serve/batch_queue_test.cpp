// MicroBatchQueue contract tests: deadline handling under multi-worker
// draining and the shutdown path for still-queued waiters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "serve/batch_queue.hpp"
#include "serve/submit_token.hpp"

namespace gv {
namespace {

TEST(MicroBatchQueue, StopFailsPendingWaitersWithShutdownError) {
  MicroBatchQueue q(8, std::chrono::seconds(30));
  TokenPool pool;
  SubmitToken tok;
  {
    TokenState* s = pool.acquire();
    tok = SubmitToken(s);
    q.submit(1, Sha256Digest{}, s);
  }
  q.stop();
  // The waiter sees an explicit shutdown error, never a silent hang.
  try {
    tok.get();
    FAIL() << "expected a shutdown error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("shutting down"), std::string::npos)
        << e.what();
  }
  // New submissions are refused, and workers wake up and exit.
  TokenState* s2 = pool.acquire();
  EXPECT_THROW(q.submit(2, Sha256Digest{}, s2), Error);
  s2->abandon();  // the queue never owned the producer reference
  MicroBatchQueue::Batch b;
  EXPECT_FALSE(q.next_batch(&b));
  EXPECT_EQ(q.pending(), 0u);
  // Both states returned to the pool.
  EXPECT_EQ(pool.free_count() + 1, pool.capacity());  // tok still holds one
}

TEST(MicroBatchQueue, StopWakesBlockedWorkers) {
  MicroBatchQueue q(8, std::chrono::seconds(30));
  std::thread worker([&] {
    MicroBatchQueue::Batch b;
    EXPECT_FALSE(q.next_batch(&b));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.stop();
  worker.join();
}

// Deadline-drift regression: a worker parked on entry A's deadline must not
// flush a FRESH entry B early after another worker drained A (full batch)
// — the wait deadline is recomputed from the current oldest entry, so a
// fresh batch always gets its own full max_wait.
TEST(MicroBatchQueue, FreshBatchGetsItsOwnDeadlineAfterAnotherWorkerDrains) {
  constexpr auto kWait = std::chrono::milliseconds(200);
  constexpr std::size_t kMaxBatch = 4;
  MicroBatchQueue q(kMaxBatch, kWait);
  TokenPool pool;

  std::atomic<bool> stopping{false};
  std::atomic<int> early{0};
  std::atomic<int> popped{0};
  auto worker = [&] {
    MicroBatchQueue::Batch b;
    for (;;) {
      if (!q.next_batch(&b)) return;
      const auto now = std::chrono::steady_clock::now();
      // A batch below max_batch may flush only once its OLDEST entry has
      // waited out max_wait (stop() short-circuits are exempt).
      if (!stopping.load() && b.count < kMaxBatch &&
          now - b.entries[0].enqueued < kWait / 2) {
        ++early;
      }
      for (std::size_t i = 0; i < b.count; ++i) {
        for (TokenState* w : b.entries[i].waiters) w->resolve(0);
        b.entries[i].waiters.clear();
      }
      popped.fetch_add(static_cast<int>(b.count));
    }
  };
  std::thread w1(worker), w2(worker);

  int submitted = 0;
  std::vector<SubmitToken> tokens;
  const auto submit = [&](std::uint32_t node) {
    TokenState* s = pool.acquire();
    tokens.emplace_back(s);
    q.submit(node, Sha256Digest{}, s);
    ++submitted;
  };
  for (int round = 0; round < 8; ++round) {
    // A full burst: one worker pops it immediately; the other may be left
    // parked inside its wait with the burst's (now stale) deadline.
    for (std::uint32_t i = 0; i < kMaxBatch; ++i) {
      submit(static_cast<std::uint32_t>(round * 100 + i));
    }
    // A fresh entry arriving well before the stale deadline expires: the
    // parked worker must give it a full max_wait, not the leftover.
    std::this_thread::sleep_for(kWait * 3 / 5);
    submit(static_cast<std::uint32_t>(round * 100 + 50));
    while (popped.load() < submitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  stopping.store(true);
  q.stop();
  w1.join();
  w2.join();
  EXPECT_EQ(early.load(), 0);
}

}  // namespace
}  // namespace gv
