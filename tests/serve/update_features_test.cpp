// Live-graph serving: update_features swaps the backbone snapshot and
// invalidates cached labels by feature-row digest.
#include <gtest/gtest.h>

#include "serve/label_cache.hpp"
#include "serve/vault_server.hpp"
#include "serve_test_util.hpp"

namespace gv {
namespace {

/// Copy of `features` with every stored value of `row` scaled (changes the
/// row's digest without touching sparsity or other rows).
CsrMatrix scale_row(const CsrMatrix& features, std::uint32_t row, float factor) {
  CsrMatrix out = features;
  auto& vals = out.mutable_values();
  for (std::int64_t i = out.row_ptr()[row]; i < out.row_ptr()[row + 1]; ++i) {
    vals[i] *= factor;
  }
  return out;
}

/// First row at or after `from` that stores at least one feature (scaling an
/// all-zero row would not change its digest).
std::uint32_t nonempty_row(const CsrMatrix& features, std::uint32_t from) {
  for (std::uint32_t r = from; r < features.rows(); ++r) {
    if (features.row_nnz(r) > 0) return r;
  }
  throw Error("no nonempty feature row found");
}

TEST(LabelCache, InvalidateStaleEvictsOnlyChangedRows) {
  const Dataset ds = serve_dataset(55);
  LabelCache cache(16);
  const std::uint32_t changed = nonempty_row(ds.features, 3);
  const std::uint32_t untouched = nonempty_row(ds.features, changed + 1);
  cache.put(changed, feature_row_digest(ds.features, changed), 0);
  cache.put(untouched, feature_row_digest(ds.features, untouched), 1);

  const CsrMatrix updated = scale_row(ds.features, changed, 2.0f);
  EXPECT_EQ(cache.invalidate_stale(updated), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(
      cache.get(changed, feature_row_digest(updated, changed)).has_value());
  EXPECT_TRUE(
      cache.get(untouched, feature_row_digest(updated, untouched)).has_value());
}

TEST(VaultServer, UpdateFeaturesServesLabelsOfNewSnapshot) {
  const Dataset ds = serve_dataset(56);
  TrainedVault tv = serve_vault(ds);

  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait = std::chrono::microseconds(500);
  cfg.cache_capacity = 0;
  VaultServer server(ds, tv, {}, cfg);

  CsrMatrix mutated = ds.features;
  for (auto& v : mutated.mutable_values()) v *= 0.25f;
  const auto new_truth = tv.predict_rectified(mutated);

  server.update_features(mutated);
  for (std::uint32_t v = 0; v < 16; ++v) {
    EXPECT_EQ(server.query(v), new_truth[v]) << "node " << v;
  }
  EXPECT_EQ(server.stats().feature_updates, 1u);
}

TEST(VaultServer, UpdateFeaturesInvalidatesChangedCacheEntriesOnly) {
  const Dataset ds = serve_dataset(57);
  TrainedVault tv = serve_vault(ds);
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait = std::chrono::microseconds(500);
  cfg.cache_capacity = 64;
  VaultServer server(ds, std::move(tv), {}, cfg);

  const std::uint32_t changed = nonempty_row(ds.features, 4);
  const std::uint32_t untouched = nonempty_row(ds.features, changed + 1);
  server.query(changed);
  server.query(untouched);
  const auto misses_before = server.stats().cache_misses;

  server.update_features(scale_row(ds.features, changed, 3.0f));
  // The untouched node still hits the cache; the changed node misses and
  // recomputes against the new snapshot.
  server.query(untouched);
  EXPECT_EQ(server.stats().cache_misses, misses_before);
  server.query(changed);
  EXPECT_EQ(server.stats().cache_misses, misses_before + 1);
}

TEST(VaultServer, QueuedRequestsResolveAgainstNewSnapshot) {
  const Dataset ds = serve_dataset(58);
  TrainedVault tv = serve_vault(ds);
  ServerConfig cfg;
  cfg.max_batch = 1024;
  cfg.max_wait = std::chrono::seconds(30);
  cfg.cache_capacity = 0;
  VaultServer server(ds, tv, {}, cfg);

  CsrMatrix mutated = ds.features;
  for (auto& v : mutated.mutable_values()) v *= 0.25f;
  const auto new_truth = tv.predict_rectified(mutated);

  auto fut = server.submit(6);  // parked in the open batch
  server.update_features(mutated);
  server.flush();
  // The batch executed after the swap: it pinned the NEW snapshot.
  EXPECT_EQ(fut.get(), new_truth[6]);
}

TEST(VaultServer, RejectsShapeChangingUpdates) {
  const Dataset ds = serve_dataset(59);
  VaultServer server(ds, serve_vault(ds), {}, {});
  CsrMatrix wrong_rows(CsrMatrix::from_coo(ds.num_nodes() + 1, ds.feature_dim(), {}));
  EXPECT_THROW(server.update_features(wrong_rows), Error);
  CsrMatrix wrong_cols(CsrMatrix::from_coo(ds.num_nodes(), ds.feature_dim() + 5, {}));
  EXPECT_THROW(server.update_features(wrong_cols), Error);
}

}  // namespace
}  // namespace gv
