// Multi-tenant registry: EPC-aware admission, per-tenant enclave identity,
// and sealed-artifact isolation between tenants.
#include "serve/registry.hpp"

#include <gtest/gtest.h>

#include "serve_test_util.hpp"

namespace gv {
namespace {

ServerConfig tiny_server_config() {
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait = std::chrono::microseconds(500);
  return cfg;
}

TEST(VaultRegistry, AdmitsTenantsAndServesThemIndependently) {
  const Dataset ds_a = serve_dataset(41);
  const Dataset ds_b = serve_dataset(42, /*nodes=*/220);
  TrainedVault tv_a = serve_vault(ds_a, RectifierKind::kParallel, 1);
  TrainedVault tv_b = serve_vault(ds_b, RectifierKind::kSeries, 2);
  const auto truth_a = tv_a.predict_rectified(ds_a.features);
  const auto truth_b = tv_b.predict_rectified(ds_b.features);

  VaultRegistry registry;
  EXPECT_EQ(registry.admit("alice", ds_a, std::move(tv_a), tiny_server_config())
                .decision,
            AdmissionDecision::kAdmitted);
  EXPECT_EQ(registry.admit("bob", ds_b, std::move(tv_b), tiny_server_config())
                .decision,
            AdmissionDecision::kAdmitted);
  ASSERT_TRUE(registry.has("alice"));
  ASSERT_TRUE(registry.has("bob"));

  EXPECT_EQ(registry.server("alice")->query(10), truth_a[10]);
  EXPECT_EQ(registry.server("bob")->query(10), truth_b[10]);
  EXPECT_EQ(registry.server("alice")->query(77), truth_a[77]);

  // Distinct enclave identities even though both run the same code base.
  const auto& enc_a = registry.server("alice")->deployment().enclave();
  const auto& enc_b = registry.server("bob")->deployment().enclave();
  EXPECT_NE(to_hex(enc_a.measurement()), to_hex(enc_b.measurement()));
}

TEST(VaultRegistry, TenantsSharingADatasetGetDistinctIdentities) {
  const Dataset ds = serve_dataset(43);
  VaultRegistry registry;
  registry.admit("t1", ds, serve_vault(ds, RectifierKind::kParallel, 1),
                 tiny_server_config());
  registry.admit("t2", ds, serve_vault(ds, RectifierKind::kParallel, 1),
                 tiny_server_config());
  EXPECT_NE(to_hex(registry.server("t1")->deployment().enclave().measurement()),
            to_hex(registry.server("t2")->deployment().enclave().measurement()));
}

TEST(VaultRegistry, RejectsDuplicateTenantNames) {
  const Dataset ds = serve_dataset(44);
  VaultRegistry registry;
  registry.admit("dup", ds, serve_vault(ds), tiny_server_config());
  const auto r = registry.admit("dup", ds, serve_vault(ds), tiny_server_config());
  EXPECT_EQ(r.decision, AdmissionDecision::kRejected);
}

TEST(VaultRegistry, QueuesTenantsBeyondEpcBudgetAndPromotesOnRemove) {
  const Dataset ds = serve_dataset(45);
  TrainedVault probe = serve_vault(ds);
  const std::size_t per_tenant = VaultRegistry::estimate_enclave_bytes(probe, ds);

  RegistryConfig rcfg;
  rcfg.epc_budget_fraction = 1.0;
  // Room for one tenant, not two.
  rcfg.cost_model.epc_bytes = per_tenant + per_tenant / 2;
  VaultRegistry registry(rcfg);

  EXPECT_EQ(registry.admit("first", ds, std::move(probe), tiny_server_config())
                .decision,
            AdmissionDecision::kAdmitted);
  const auto queued =
      registry.admit("second", ds, serve_vault(ds), tiny_server_config());
  EXPECT_EQ(queued.decision, AdmissionDecision::kQueued);
  EXPECT_FALSE(registry.has("second"));
  ASSERT_EQ(registry.queued().size(), 1u);
  EXPECT_EQ(registry.queued()[0], "second");

  // Evicting the live tenant promotes the queued one.
  EXPECT_TRUE(registry.remove("first"));
  EXPECT_TRUE(registry.has("second"));
  EXPECT_TRUE(registry.queued().empty());
  // And the promoted tenant actually serves.
  const auto truth = registry.server("second")->deployment().vault()
                         .predict_rectified(ds.features);
  EXPECT_EQ(registry.server("second")->query(5), truth[5]);
}

TEST(VaultRegistry, RejectsWhenQueueingDisabled) {
  const Dataset ds = serve_dataset(46);
  TrainedVault probe = serve_vault(ds);
  RegistryConfig rcfg;
  rcfg.epc_budget_fraction = 1.0;
  rcfg.cost_model.epc_bytes =
      VaultRegistry::estimate_enclave_bytes(probe, ds) + 1024;
  rcfg.queue_when_full = false;
  VaultRegistry registry(rcfg);
  registry.admit("only", ds, std::move(probe), tiny_server_config());
  EXPECT_EQ(registry.admit("extra", ds, serve_vault(ds), tiny_server_config())
                .decision,
            AdmissionDecision::kRejected);
}

TEST(VaultRegistry, RejectsTenantLargerThanWholeBudget) {
  const Dataset ds = serve_dataset(47);
  TrainedVault tv = serve_vault(ds);
  RegistryConfig rcfg;
  rcfg.cost_model.epc_bytes = 1024;  // absurdly small platform
  VaultRegistry registry(rcfg);
  const auto r = registry.admit("huge", ds, std::move(tv), tiny_server_config());
  EXPECT_EQ(r.decision, AdmissionDecision::kRejected);
  EXPECT_GT(r.estimated_bytes, registry.epc_budget());
}

TEST(VaultRegistry, CrossTenantUnsealFails) {
  const Dataset ds = serve_dataset(48);
  VaultRegistry registry;
  registry.admit("alice", ds, serve_vault(ds, RectifierKind::kParallel, 1),
                 tiny_server_config());
  registry.admit("bob", ds, serve_vault(ds, RectifierKind::kParallel, 2),
                 tiny_server_config());

  auto& alice = registry.server("alice")->deployment();
  auto& bob = registry.server("bob")->deployment();
  ASSERT_FALSE(alice.sealed_weights().ciphertext.empty());
  // Alice's enclave can unseal its own rectifier weights...
  EXPECT_NO_THROW(alice.enclave().unseal(alice.sealed_weights()));
  // ...but Bob's enclave must reject them (different measurement => different
  // sealing key), and vice versa.
  EXPECT_THROW(bob.enclave().unseal(alice.sealed_weights()), Error);
  EXPECT_THROW(alice.enclave().unseal(bob.sealed_weights()), Error);
}

TEST(VaultRegistry, TamperedSealedWeightsAreRejected) {
  const Dataset ds = serve_dataset(49);
  VaultRegistry registry;
  registry.admit("alice", ds, serve_vault(ds), tiny_server_config());
  auto& dep = registry.server("alice")->deployment();
  SealedBlob tampered = dep.sealed_weights();
  ASSERT_FALSE(tampered.ciphertext.empty());
  tampered.ciphertext[tampered.ciphertext.size() / 2] ^= 0x01;
  EXPECT_THROW(dep.enclave().unseal(tampered), Error);
}

TEST(VaultRegistry, RemoveUnknownTenantReturnsFalse) {
  VaultRegistry registry;
  EXPECT_FALSE(registry.remove("ghost"));
  EXPECT_THROW(registry.server("ghost"), Error);
}

}  // namespace
}  // namespace gv
