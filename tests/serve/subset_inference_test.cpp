// Node-subset batched inference: the serving path must produce exactly the
// labels the all-nodes path produces, for every rectifier communication
// scheme, while charging fewer modeled SGX costs per request when batched.
#include <gtest/gtest.h>

#include <numeric>

#include "core/deployment.hpp"
#include "serve_test_util.hpp"

namespace gv {
namespace {

std::vector<std::uint32_t> gather(const std::vector<std::uint32_t>& all,
                                  const std::vector<std::uint32_t>& nodes) {
  std::vector<std::uint32_t> out;
  out.reserve(nodes.size());
  for (const auto v : nodes) out.push_back(all[v]);
  return out;
}

class SubsetForwardTest : public ::testing::TestWithParam<RectifierKind> {};

TEST_P(SubsetForwardTest, MatchesFullForwardOnEveryScheme) {
  const Dataset ds = serve_dataset(21);
  TrainedVault tv = serve_vault(ds, GetParam());
  const auto outputs = tv.backbone_outputs(ds.features);
  const Matrix full = tv.rectifier->forward(outputs, /*training=*/false);

  const std::vector<std::uint32_t> nodes = {0, 3, 17, 42, 3, 199};  // dup + unsorted
  std::vector<std::size_t> layer_rows;
  const Matrix sub = tv.rectifier->forward_subset(outputs, nodes, &layer_rows);

  ASSERT_EQ(sub.rows(), nodes.size());
  ASSERT_EQ(sub.cols(), full.cols());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t c = 0; c < full.cols(); ++c) {
      EXPECT_NEAR(sub(i, c), full(nodes[i], c), 1e-4f)
          << "node " << nodes[i] << " col " << c;
    }
  }
  // The frontier grows towards the input layer and never exceeds n.
  ASSERT_EQ(layer_rows.size(), tv.rectifier->num_layers());
  EXPECT_EQ(layer_rows.back(), 5u);  // unique queries
  for (std::size_t k = 0; k + 1 < layer_rows.size(); ++k) {
    EXPECT_GE(layer_rows[k], layer_rows[k + 1]);
    EXPECT_LE(layer_rows[k], ds.num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SubsetForwardTest,
                         ::testing::Values(RectifierKind::kParallel,
                                           RectifierKind::kCascaded,
                                           RectifierKind::kSeries));

TEST(SubsetInference, PredictRectifiedSubsetMatchesFullPrediction) {
  const Dataset ds = serve_dataset(22);
  TrainedVault tv = serve_vault(ds);
  const auto full = tv.predict_rectified(ds.features);
  std::vector<std::uint32_t> nodes(ds.num_nodes());
  std::iota(nodes.begin(), nodes.end(), 0u);
  EXPECT_EQ(tv.predict_rectified_subset(ds.features, nodes), full);
}

TEST(SubsetInference, DeploymentSubsetMatchesPlainPath) {
  const Dataset ds = serve_dataset(23);
  TrainedVault tv = serve_vault(ds, RectifierKind::kSeries);
  const auto plain = tv.predict_rectified(ds.features);
  VaultDeployment dep(ds, std::move(tv), {});
  const std::vector<std::uint32_t> nodes = {5, 0, 88, 120};
  EXPECT_EQ(dep.infer_labels_subset(ds.features, nodes), gather(plain, nodes));
}

TEST(SubsetInference, EmptySubsetIsFreeAndEmpty) {
  const Dataset ds = serve_dataset(24);
  VaultDeployment dep(ds, serve_vault(ds), {});
  dep.reset_meter();
  EXPECT_TRUE(dep.infer_labels_batched(dep.run_backbone(ds.features), {}).empty());
  EXPECT_EQ(dep.meter().ecalls, 0u);
}

TEST(SubsetInference, BatchedEcallsChargeLessThanUnbatched) {
  const Dataset ds = serve_dataset(25);
  TrainedVault tv = serve_vault(ds);
  VaultDeployment dep(ds, std::move(tv), {});
  const auto outputs = dep.run_backbone(ds.features);

  const std::vector<std::uint32_t> nodes = {1, 9, 33, 57, 90, 121, 160, 201};
  // Unbatched: one ecall (and one embedding push) per request.
  dep.reset_meter();
  std::vector<std::uint32_t> unbatched;
  for (const auto v : nodes) {
    const std::vector<std::uint32_t> one = {v};
    unbatched.push_back(dep.infer_labels_batched(outputs, one)[0]);
  }
  const std::uint64_t unbatched_ecalls = dep.meter().ecalls;
  const std::uint64_t unbatched_bytes = dep.meter().bytes_in;
  const double unbatched_transfer =
      dep.meter().transfer_seconds(dep.cost_model());

  // Batched: ONE ecall for the whole batch.
  dep.reset_meter();
  const auto batched = dep.infer_labels_batched(outputs, nodes);
  EXPECT_EQ(batched, unbatched);
  EXPECT_EQ(dep.meter().ecalls, 1u);
  EXPECT_EQ(unbatched_ecalls, nodes.size());
  EXPECT_EQ(dep.meter().bytes_in * nodes.size(), unbatched_bytes);
  // The modeled transition+copy time is the Sec. III-C cost batching removes.
  EXPECT_LT(dep.meter().transfer_seconds(dep.cost_model()),
            unbatched_transfer / 4.0);
}

}  // namespace
}  // namespace gv
