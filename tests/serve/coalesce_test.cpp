// Duplicate in-flight queries coalesce onto one micro-batch slot: one
// share of one ecall, result fanned out to every waiting token.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/batch_queue.hpp"
#include "serve/submit_token.hpp"
#include "serve/vault_server.hpp"
#include "serve_test_util.hpp"

namespace gv {
namespace {

// One pooled state per submission, tokens kept alive for the test's scope.
struct TokenSource {
  TokenPool pool;
  std::vector<SubmitToken> tokens;
  TokenState* next() {
    TokenState* s = pool.acquire();
    tokens.emplace_back(s);
    return s;
  }
};

TEST(MicroBatchQueue, CoalescesSameNodeSameDigest) {
  MicroBatchQueue q(64, std::chrono::seconds(30));
  TokenSource src;
  Sha256Digest d{};
  EXPECT_FALSE(q.submit(5, d, src.next()));
  EXPECT_TRUE(q.submit(5, d, src.next()));
  EXPECT_FALSE(q.submit(6, d, src.next()));
  EXPECT_EQ(q.pending(), 2u);
  q.flush();
  MicroBatchQueue::Batch batch;
  ASSERT_TRUE(q.next_batch(&batch));
  ASSERT_EQ(batch.count, 2u);
  EXPECT_EQ(batch.entries[0].node, 5u);
  EXPECT_EQ(batch.entries[0].waiters.size(), 2u);
  EXPECT_EQ(batch.entries[1].waiters.size(), 1u);
  for (std::size_t i = 0; i < batch.count; ++i) {
    for (TokenState* w : batch.entries[i].waiters) w->resolve(0);
  }
}

TEST(MicroBatchQueue, DigestMismatchDoesNotCoalesce) {
  MicroBatchQueue q(64, std::chrono::seconds(30));
  TokenSource src;
  Sha256Digest old_digest{};
  Sha256Digest new_digest{};
  new_digest[0] = 1;  // features changed between the two submissions
  EXPECT_FALSE(q.submit(5, old_digest, src.next()));
  EXPECT_FALSE(q.submit(5, new_digest, src.next()));
  // The newest entry owns the coalescing slot.
  EXPECT_TRUE(q.submit(5, new_digest, src.next()));
  EXPECT_EQ(q.pending(), 2u);
  q.stop();  // fail the queued waiters so their states recycle
}

TEST(MicroBatchQueue, SubmitAfterStopThrows) {
  MicroBatchQueue q(4, std::chrono::microseconds(100));
  TokenPool pool;
  q.stop();
  TokenState* s = pool.acquire();
  EXPECT_THROW(q.submit(1, Sha256Digest{}, s), Error);
  s->abandon();
  MicroBatchQueue::Batch b;
  EXPECT_FALSE(q.next_batch(&b));
}

TEST(VaultServer, DuplicateInFlightQueriesShareOneBatchSlot) {
  const Dataset ds = serve_dataset(51);
  TrainedVault tv = serve_vault(ds);
  const auto truth = tv.predict_rectified(ds.features);
  ServerConfig cfg;
  cfg.max_batch = 1024;
  cfg.max_wait = std::chrono::seconds(30);  // only flush() releases
  cfg.cache_capacity = 0;
  VaultServer server(ds, std::move(tv), {}, cfg);

  auto f1 = server.submit(9);
  auto f2 = server.submit(9);
  auto f3 = server.submit(9);
  auto f4 = server.submit(10);
  EXPECT_EQ(server.pending(), 2u);  // two slots for four requests
  server.flush();
  EXPECT_EQ(f1.get(), truth[9]);
  EXPECT_EQ(f2.get(), truth[9]);
  EXPECT_EQ(f3.get(), truth[9]);
  EXPECT_EQ(f4.get(), truth[10]);

  const auto s = server.stats();
  EXPECT_EQ(s.requests, 4u);
  EXPECT_EQ(s.completed, 4u);  // every waiter resolved
  EXPECT_EQ(s.coalesced, 2u);
  EXPECT_EQ(s.batches, 1u);   // one flush, one ecall
}

TEST(VaultServer, CoalescedStormCostsOneSlotPerFlush) {
  const Dataset ds = serve_dataset(52);
  TrainedVault tv = serve_vault(ds);
  const auto truth = tv.predict_rectified(ds.features);
  ServerConfig cfg;
  cfg.max_batch = 1024;
  cfg.max_wait = std::chrono::seconds(30);
  cfg.cache_capacity = 0;
  VaultServer server(ds, std::move(tv), {}, cfg);

  // A hot-node storm from several threads: everything coalesces while the
  // batch is open.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<SubmitToken> futs[kThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) futs[t].push_back(server.submit(7));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(server.pending(), 1u);
  server.flush();
  for (int t = 0; t < kThreads; ++t) {
    for (auto& f : futs[t]) EXPECT_EQ(f.get(), truth[7]);
  }
  const auto s = server.stats();
  EXPECT_EQ(s.coalesced, static_cast<std::uint64_t>(kThreads * kPerThread - 1));
  EXPECT_EQ(s.mean_batch_size, static_cast<double>(kThreads * kPerThread));
}

}  // namespace
}  // namespace gv
