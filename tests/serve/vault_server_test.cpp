#include "serve/vault_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "serve_test_util.hpp"

namespace gv {
namespace {

ServerConfig quick_config(std::size_t max_batch, std::size_t cache = 0) {
  ServerConfig cfg;
  cfg.max_batch = max_batch;
  cfg.max_wait = std::chrono::microseconds(500);
  cfg.cache_capacity = cache;
  return cfg;
}

TEST(VaultServer, BatchedLabelsMatchPerNodeInference) {
  const Dataset ds = serve_dataset(31);
  TrainedVault tv = serve_vault(ds);
  const auto truth = tv.predict_rectified(ds.features);

  VaultServer server(ds, std::move(tv), {}, quick_config(16));
  std::vector<std::uint32_t> nodes(ds.num_nodes());
  std::iota(nodes.begin(), nodes.end(), 0u);
  auto futs = server.submit_many(nodes);
  server.flush();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    EXPECT_EQ(futs[i].get(), truth[i]) << "node " << i;
  }
  const auto s = server.stats();
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(ds.num_nodes()));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(ds.num_nodes()));
  EXPECT_GT(s.batches, 0u);
  EXPECT_GT(s.ecalls, 0u);
  EXPECT_GT(s.requests_per_second, 0.0);
}

TEST(VaultServer, DeadlineFlushesPartialBatch) {
  const Dataset ds = serve_dataset(32);
  TrainedVault tv = serve_vault(ds);
  const auto truth = tv.predict_rectified(ds.features);
  // max_batch far above what we submit: only the deadline can flush.
  ServerConfig cfg;
  cfg.max_batch = 1024;
  cfg.max_wait = std::chrono::microseconds(2000);
  cfg.cache_capacity = 0;
  VaultServer server(ds, std::move(tv), {}, cfg);

  auto fut = server.submit(42);
  EXPECT_TRUE(fut.wait_for(std::chrono::seconds(10)));
  EXPECT_EQ(fut.get(), truth[42]);
  EXPECT_EQ(server.stats().batches, 1u);
}

TEST(VaultServer, MaxBatchFlushesWithoutDeadline) {
  const Dataset ds = serve_dataset(33);
  TrainedVault tv = serve_vault(ds);
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait = std::chrono::seconds(30);  // deadline effectively never fires
  cfg.cache_capacity = 0;
  VaultServer server(ds, std::move(tv), {}, cfg);

  const std::vector<std::uint32_t> nodes = {1, 2, 3, 4};
  auto futs = server.submit_many(nodes);
  for (auto& f : futs) {
    EXPECT_TRUE(f.wait_for(std::chrono::seconds(10)));
    f.get();
  }
  const auto s = server.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 4.0);
}

TEST(VaultServer, CacheShortCircuitsRepeatQueries) {
  const Dataset ds = serve_dataset(34);
  VaultServer server(ds, serve_vault(ds), {}, quick_config(8, /*cache=*/64));

  const std::uint32_t label = server.query(7);
  const auto ecalls_after_first = server.stats().ecalls;
  EXPECT_EQ(server.query(7), label);
  EXPECT_EQ(server.query(7), label);
  const auto s = server.stats();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_NEAR(s.cache_hit_rate, 2.0 / 3.0, 1e-9);
  // Hits never reach the enclave.
  EXPECT_EQ(s.ecalls, ecalls_after_first);
}

TEST(VaultServer, LruEvictionBoundsCacheSize) {
  const Dataset ds = serve_dataset(35);
  VaultServer server(ds, serve_vault(ds), {}, quick_config(8, /*cache=*/2));
  server.query(1);
  server.query(2);
  server.query(3);  // evicts node 1
  const auto misses_before = server.stats().cache_misses;
  server.query(1);  // must miss again
  EXPECT_EQ(server.stats().cache_misses, misses_before + 1);
}

TEST(VaultServer, ConcurrentSubmittersGetConsistentLabels) {
  const Dataset ds = serve_dataset(36);
  TrainedVault tv = serve_vault(ds);
  const auto truth = tv.predict_rectified(ds.features);
  ServerConfig cfg = quick_config(8, /*cache=*/128);
  cfg.worker_threads = 2;
  VaultServer server(ds, std::move(tv), {}, cfg);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto node =
            static_cast<std::uint32_t>((t * 71 + i * 13) % ds.num_nodes());
        if (server.query(node) != truth[node]) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const auto s = server.stats();
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GE(s.p95_latency_ms, s.p50_latency_ms);
  EXPECT_GE(s.p99_latency_ms, s.p95_latency_ms);
}

TEST(VaultServer, DestructorFailsPendingRequestsWithShutdownError) {
  const Dataset ds = serve_dataset(37);
  TrainedVault tv = serve_vault(ds);
  SubmitToken fut;
  {
    ServerConfig cfg;
    cfg.max_batch = 1024;
    cfg.max_wait = std::chrono::seconds(30);
    VaultServer server(ds, std::move(tv), {}, cfg);
    fut = server.submit(3);
    // Server goes out of scope with the request still queued: the waiter
    // gets an explicit shutdown error — never a broken_promise, and never a
    // silent drain through enclave ecalls mid-teardown.
  }
  try {
    fut.get();
    FAIL() << "expected a shutdown error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("shutting down"), std::string::npos)
        << e.what();
  }
}

TEST(VaultServer, RejectsOutOfRangeNode) {
  const Dataset ds = serve_dataset(38);
  VaultServer server(ds, serve_vault(ds), {}, quick_config(4));
  EXPECT_THROW(server.submit(ds.num_nodes()), Error);
}

}  // namespace
}  // namespace gv
