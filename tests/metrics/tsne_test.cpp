#include "metrics/tsne.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "metrics/silhouette.hpp"

namespace gv {
namespace {

/// Three Gaussian blobs in 10-D.
Matrix blobs(std::size_t per_cluster, std::vector<std::uint32_t>& labels, Rng& rng) {
  Matrix x(3 * per_cluster, 10);
  labels.clear();
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const std::size_t r = c * per_cluster + i;
      labels.push_back(static_cast<std::uint32_t>(c));
      for (std::size_t d = 0; d < 10; ++d) {
        x(r, d) = static_cast<float>(rng.normal(c == d % 3 ? 4.0 : 0.0, 0.5));
      }
    }
  }
  return x;
}

TEST(Tsne, OutputShapeIsNx2) {
  Rng rng(1);
  std::vector<std::uint32_t> labels;
  const Matrix x = blobs(15, labels, rng);
  TsneConfig cfg;
  cfg.iterations = 50;
  cfg.perplexity = 10.0;
  const Matrix y = tsne_embed(x, cfg);
  EXPECT_EQ(y.rows(), x.rows());
  EXPECT_EQ(y.cols(), 2u);
}

TEST(Tsne, PreservesClusterStructure) {
  Rng rng(2);
  std::vector<std::uint32_t> labels;
  const Matrix x = blobs(25, labels, rng);
  TsneConfig cfg;
  cfg.iterations = 250;
  cfg.perplexity = 15.0;
  const Matrix y = tsne_embed(x, cfg);
  // Clusters separated in input space must stay separated in 2-D.
  EXPECT_GT(silhouette_score(y, labels), 0.25);
}

TEST(Tsne, DeterministicGivenSeed) {
  Rng rng(3);
  std::vector<std::uint32_t> labels;
  const Matrix x = blobs(10, labels, rng);
  TsneConfig cfg;
  cfg.iterations = 40;
  cfg.perplexity = 8.0;
  const Matrix y1 = tsne_embed(x, cfg);
  const Matrix y2 = tsne_embed(x, cfg);
  EXPECT_TRUE(y1.allclose(y2, 1e-5f));
}

TEST(Tsne, OutputIsCentered) {
  Rng rng(4);
  std::vector<std::uint32_t> labels;
  const Matrix x = blobs(10, labels, rng);
  TsneConfig cfg;
  cfg.iterations = 30;
  cfg.perplexity = 8.0;
  const Matrix y = tsne_embed(x, cfg);
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < y.rows(); ++i) {
    mx += y(i, 0);
    my += y(i, 1);
  }
  EXPECT_NEAR(mx / y.rows(), 0.0, 1e-3);
  EXPECT_NEAR(my / y.rows(), 0.0, 1e-3);
}

TEST(Tsne, TooFewPointsThrows) {
  Matrix x(3, 4);
  EXPECT_THROW(tsne_embed(x), Error);
}

TEST(Tsne, PerplexityOutOfRangeThrows) {
  Matrix x(10, 4, 1.0f);
  TsneConfig cfg;
  cfg.perplexity = 50.0;  // >= n
  EXPECT_THROW(tsne_embed(x, cfg), Error);
}

}  // namespace
}  // namespace gv
