#include "metrics/silhouette.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gv {
namespace {

/// Two tight, well-separated clusters.
Matrix separated_clusters() {
  Matrix x(8, 2);
  for (int i = 0; i < 4; ++i) {
    x(i, 0) = 0.0f + 0.01f * i;
    x(i, 1) = 0.0f;
    x(4 + i, 0) = 10.0f + 0.01f * i;
    x(4 + i, 1) = 10.0f;
  }
  return x;
}

TEST(Silhouette, NearOneForSeparatedClusters) {
  const std::vector<std::uint32_t> labels = {0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_GT(silhouette_score(separated_clusters(), labels), 0.95);
}

TEST(Silhouette, NegativeForSwappedLabels) {
  const std::vector<std::uint32_t> labels = {0, 0, 1, 1, 1, 1, 0, 0};
  EXPECT_LT(silhouette_score(separated_clusters(), labels), 0.0);
}

TEST(Silhouette, NearZeroForRandomLabelsOnUniformData) {
  Rng rng(1);
  Matrix x(100, 3);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  std::vector<std::uint32_t> labels(100);
  for (auto& l : labels) l = static_cast<std::uint32_t>(rng.uniform_index(4));
  const double s = silhouette_score(x, labels);
  EXPECT_NEAR(s, 0.0, 0.1);
}

TEST(Silhouette, SubsampleApproximatesFull) {
  Rng rng(2);
  Matrix x(400, 2);
  std::vector<std::uint32_t> labels(400);
  for (std::size_t i = 0; i < 400; ++i) {
    labels[i] = static_cast<std::uint32_t>(i % 2);
    x(i, 0) = static_cast<float>(labels[i] * 5.0 + rng.normal(0.0, 0.5));
    x(i, 1) = static_cast<float>(rng.normal(0.0, 0.5));
  }
  const double full = silhouette_score(x, labels);
  const double sub = silhouette_score(x, labels, 150);
  EXPECT_NEAR(full, sub, 0.08);
}

TEST(Silhouette, SubsampleIsDeterministic) {
  Rng rng(3);
  Matrix x(200, 2);
  std::vector<std::uint32_t> labels(200);
  for (std::size_t i = 0; i < 200; ++i) {
    labels[i] = static_cast<std::uint32_t>(i % 3);
    x(i, 0) = static_cast<float>(rng.uniform(-1, 1));
    x(i, 1) = static_cast<float>(rng.uniform(-1, 1));
  }
  EXPECT_DOUBLE_EQ(silhouette_score(x, labels, 50, 9),
                   silhouette_score(x, labels, 50, 9));
}

TEST(Silhouette, MismatchedLabelsThrow) {
  Matrix x(4, 2);
  EXPECT_THROW(silhouette_score(x, {0, 1}), Error);
}

TEST(Silhouette, SinglePointThrows) {
  Matrix x(1, 2);
  EXPECT_THROW(silhouette_score(x, {0}), Error);
}

}  // namespace
}  // namespace gv
