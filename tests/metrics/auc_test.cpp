#include "metrics/auc.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gv {
namespace {

TEST(Auc, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(roc_auc({0.1f, 0.2f, 0.8f, 0.9f}, {0, 0, 1, 1}), 1.0);
}

TEST(Auc, PerfectlyInverted) {
  EXPECT_DOUBLE_EQ(roc_auc({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}), 0.0);
}

TEST(Auc, AllTiedScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(roc_auc({0.5f, 0.5f, 0.5f, 0.5f}, {0, 1, 0, 1}), 0.5);
}

TEST(Auc, SingleClassGivesHalf) {
  EXPECT_DOUBLE_EQ(roc_auc({0.1f, 0.9f}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc({0.1f, 0.9f}, {0, 0}), 0.5);
}

TEST(Auc, KnownMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8>0.6), (0.8>0.2), (0.4<0.6), (0.4>0.2) -> 3/4.
  EXPECT_DOUBLE_EQ(roc_auc({0.8f, 0.4f, 0.6f, 0.2f}, {1, 1, 0, 0}), 0.75);
}

TEST(Auc, TieBetweenClassesCountsHalf) {
  // pos {0.5}, neg {0.5, 0.1}: pairs -> tie (0.5) + win (1.0) = 0.75.
  EXPECT_DOUBLE_EQ(roc_auc({0.5f, 0.5f, 0.1f}, {1, 0, 0}), 0.75);
}

TEST(Auc, SizeMismatchThrows) {
  EXPECT_THROW(roc_auc({0.5f}, {0, 1}), Error);
}

TEST(Auc, RandomScoresApproachHalf) {
  Rng rng(42);
  std::vector<float> scores(20000);
  std::vector<std::uint8_t> labels(20000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<float>(rng.uniform());
    labels[i] = rng.bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_NEAR(roc_auc(scores, labels), 0.5, 0.02);
}

TEST(Auc, MonotoneTransformInvariant) {
  Rng rng(7);
  std::vector<float> scores(500);
  std::vector<std::uint8_t> labels(500);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    labels[i] = rng.bernoulli(0.4) ? 1 : 0;
    scores[i] = static_cast<float>(rng.normal(labels[i] ? 1.0 : 0.0, 1.0));
  }
  std::vector<float> transformed = scores;
  for (auto& s : transformed) s = 3.0f * s + 11.0f;  // strictly increasing
  EXPECT_NEAR(roc_auc(scores, labels), roc_auc(transformed, labels), 1e-9);
}

}  // namespace
}  // namespace gv
