// ShardedVaultServer + registry sharded admission: micro-batches split by
// ownership, coalescing/caching on the sharded path, feature updates, and
// the headline admission behavior — a tenant too big for one platform is
// admitted as K shards across the fleet and actually serves.
#include <gtest/gtest.h>

#include <numeric>

#include "serve/registry.hpp"
#include "../serve/serve_test_util.hpp"
#include "shard_test_util.hpp"

namespace gv {
namespace {

TrainedVault quick_vault(const Dataset& ds, std::uint64_t seed = 29) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {16, 8}, {16, 8}, 0.4f};
  cfg.backbone_train.epochs = 25;
  cfg.rectifier_train.epochs = 25;
  cfg.seed = seed;
  return train_vault(ds, cfg);
}

ShardedServerConfig quick_config(std::size_t max_batch, std::size_t cache = 0) {
  ShardedServerConfig cfg;
  cfg.server.max_batch = max_batch;
  cfg.server.max_wait = std::chrono::microseconds(500);
  cfg.server.cache_capacity = cache;
  return cfg;
}

TEST(ShardedVaultServer, BatchedQueriesMatchUnshardedTruth) {
  const Dataset ds = serve_dataset(91);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
  const auto truth = ShardedVaultDeployment(ds, tv, plan).infer_labels(ds.features);

  ShardedVaultServer server(ds, std::move(tv), plan, {}, quick_config(16));
  std::vector<std::uint32_t> nodes(ds.num_nodes());
  std::iota(nodes.begin(), nodes.end(), 0u);
  auto futs = server.submit_many(nodes);
  server.flush();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    EXPECT_EQ(futs[i].get(), truth[i]) << "node " << i;
  }
  const auto s = server.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(ds.num_nodes()));
  EXPECT_GT(s.batches, 0u);
  // Batches touched several shards; the router balanced across them.
  const auto per_shard = server.router().per_shard_batches();
  std::size_t active = 0;
  for (const auto b : per_shard) active += b > 0 ? 1 : 0;
  EXPECT_GE(active, 2u);
}

TEST(ShardedVaultServer, CoalescesDuplicateInFlightQueries) {
  const Dataset ds = serve_dataset(92);
  TrainedVault tv = quick_vault(ds);
  ShardedServerConfig cfg = quick_config(1024);
  cfg.server.max_wait = std::chrono::seconds(30);  // only flush() releases
  ShardedVaultServer server(ds, std::move(tv), ShardPlanner::plan(ds, tv, 2), {},
                            cfg);
  auto f1 = server.submit(5);
  auto f2 = server.submit(5);
  auto f3 = server.submit(5);
  EXPECT_EQ(server.pending(), 1u);  // one slot, three waiters
  server.flush();
  const auto l = f1.get();
  EXPECT_EQ(f2.get(), l);
  EXPECT_EQ(f3.get(), l);
  const auto s = server.stats();
  EXPECT_EQ(s.coalesced, 2u);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.batches, 1u);
}

TEST(ShardedVaultServer, UpdateFeaturesRefreshesLabels) {
  const Dataset ds = serve_dataset(93);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 2);
  ShardedVaultServer server(ds, tv, plan, {}, quick_config(8, /*cache=*/64));

  CsrMatrix mutated = ds.features;
  for (auto& v : mutated.mutable_values()) v *= 0.5f;
  const auto new_truth = ShardedVaultDeployment(ds, tv, plan).infer_labels(mutated);

  server.query(11);  // warm the cache against the old snapshot
  server.update_features(mutated);
  for (std::uint32_t v = 10; v < 14; ++v) {
    EXPECT_EQ(server.query(v), new_truth[v]) << "node " << v;
  }
  EXPECT_EQ(server.stats().feature_updates, 1u);
}

TEST(VaultRegistry, OversizedTenantAdmittedShardedAndServes) {
  const Dataset ds = shard_dataset(94);
  TrainedVault tv = shard_vault(ds);
  const std::size_t single_bytes = VaultRegistry::estimate_enclave_bytes(tv, ds);
  const auto truth =
      ShardedVaultDeployment(ds, tv, ShardPlanner::plan(ds, tv, 1))
          .infer_labels(ds.features);

  RegistryConfig rcfg;
  rcfg.epc_budget_fraction = 1.0;
  // Each platform holds ~85% of the tenant: unsharded admission is
  // impossible, a few-shard plan fits the fleet one shard per platform.
  rcfg.cost_model.epc_bytes = single_bytes * 17 / 20;
  rcfg.num_platforms = 4;
  rcfg.max_shards = 8;
  VaultRegistry registry(rcfg);

  ServerConfig scfg;
  scfg.max_batch = 8;
  scfg.max_wait = std::chrono::microseconds(500);
  const auto r = registry.admit("whale", ds, tv, scfg);
  ASSERT_EQ(r.decision, AdmissionDecision::kAdmittedSharded) << r.reason;
  EXPECT_GE(r.num_shards, 2u);
  EXPECT_TRUE(registry.has("whale"));
  EXPECT_TRUE(registry.is_sharded("whale"));
  EXPECT_THROW(registry.server("whale"), Error);  // not an unsharded tenant

  auto server = registry.sharded_server("whale");
  EXPECT_EQ(server->deployment().num_shards(), r.num_shards);
  for (std::uint32_t v = 100; v < 120; ++v) {
    EXPECT_EQ(server->query(v), truth[v]) << "node " << v;
  }
  // Shards were spread across platforms (no single platform can hold all).
  const auto in_use = registry.platform_in_use();
  std::size_t loaded = 0;
  for (const auto b : in_use) loaded += b > 0 ? 1 : 0;
  EXPECT_GE(loaded, 2u);

  EXPECT_TRUE(registry.remove("whale"));
  EXPECT_FALSE(registry.has("whale"));
  EXPECT_EQ(registry.epc_in_use(), 0u);
}

TEST(VaultRegistry, OversizedTenantStillRejectedWhenShardingDisabled) {
  const Dataset ds = shard_dataset(95);
  TrainedVault tv = shard_vault(ds);
  RegistryConfig rcfg;
  rcfg.epc_budget_fraction = 1.0;
  rcfg.cost_model.epc_bytes =
      VaultRegistry::estimate_enclave_bytes(tv, ds) * 17 / 20;
  rcfg.num_platforms = 4;
  rcfg.shard_oversized = false;
  VaultRegistry registry(rcfg);
  EXPECT_EQ(registry.admit("whale", ds, std::move(tv)).decision,
            AdmissionDecision::kRejected);
}

TEST(VaultRegistry, TenantTooBigForWholeFleetIsRejectedNotQueued) {
  // A shard plan EXISTS (each shard fits one platform's budget), but the
  // single-platform fleet can never hold all shards at once: queueing would
  // head-of-line-block every later tenant forever, so this must reject.
  const Dataset ds = shard_dataset(98);
  TrainedVault tv = shard_vault(ds);
  RegistryConfig rcfg;
  rcfg.epc_budget_fraction = 1.0;
  rcfg.cost_model.epc_bytes =
      VaultRegistry::estimate_enclave_bytes(tv, ds) * 17 / 20;
  rcfg.num_platforms = 1;
  rcfg.queue_when_full = true;
  VaultRegistry registry(rcfg);
  const auto r = registry.admit("leviathan", ds, std::move(tv));
  EXPECT_EQ(r.decision, AdmissionDecision::kRejected);
  EXPECT_TRUE(registry.queued().empty());
}

TEST(VaultRegistry, ShardedTenantCoexistsWithUnshardedTenants) {
  const Dataset big = shard_dataset(96);
  const Dataset small = serve_dataset(97, /*nodes=*/120);
  TrainedVault big_tv = shard_vault(big, 1);
  TrainedVault small_tv = quick_vault(small, 2);
  const auto small_truth = small_tv.predict_rectified(small.features);

  RegistryConfig rcfg;
  rcfg.epc_budget_fraction = 1.0;
  rcfg.cost_model.epc_bytes =
      VaultRegistry::estimate_enclave_bytes(big_tv, big) * 17 / 20;
  // One platform more than the whale needs, so the minnow has a home.
  rcfg.num_platforms = 5;
  VaultRegistry registry(rcfg);

  ASSERT_EQ(registry.admit("whale", big, std::move(big_tv)).decision,
            AdmissionDecision::kAdmittedSharded);
  const auto r = registry.admit("minnow", small, std::move(small_tv));
  ASSERT_EQ(r.decision, AdmissionDecision::kAdmitted) << r.reason;
  EXPECT_EQ(registry.server("minnow")->query(9), small_truth[9]);
  EXPECT_EQ(registry.tenants().size(), 2u);
}

}  // namespace
}  // namespace gv
