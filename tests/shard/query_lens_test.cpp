// QueryLens end-to-end: one query's causal chain — batch flush, routing,
// cold cross-shard recursion, and PEER halo serving — all carry the same
// query id in the exported trace, the per-stage histograms fill, and a
// killed shard leaves a schema-valid flight-recorder bundle behind even
// after the fleet is torn down.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "shard/sharded_server.hpp"
#include "../serve/serve_test_util.hpp"

namespace gv {
namespace {

namespace fs = std::filesystem;

TrainedVault quick_vault(const Dataset& ds, std::uint64_t seed = 37) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {16, 8}, {16, 8}, 0.4f};
  cfg.backbone_train.epochs = 25;
  cfg.rectifier_train.epochs = 25;
  cfg.seed = seed;
  return train_vault(ds, cfg);
}

/// Spans grouped by their query_id arg (spans without one are skipped).
std::map<std::uint64_t, std::set<std::string>> spans_by_query(
    const std::vector<TraceEvent>& events) {
  std::map<std::uint64_t, std::set<std::string>> by_query;
  for (const auto& ev : events) {
    for (int i = 0; i < ev.num_args; ++i) {
      if (std::string(ev.args[i].key) == "query_id" && ev.args[i].value > 0) {
        by_query[static_cast<std::uint64_t>(ev.args[i].value)].insert(ev.name);
      }
    }
  }
  return by_query;
}

TEST(QueryLens, ColdQueryCascadeSharesOneQueryIdAcrossShards) {
  const Dataset ds = serve_dataset(111);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);

  ShardedServerConfig cfg;
  cfg.server.max_batch = 1;  // one query per batch: unambiguous attribution
  cfg.server.max_wait = std::chrono::microseconds(200);
  cfg.server.cache_capacity = 0;
  cfg.materialize_on_start = false;  // every query rides the cold path

  ShardedVaultServer server(ds, std::move(tv), plan, {}, cfg);

  auto& rec = TraceRecorder::instance();
  rec.clear();
  rec.set_enabled(true);
  // Serve single queries until at least one cold walk pulled halo rows from
  // a peer (the cross-shard case the causal chain exists to attribute).
  for (std::uint32_t v = 0; v < 40; ++v) {
    server.query(v);
    if (server.stats().cold_halo_request_bytes > 0) break;
  }
  ASSERT_GT(server.stats().cold_halo_request_bytes, 0u)
      << "no query crossed a shard boundary; dataset/plan too easy";

  // query()'s future resolves INSIDE execute_batch, before the worker's
  // batch_flush span closes — poll briefly so the in-flight span lands in
  // the recorder instead of racing the snapshot.
  const auto has_cascade =
      [](const std::map<std::uint64_t, std::set<std::string>>& groups) {
        for (const auto& [qid, names] : groups) {
          if (names.count("batch_flush") && names.count("cold_subset") &&
              names.count("halo_serve")) {
            return true;
          }
        }
        return false;
      };
  std::map<std::uint64_t, std::set<std::string>> by_query;
  bool cascade_attributed = false;
  for (int i = 0; i < 500 && !cascade_attributed; ++i) {
    by_query = spans_by_query(rec.snapshot());
    cascade_attributed = has_cascade(by_query);
    if (!cascade_attributed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  rec.set_enabled(false);
  ASSERT_FALSE(by_query.empty());
  std::ostringstream debug;
  for (const auto& [qid, names] : by_query) {
    debug << qid << ": ";
    for (const auto& n : names) debug << n << " ";
    debug << "\n";
  }
  EXPECT_TRUE(cascade_attributed)
      << "no single query id spans flush + cold walk + peer halo serving\n"
      << debug.str();

  // The trace itself still validates (well-nested per thread).
  std::string err;
  EXPECT_TRUE(validate_trace_json(rec.to_chrome_json(), &err)) << err;
  rec.clear();
}

TEST(QueryLens, StageHistogramsFillWhileServing) {
  const Dataset ds = serve_dataset(112);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 2);

  auto& reg = MetricsRegistry::global();
  const auto count_of = [&](const char* stage) {
    return reg
        .histogram("query.stage_seconds", MetricLabels::of("stage", stage))
        .snapshot()
        .count;
  };
  const auto queue_before = count_of("queue");
  const auto flush_before = count_of("flush");
  const auto ecall_before = count_of("ecall");

  ShardedServerConfig cfg;
  cfg.server.max_batch = 8;
  cfg.server.max_wait = std::chrono::microseconds(200);
  cfg.server.cache_capacity = 0;
  ShardedVaultServer server(ds, std::move(tv), plan, {}, cfg);
  for (std::uint32_t v = 0; v < 20; ++v) server.query(v);

  // Stage recording is always on — no GNNVAULT_TRACE opt-in needed.
  EXPECT_GE(count_of("queue") - queue_before, 20u);
  EXPECT_GT(count_of("flush") - flush_before, 0u);
  EXPECT_GT(count_of("ecall") - ecall_before, 0u);
}

TEST(QueryLens, KilledShardLeavesAValidatedBundleAfterTeardown) {
  const fs::path dir =
      fs::temp_directory_path() / "gv_query_lens_flight_bundle";
  fs::remove_all(dir);
  auto& fr = FlightRecorder::instance();
  fr.configure(dir.string(), 256);

  const Dataset ds = serve_dataset(113);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);

  TimeSeriesRing ring(MetricsRegistry::global(), {0.001, 16});
  fr.attach_timeseries(&ring);

  std::string bundle_path;
  {
    ShardedServerConfig cfg;
    cfg.server.max_batch = 8;
    cfg.server.max_wait = std::chrono::microseconds(200);
    cfg.server.cache_capacity = 0;
    cfg.replicate = true;
    ShardedVaultServer server(ds, std::move(tv), plan, {}, cfg);

    ring.sample(0.0);
    const std::uint32_t victim = server.deployment().owner(5);
    server.kill_shard(victim);  // trips kDeadShard with the fleet mid-fault
    EXPECT_EQ(server.query(5), server.query(5));  // promoted shard serves
    ring.sample(0.002);

    // The newest bundle is the kill's.
    for (const auto& e : fs::directory_iterator(dir)) {
      if (bundle_path.empty() || e.path().string() > bundle_path) {
        bundle_path = e.path().string();
      }
    }
    ASSERT_FALSE(bundle_path.empty());
    EXPECT_NE(bundle_path.find("dead_shard"), std::string::npos);
  }  // fleet torn down — the bundle must outlive it

  fr.attach_timeseries(nullptr);
  fr.disarm();

  std::ifstream in(bundle_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  std::string err;
  ASSERT_TRUE(validate_flight_bundle(json, &err)) << err;
  // Topology was captured at trip time: the victim was already dead.
  EXPECT_NE(json.find("\"alive\":false"), std::string::npos);
  EXPECT_NE(json.find("\"replica_state\""), std::string::npos);
  EXPECT_NE(json.find("kill_shard"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace gv
