// Acceptance gate for ShardVault: sharded inference must return labels
// IDENTICAL to single-enclave inference — the sub-adjacencies carry the
// global Â values with ascending-column order preserved, so every owned
// row's message-passing sum runs over the same floats in the same order and
// the equality is bit-exact, not approximate.
//
// Covered across all six Table-I dataset twins (scaled down for test time)
// and across all three rectifier communication schemes.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "data/catalog.hpp"
#include "shard/sharded_deployment.hpp"
#include "../serve/serve_test_util.hpp"

namespace gv {
namespace {

TrainedVault quick_vault(const Dataset& ds, RectifierKind kind = RectifierKind::kParallel) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {16, 8}, {16, 8}, 0.4f};
  cfg.rectifier = kind;
  cfg.backbone_train.epochs = 25;
  cfg.rectifier_train.epochs = 25;
  cfg.seed = 17;
  return train_vault(ds, cfg);
}

TEST(ShardedEquivalence, AllSixTableOneDatasetsMatchSingleEnclave) {
  for (const DatasetId id : all_dataset_ids()) {
    const Dataset ds = load_dataset(id, /*seed=*/7, /*scale=*/0.06);
    TrainedVault tv = quick_vault(ds);

    const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
    ShardedVaultDeployment sharded(ds, tv, plan);
    VaultDeployment single(ds, tv);

    const auto sharded_labels = sharded.infer_labels(ds.features);
    const auto single_labels = single.infer_labels(ds.features);
    ASSERT_EQ(sharded_labels.size(), single_labels.size()) << dataset_name(id);
    EXPECT_EQ(sharded_labels, single_labels)
        << "sharded labels diverge on " << dataset_name(id);

    // The inter-shard channels carried embeddings only: no package (and
    // in particular no adjacency) bytes, no labels.
    if (plan.cut_edges > 0) {
      EXPECT_GT(sharded.halo_embedding_bytes(), 0u) << dataset_name(id);
    }
    EXPECT_EQ(sharded.halo_package_bytes(), 0u) << dataset_name(id);
    EXPECT_EQ(sharded.halo_label_bytes(), 0u) << dataset_name(id);
  }
}

TEST(ShardedEquivalence, AllRectifierKindsMatch) {
  const Dataset ds = serve_dataset(71, /*nodes=*/300);
  for (const RectifierKind kind :
       {RectifierKind::kParallel, RectifierKind::kCascaded, RectifierKind::kSeries}) {
    TrainedVault tv = quick_vault(ds, kind);
    ShardedVaultDeployment sharded(ds, tv, ShardPlanner::plan(ds, tv, 4));
    VaultDeployment single(ds, tv);
    EXPECT_EQ(sharded.infer_labels(ds.features), single.infer_labels(ds.features))
        << rectifier_kind_name(kind);
  }
}

TEST(ShardedEquivalence, SingleShardDegenerateCaseMatches) {
  const Dataset ds = serve_dataset(72);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment sharded(ds, tv, ShardPlanner::plan(ds, tv, 1));
  VaultDeployment single(ds, tv);
  EXPECT_EQ(sharded.infer_labels(ds.features), single.infer_labels(ds.features));
  EXPECT_EQ(sharded.halo_embedding_bytes(), 0u);
}

TEST(ShardedEquivalence, LookupMatchesPlanOwnership) {
  const Dataset ds = serve_dataset(73);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
  ShardedVaultDeployment sharded(ds, tv, plan);
  const auto all = sharded.infer_labels(ds.features);

  // Per-shard lookups agree with the assembled vector; lookups for nodes a
  // shard does not own throw.
  const std::uint32_t node = 5;
  const std::uint32_t home = sharded.owner(node);
  const auto got = sharded.lookup(home, std::vector<std::uint32_t>{node});
  EXPECT_EQ(got[0], all[node]);
  const std::uint32_t wrong = (home + 1) % plan.num_shards;
  EXPECT_THROW(sharded.lookup(wrong, std::vector<std::uint32_t>{node}), Error);
}

TEST(ShardedEquivalence, RefreshTracksFeatureUpdates) {
  const Dataset ds = serve_dataset(74);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment sharded(ds, tv, ShardPlanner::plan(ds, tv, 3));
  VaultDeployment single(ds, tv);

  // Perturb the features and re-run both paths: still identical.
  CsrMatrix mutated = ds.features;
  for (auto& v : mutated.mutable_values()) v *= 0.5f;
  EXPECT_EQ(sharded.infer_labels(mutated), single.infer_labels(mutated));
}

}  // namespace
}  // namespace gv
