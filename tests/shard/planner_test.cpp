// ShardPlanner: budget-driven shard counts, coverage, and payload
// construction invariants (closure, halo routing, global values).
#include "shard/shard_planner.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "../serve/serve_test_util.hpp"
#include "shard_test_util.hpp"

namespace gv {
namespace {

TEST(ShardPlanner, PlanCoversAllNodesExactlyOnce) {
  const Dataset ds = serve_dataset(61);
  const TrainedVault tv = serve_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
  ASSERT_EQ(plan.num_shards, 3u);
  ASSERT_EQ(plan.owner.size(), ds.num_nodes());
  std::size_t covered = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    for (const auto v : plan.shards[s].nodes) {
      EXPECT_EQ(plan.owner[v], s);
    }
    covered += plan.shards[s].nodes.size();
  }
  EXPECT_EQ(covered, ds.num_nodes());
}

TEST(ShardPlanner, MoreShardsMeanSmallerLargestShard) {
  const Dataset ds = serve_dataset(62, /*nodes=*/400);
  const TrainedVault tv = serve_vault(ds);
  const ShardPlan one = ShardPlanner::plan(ds, tv, 1);
  const ShardPlan four = ShardPlanner::plan(ds, tv, 4);
  EXPECT_LT(four.max_shard_bytes(), one.max_shard_bytes());
  // Halo replication makes the sum superlinear, but not absurdly so.
  EXPECT_GE(four.total_bytes(), one.total_bytes());
}

TEST(ShardPlanner, PlanForBudgetPicksSmallestFittingShardCount) {
  const Dataset ds = shard_dataset(63);
  const TrainedVault tv = shard_vault(ds);
  const ShardPlan single = ShardPlanner::plan(ds, tv, 1);
  // A budget of ~half the single-shard estimate forces K >= 2.
  const std::size_t budget = single.max_shard_bytes() / 2 + 1;
  const ShardPlan plan = ShardPlanner::plan_for_budget(ds, tv, budget, 16);
  EXPECT_GE(plan.num_shards, 2u);
  EXPECT_LE(plan.max_shard_bytes(), budget);
  if (plan.num_shards > 2) {
    // Minimality: one fewer shard must NOT fit (when we went above 2).
    const ShardPlan smaller = ShardPlanner::plan(ds, tv, plan.num_shards - 1);
    EXPECT_GT(smaller.max_shard_bytes(), budget);
  }
}

TEST(ShardPlanner, PlanForBudgetThrowsWhenImpossible) {
  const Dataset ds = serve_dataset(64);
  const TrainedVault tv = serve_vault(ds);
  // Smaller than the replicated rectifier weights: no K can ever fit.
  EXPECT_THROW(ShardPlanner::plan_for_budget(ds, tv, 64, 8), Error);
}

TEST(ShardPlanner, PayloadsCarryClosureHaloAndGlobalValues) {
  const Dataset ds = serve_dataset(65);
  const TrainedVault tv = serve_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
  const auto payloads = ShardPlanner::build_payloads(ds, tv, plan);
  ASSERT_EQ(payloads.size(), 3u);

  const CsrMatrix global =
      Graph::csr_from_coo_normalized(ds.graph.to_coo_normalized());
  for (const auto& p : payloads) {
    // Owned ⊆ closure, both sorted.
    EXPECT_TRUE(std::is_sorted(p.owned.begin(), p.owned.end()));
    EXPECT_TRUE(std::is_sorted(p.closure.begin(), p.closure.end()));
    EXPECT_TRUE(std::includes(p.closure.begin(), p.closure.end(),
                              p.owned.begin(), p.owned.end()));
    // Every sub-adjacency value equals the global Â entry it maps to.
    for (std::size_t i = 0; i < p.adj_row.size(); ++i) {
      const std::uint32_t gr = p.owned[p.adj_row[i]];
      const std::uint32_t gc = p.closure[p.adj_col[i]];
      EXPECT_FLOAT_EQ(p.adj_val[i], global.at(gr, gc));
    }
    // Halo routing: every listed node is owned by the sender and sits in
    // the receiver's closure but not its owned set.
    for (std::uint32_t t = 0; t < payloads.size(); ++t) {
      for (const auto v : p.halo_out[t]) {
        EXPECT_EQ(plan.owner[v], p.shard_index);
        const auto& rc = payloads[t].closure;
        EXPECT_TRUE(std::binary_search(rc.begin(), rc.end(), v));
        const auto& ro = payloads[t].owned;
        EXPECT_FALSE(std::binary_search(ro.begin(), ro.end(), v));
      }
    }
  }
}

TEST(ShardPlanner, ShardPayloadSerializationRoundTrips) {
  const Dataset ds = serve_dataset(66);
  const TrainedVault tv = serve_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 2);
  const auto payloads = ShardPlanner::build_payloads(ds, tv, plan);
  const auto bytes = serialize_shard_payload(payloads[1]);
  const ShardPayload back = deserialize_shard_payload(bytes);
  EXPECT_EQ(back.shard_index, payloads[1].shard_index);
  EXPECT_EQ(back.num_shards, payloads[1].num_shards);
  EXPECT_EQ(back.owned, payloads[1].owned);
  EXPECT_EQ(back.closure, payloads[1].closure);
  EXPECT_EQ(back.closure_deg, payloads[1].closure_deg);
  EXPECT_EQ(back.adj_row, payloads[1].adj_row);
  EXPECT_EQ(back.adj_col, payloads[1].adj_col);
  EXPECT_EQ(back.adj_val, payloads[1].adj_val);
  EXPECT_EQ(back.halo_out, payloads[1].halo_out);
  EXPECT_EQ(back.rectifier_weights, payloads[1].rectifier_weights);

  auto corrupt = bytes;
  corrupt.pop_back();
  EXPECT_THROW(deserialize_shard_payload(corrupt), Error);
}

}  // namespace
}  // namespace gv
