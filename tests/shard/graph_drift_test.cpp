// GraphDrift: live private-graph mutation + online rebalancing.  Pinned:
//   * bit-exactness vs a single-enclave oracle REBUILT ON THE MUTATED
//     GRAPH, on all six Table-I dataset twins, after random edge
//     insert/delete/node-add sequences — both demand-driven (stale stores,
//     cold path) and after the next refresh;
//   * digest-based invalidation: exactly the receptive field goes stale, a
//     cancelled delta invalidates nothing, direct lookups refuse stale
//     entries, and routed traffic heals the store through the cold path;
//   * plan_diff: moves only drift nodes, and replaying it on its own
//     output is a no-op (idempotence);
//   * migration: plan-diff moves are bit-exact, audited (node transfers
//     are the only adjacency-bearing payload kind; labels/packages never
//     ride inter-shard channels), idempotent to replay, safe while racing
//     concurrent routed queries and a promotion, and a standby whose
//     package predates the topology refuses promotion;
//   * auto-restaff: two back-to-back failovers with no manual restaff();
//   * dead-shard detection: an injected ecall failure triggers the same
//     fence + promote path as an explicit kill_shard.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "data/catalog.hpp"
#include "shard/graph_drift.hpp"
#include "shard/migration.hpp"
#include "shard/replica_manager.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_server.hpp"
#include "shard_test_util.hpp"

namespace gv {
namespace {

TrainedVault quick_vault(const Dataset& ds,
                         RectifierKind kind = RectifierKind::kParallel) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {16, 8}, {16, 8}, 0.4f};
  cfg.rectifier = kind;
  cfg.backbone_train.epochs = 25;
  cfg.rectifier_train.epochs = 25;
  cfg.seed = 31;
  return train_vault(ds, cfg);
}

/// Random drift: `deletes` existing edges out, `inserts` random pairs in,
/// `adds` fresh nodes with one-hot-ish feature rows.  Degenerate picks
/// (duplicates, self-loops, already-present edges) are intended — the
/// no-op semantics must agree between the fleet and the oracle.
GraphDelta random_delta(const Dataset& ds, Rng& rng, std::size_t inserts,
                        std::size_t deletes, std::size_t adds) {
  GraphDelta d;
  const std::uint32_t n_after =
      ds.num_nodes() + static_cast<std::uint32_t>(adds);
  const auto& edges = ds.graph.edges();
  for (std::size_t i = 0; i < deletes && !edges.empty(); ++i) {
    const Edge& e = edges[rng.uniform_index(edges.size())];
    d.edge_deletes.push_back({e.a, e.b});
  }
  for (std::size_t i = 0; i < inserts; ++i) {
    d.edge_inserts.push_back(
        {static_cast<std::uint32_t>(rng.uniform_index(n_after)),
         static_cast<std::uint32_t>(rng.uniform_index(n_after))});
  }
  for (std::size_t i = 0; i < adds; ++i) {
    std::vector<std::pair<std::uint32_t, float>> row;
    row.push_back({static_cast<std::uint32_t>(
                       rng.uniform_index(ds.features.cols())),
                   1.0f});
    d.node_adds.push_back(std::move(row));
  }
  return d;
}

std::vector<std::uint32_t> spread_queries(std::uint32_t n, std::uint32_t parts) {
  std::vector<std::uint32_t> q;
  const std::uint32_t step = std::max<std::uint32_t>(1, n / parts);
  for (std::uint32_t v = 0; v < n; v += step) q.push_back(v);
  q.push_back(n - 1);  // appended nodes are the most drift-sensitive
  q.push_back(q.front());
  return q;
}

TEST(GraphDrift, BitExactAfterRandomDriftOnAllSixDatasets) {
  for (const DatasetId id : all_dataset_ids()) {
    Dataset ds = load_dataset(id, /*seed=*/9, /*scale=*/0.06);
    TrainedVault tv = quick_vault(ds);
    ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
    dep.refresh(ds.features);

    Rng rng(0xd21f7 + static_cast<std::uint64_t>(id));
    const GraphDelta delta = random_delta(ds, rng, /*inserts=*/12,
                                          /*deletes=*/8, /*adds=*/2);
    Dataset mds = ds;
    apply_delta(mds, delta);
    const auto stats = dep.update_graph(delta, &mds.features);
    EXPECT_GT(stats.edges_inserted + stats.edges_deleted + stats.nodes_added,
              0u)
        << dataset_name(id);
    EXPECT_EQ(dep.num_nodes(), mds.num_nodes()) << dataset_name(id);

    const TrainedVault oracle = revault_on(tv, mds);

    // Demand-driven, BEFORE any refresh: stale stores must not leak
    // pre-mutation labels; the cold path computes on the mutated topology.
    const auto q = spread_queries(mds.num_nodes(), 23);
    EXPECT_EQ(dep.infer_labels_subset_cold(mds.features, q),
              oracle.predict_rectified_subset(mds.features, q))
        << dataset_name(id) << " (cold, stale stores)";

    // Full refresh on the mutated graph: every store re-materializes.
    EXPECT_EQ(dep.infer_labels(mds.features),
              oracle.predict_rectified(mds.features))
        << dataset_name(id) << " (refresh)";
    EXPECT_EQ(dep.stale_store_entries(0) + dep.stale_store_entries(1) +
                  dep.stale_store_entries(2),
              0u)
        << dataset_name(id);
  }
}

TEST(GraphDrift, WorksForCascadedAndSeriesRectifiers) {
  Dataset ds = shard_dataset(71);
  for (const RectifierKind kind :
       {RectifierKind::kCascaded, RectifierKind::kSeries}) {
    TrainedVault tv = quick_vault(ds, kind);
    ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
    dep.refresh(ds.features);
    Rng rng(0xcafe + static_cast<std::uint64_t>(kind));
    const GraphDelta delta = random_delta(ds, rng, 10, 6, 1);
    Dataset mds = ds;
    apply_delta(mds, delta);
    dep.update_graph(delta, &mds.features);
    const TrainedVault oracle = revault_on(tv, mds);
    const auto q = spread_queries(mds.num_nodes(), 19);
    EXPECT_EQ(dep.infer_labels_subset_cold(mds.features, q),
              oracle.predict_rectified_subset(mds.features, q))
        << rectifier_kind_name(kind);
    EXPECT_EQ(dep.infer_labels(mds.features),
              oracle.predict_rectified(mds.features))
        << rectifier_kind_name(kind);
  }
}

TEST(GraphDrift, StaleInvalidationIsScopedAndHealsThroughTheRouter) {
  Dataset ds = shard_dataset(72);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  dep.refresh(ds.features);

  // One real edge insert between two previously unconnected nodes.
  std::uint32_t a = 0, b = 0;
  for (std::uint32_t u = 0; u < ds.num_nodes() && b == 0; ++u) {
    for (std::uint32_t v = u + 2; v < ds.num_nodes(); ++v) {
      if (!ds.graph.has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
    }
  }
  ASSERT_NE(a, b);
  GraphDelta delta;
  delta.edge_inserts.push_back({a, b});
  Dataset mds = ds;
  apply_delta(mds, delta);
  const auto stats = dep.update_graph(delta);
  EXPECT_EQ(stats.edges_inserted, 1u);
  ASSERT_FALSE(stats.stale_nodes.empty());
  // The endpoints are inside the invalidated receptive field.
  EXPECT_TRUE(std::binary_search(stats.stale_nodes.begin(),
                                 stats.stale_nodes.end(), a));
  EXPECT_TRUE(std::binary_search(stats.stale_nodes.begin(),
                                 stats.stale_nodes.end(), b));

  // Direct lookups refuse invalidated entries.
  const std::uint32_t sa = dep.owner(a);
  EXPECT_GT(dep.stale_store_entries(sa), 0u);
  EXPECT_THROW(dep.lookup(sa, std::vector<std::uint32_t>{a}), Error);

  // The router splits stale nodes onto the cold path and serves the
  // mutated-graph truth; the cold write-back heals the store.
  const TrainedVault oracle = revault_on(tv, mds);
  const auto truth = oracle.predict_rectified(mds.features);
  ShardRouter router(dep);
  router.set_cold_path([&](std::span<const std::uint32_t> nodes) {
    return dep.infer_labels_subset_cold(mds.features, nodes);
  });
  const std::size_t stale_before = dep.stale_store_entries(sa);
  std::vector<std::uint32_t> mixed = stats.stale_nodes;
  mixed.push_back((a + 7) % ds.num_nodes());
  const auto got = router.route(mixed);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    EXPECT_EQ(got[i], truth[mixed[i]]) << "node " << mixed[i];
  }
  EXPECT_LT(dep.stale_store_entries(sa), stale_before);
  // Healed entries serve warm again — and serve the NEW label.
  EXPECT_EQ(dep.lookup(sa, std::vector<std::uint32_t>{a}),
            (std::vector<std::uint32_t>{truth[a]}));
}

TEST(GraphDrift, CancelledDeltaInvalidatesNothing) {
  Dataset ds = shard_dataset(73);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  dep.refresh(ds.features);
  const std::uint64_t epoch = dep.refresh_epoch();
  const std::uint64_t topo = dep.topology_version();

  ASSERT_FALSE(ds.graph.edges().empty());
  const Edge e = ds.graph.edges().front();
  GraphDelta delta;
  delta.edge_inserts.push_back({e.a, e.b});  // duplicate: no-op
  delta.edge_deletes.push_back({e.a, e.a});  // self: no-op
  GraphDelta cancel;  // delete + re-insert: digests come back identical
  cancel.edge_deletes.push_back({e.a, e.b});
  cancel.edge_inserts.push_back({e.b, e.a});

  const auto s1 = dep.update_graph(delta);
  EXPECT_EQ(s1.edges_inserted + s1.edges_deleted, 0u);
  EXPECT_TRUE(s1.stale_nodes.empty());
  EXPECT_EQ(dep.refresh_epoch(), epoch);
  EXPECT_EQ(dep.topology_version(), topo);

  const auto s2 = dep.update_graph(cancel);
  EXPECT_EQ(s2.edges_deleted, 1u);
  EXPECT_EQ(s2.edges_inserted, 1u);
  // Same degrees, same values, same digests: nothing went stale.
  EXPECT_TRUE(s2.stale_nodes.empty());
  EXPECT_EQ(dep.stale_store_entries(dep.owner(e.a)), 0u);
  EXPECT_EQ(dep.infer_labels_subset_cold(ds.features,
                                         std::vector<std::uint32_t>{e.a, e.b}),
            tv.predict_rectified_subset(ds.features,
                                        std::vector<std::uint32_t>{e.a, e.b}));
}

TEST(GraphDrift, RejectedDeltaLeavesTheDeploymentIntact) {
  Dataset ds = shard_dataset(81);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  const auto truth = dep.infer_labels(ds.features);

  GraphDelta bad;
  bad.node_adds.push_back({{0, 1.0f}});
  bad.edge_inserts.push_back({0, ds.num_nodes() + 5});  // out of range
  EXPECT_THROW(dep.update_graph(bad, nullptr), Error);

  // Validation ran BEFORE any mutation: no ghost node, serving unaffected.
  EXPECT_EQ(dep.num_nodes(), ds.num_nodes());
  const auto q = spread_queries(ds.num_nodes(), 17);
  ShardRouter router(dep);
  const auto got = router.route(q);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(got[i], truth[q[i]]) << "node " << q[i];
  }
  EXPECT_EQ(dep.infer_labels(ds.features), truth);
}

TEST(PlanDiff, MovesOnlyDriftNodesAndIsIdempotent) {
  Dataset ds = shard_dataset(74);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  DriftTracker tracker(dep.plan());

  Rng rng(0xd81f);
  const GraphDelta delta = random_delta(ds, rng, 40, 20, 3);
  Dataset mds = ds;
  apply_delta(mds, delta);
  const auto stats = dep.update_graph(delta, &mds.features);
  tracker.record(stats);
  ASSERT_FALSE(tracker.drift_nodes().empty());
  EXPECT_GT(tracker.cut_growth() + tracker.load_imbalance(), 0.0);

  const PlanDiff pd = ShardPlanner::plan_diff(mds, tv, dep.plan(),
                                              tracker.drift_nodes());
  const auto& drift = tracker.drift_nodes();
  for (const NodeMove& m : pd.moves) {
    EXPECT_TRUE(std::binary_search(drift.begin(), drift.end(), m.node))
        << "plan_diff moved non-drift node " << m.node;
    EXPECT_EQ(m.from, dep.plan().owner[m.node]);
    EXPECT_EQ(m.to, pd.plan.owner[m.node]);
  }
  // Untouched nodes never move.
  for (std::uint32_t v = 0; v < mds.num_nodes(); ++v) {
    if (!std::binary_search(drift.begin(), drift.end(), v)) {
      EXPECT_EQ(pd.plan.owner[v], dep.plan().owner[v]) << "node " << v;
    }
  }
  // Idempotence: plan_diff on its own output emits no moves.
  const PlanDiff again =
      ShardPlanner::plan_diff(mds, tv, pd.plan, tracker.drift_nodes());
  EXPECT_TRUE(again.moves.empty());
  // And an empty drift set is always a no-op.
  const PlanDiff none = ShardPlanner::plan_diff(mds, tv, dep.plan(), {});
  EXPECT_TRUE(none.moves.empty());
}

TEST(Migration, PlanDiffMovesAreBitExactAuditedAndReplayable) {
  Dataset ds = shard_dataset(75);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  const auto truth = dep.infer_labels(ds.features);
  const std::uint64_t label_bytes = dep.halo_label_bytes();
  const std::uint64_t package_bytes = dep.halo_package_bytes();

  // Hand-picked moves: three nodes of shard 0 go to shard 1.
  std::vector<NodeMove> moves;
  const auto shard0 = dep.plan().shards[0].nodes;  // copy: plan mutates
  ASSERT_GT(shard0.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    moves.push_back({shard0[i * 2], 0, 1});
  }
  MigrationExecutor exec(dep);
  const MigrationStats ms = exec.execute(moves);
  EXPECT_EQ(ms.moves_executed, 3u);
  EXPECT_GT(ms.transfer_bytes, 0u);
  EXPECT_GE(ms.wire_bytes, ms.transfer_bytes);  // bucket padding
  EXPECT_GT(ms.max_fence_ms, 0.0);

  // Ownership flipped; the label stores moved with the nodes.
  ShardRouter router(dep);
  const auto q = spread_queries(ds.num_nodes(), 23);
  const auto got = router.route(q);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(got[i], truth[q[i]]) << "node " << q[i];
  }
  for (const NodeMove& m : moves) {
    EXPECT_EQ(dep.owner(m.node), 1u);
    EXPECT_EQ(dep.lookup(1, std::vector<std::uint32_t>{m.node}),
              (std::vector<std::uint32_t>{truth[m.node]}));
    EXPECT_THROW(dep.lookup(0, std::vector<std::uint32_t>{m.node}), Error);
  }

  // Audit: migration moved node-transfer payloads ONLY — still no labels
  // or packages on inter-shard channels, ever.
  EXPECT_EQ(dep.halo_label_bytes(), label_bytes);
  EXPECT_EQ(dep.halo_package_bytes(), package_bytes);
  EXPECT_GT(dep.halo_transfer_bytes(), 0u);

  // Replaying the same move-set is a no-op.
  const MigrationStats replay = exec.execute(moves);
  EXPECT_EQ(replay.moves_executed, 0u);
  EXPECT_EQ(replay.moves_skipped, 3u);

  // The rebalanced fleet still refreshes bit-exactly (halo lists and
  // channels were re-routed correctly).
  EXPECT_EQ(dep.infer_labels(ds.features), tv.predict_rectified(ds.features));
}

TEST(Migration, DriftPlanMigrateLifecycleStaysBitExact) {
  Dataset ds = shard_dataset(76);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  dep.refresh(ds.features);
  DriftTracker tracker(dep.plan());

  Rng rng(0x9e37);
  const GraphDelta delta = random_delta(ds, rng, 50, 25, 2);
  Dataset mds = ds;
  apply_delta(mds, delta);
  tracker.record(dep.update_graph(delta, &mds.features));

  const PlanDiff pd = ShardPlanner::plan_diff(mds, tv, dep.plan(),
                                              tracker.drift_nodes());
  MigrationExecutor exec(dep);
  exec.execute(pd.moves);
  tracker.reset(pd.plan);

  const TrainedVault oracle = revault_on(tv, mds);
  const auto q = spread_queries(mds.num_nodes(), 29);
  EXPECT_EQ(dep.infer_labels_subset_cold(mds.features, q),
            oracle.predict_rectified_subset(mds.features, q))
      << "demand-driven after migrate";
  EXPECT_EQ(dep.infer_labels(mds.features),
            oracle.predict_rectified(mds.features))
      << "refresh after migrate";
}

TEST(Migration, StalePackageRefusesPromotionFreshOnePromotes) {
  Dataset ds = shard_dataset(77);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  const auto truth = dep.infer_labels(ds.features);

  ReplicaManager replicas(dep);
  replicas.replicate_all();

  // Migration retires the replicated topology...
  const auto shard0 = dep.plan().shards[0].nodes;
  ASSERT_GT(shard0.size(), 1u);
  dep.move_node(shard0.front(), 1);

  // ...so the stale standby must refuse to promote (it would resurrect
  // pre-migration ownership inside the adopted enclave).
  dep.kill_shard(0);
  EXPECT_THROW(replicas.begin_promotion(0), Error);

  // A fresh fleet replicated AFTER the migration promotes fine and serves
  // the migrated layout.
  ShardedVaultDeployment dep2(ds, tv, ShardPlanner::plan(ds, tv, 3));
  dep2.infer_labels(ds.features);
  dep2.move_node(shard0.front(), 1);
  ReplicaManager replicas2(dep2);
  replicas2.replicate_all();
  dep2.kill_shard(0);
  replicas2.promote(0, [&] { dep2.rematerialize_shard(0, ds.features); });
  ShardRouter router(dep2, &replicas2);
  const auto q = spread_queries(ds.num_nodes(), 23);
  const auto got = router.route(q);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(got[i], truth[q[i]]) << "node " << q[i];
  }
}

// Migration racing routed queries AND a promotion: per-move fences, the
// copy-on-write owner map, and the topology stamp must keep every answer
// bit-exact with no torn ownership observable.
TEST(Migration, RacingQueriesAndPromotionStayBitExact) {
  Dataset ds = shard_dataset(78);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  const auto truth = dep.infer_labels(ds.features);

  ReplicaManager replicas(dep);
  ShardRouter router(dep, &replicas);
  router.set_cold_path([&](std::span<const std::uint32_t> nodes) {
    return dep.infer_labels_subset_cold(ds.features, nodes);
  });
  router.set_fence_timeout(std::chrono::seconds(30));

  const auto q = spread_queries(ds.num_nodes(), 31);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> served{0};
  std::vector<std::thread> clients;
  std::atomic<bool> mismatch{false};
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        const auto got = router.route(q);
        for (std::size_t i = 0; i < q.size(); ++i) {
          if (got[i] != truth[q[i]]) mismatch.store(true);
        }
        served.fetch_add(q.size());
      }
    });
  }

  // Migrate a handful of nodes while the clients hammer the router.
  const auto shard0 = dep.plan().shards[0].nodes;
  ASSERT_GT(shard0.size(), 6u);
  MigrationExecutor exec(dep);
  std::vector<NodeMove> moves;
  for (std::size_t i = 0; i < 4; ++i) moves.push_back({shard0[i], 0, 2});
  exec.execute(moves);

  // Now a failover on a DIFFERENT shard, mid-traffic: replicate the
  // post-migration topology, kill, promote.
  replicas.replicate_all();
  dep.kill_shard(1);
  replicas.begin_promotion(1);
  replicas.promote(1, [&] { dep.rematerialize_shard(1, ds.features); });

  while (served.load() < 6 * q.size()) std::this_thread::yield();
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_FALSE(mismatch.load());

  const auto got = router.route(q);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(got[i], truth[q[i]]) << "node " << q[i];
  }
}

TEST(AutoRestaff, BackToBackFailoversNeedNoManualCall) {
  const Dataset ds = shard_dataset(79);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
  const auto truth = ShardedVaultDeployment(ds, tv, plan).infer_labels(ds.features);

  ShardedServerConfig cfg;
  cfg.server.max_batch = 8;
  cfg.server.max_wait = std::chrono::microseconds(500);
  cfg.server.cache_capacity = 0;
  cfg.replicate = true;  // auto_restaff defaults on
  ShardedVaultServer server(ds, tv, plan, {}, cfg);

  const std::uint32_t victim = server.deployment().owner(5);
  // Two kills of the SAME shard, no restaff()/replicate() in between: the
  // gen-2 standby provisioned by the first promotion absorbs the second.
  for (int round = 1; round <= 2; ++round) {
    server.kill_shard(victim);
    for (std::uint32_t v = 0; v < 24; ++v) {
      EXPECT_EQ(server.query(v), truth[v])
          << "round " << round << ", node " << v;
    }
  }
  for (int i = 0; i < 500; ++i) {
    const auto snap = server.stats();
    if (snap.restaffs >= 2 && snap.promotions >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto s = server.stats();
  EXPECT_EQ(s.promotions, 2u);
  EXPECT_EQ(s.restaffs, 2u);
  EXPECT_EQ(server.replicas()->state(victim), ReplicaState::kStandby);
  EXPECT_TRUE(server.replicas()->ready(victim));
}

TEST(DeadShardDetection, FailedEcallTriggersFenceAndPromotion) {
  const Dataset ds = shard_dataset(80);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
  const auto truth = ShardedVaultDeployment(ds, tv, plan).infer_labels(ds.features);

  ShardedServerConfig cfg;
  cfg.server.max_batch = 2;  // a burst splits into several racing batches
  cfg.server.worker_threads = 2;
  cfg.server.max_wait = std::chrono::microseconds(500);
  cfg.server.cache_capacity = 0;
  cfg.replicate = true;
  ShardedVaultServer server(ds, tv, plan, {}, cfg);
  server.replicas()->wait_ready();

  const std::uint32_t probe = 3;
  const std::uint32_t victim = server.deployment().owner(probe);
  // Nobody calls kill_shard: the enclave just dies under the next serving
  // ecalls — possibly under TWO racing worker threads at once (both must
  // detect, one promotes, the other joins; a handler invoked under the
  // shard's serving lock would deadlock here against the adoption).  The
  // server fences + promotes, the router retries the batches onto the new
  // PRIMARY, and no caller ever sees the crash.
  server.deployment().shard_enclave(victim).inject_ecall_failure(
      "simulated enclave teardown", /*count=*/2);
  std::vector<std::uint32_t> burst;
  for (std::uint32_t v = 0; v < 24; ++v) burst.push_back(v);
  auto futs = server.submit_many(burst);
  for (std::uint32_t v = 0; v < 24; ++v) {
    EXPECT_EQ(futs[v].get(), truth[v]) << "node " << v;
  }
  // Queries unblock the moment the fence lifts; the promotion metric lands
  // when the async promote (incl. auto-restaff) fully returns — poll.
  for (int i = 0; i < 500 && server.stats().promotions < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto s = server.stats();
  EXPECT_GE(s.shard_faults, 1u);
  EXPECT_EQ(s.promotions, 1u);
  EXPECT_TRUE(server.deployment().shard_alive(victim));
}

// The cold cross-shard path is the ONLY serving path on a cold-start
// fleet; an enclave dying under a cold ecall must trigger the same
// detection + fence + promote as a warm lookup crash.
TEST(DeadShardDetection, ColdPathEcallFailureAlsoFailsOver) {
  const Dataset ds = shard_dataset(82);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
  const auto oracle = tv.predict_rectified(ds.features);

  ShardedServerConfig cfg;
  cfg.server.max_batch = 4;
  cfg.server.max_wait = std::chrono::microseconds(500);
  cfg.server.cache_capacity = 0;
  cfg.replicate = true;
  cfg.materialize_on_start = false;  // every query goes down the cold path
  ShardedVaultServer server(ds, tv, plan, {}, cfg);
  server.replicas()->wait_ready();

  const std::uint32_t victim = server.deployment().owner(2);
  server.deployment().shard_enclave(victim).inject_ecall_failure(
      "simulated enclave teardown (cold walk)");
  const std::uint32_t step = std::max<std::uint32_t>(1, ds.num_nodes() / 25);
  for (std::uint32_t v = 0; v < ds.num_nodes(); v += step) {
    EXPECT_EQ(server.query(v), oracle[v]) << "node " << v;
  }
  for (int i = 0; i < 500 && server.stats().promotions < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto s = server.stats();
  EXPECT_GE(s.shard_faults, 1u);
  EXPECT_EQ(s.promotions, 1u);
  EXPECT_TRUE(server.deployment().shard_alive(victim));
}

}  // namespace
}  // namespace gv
