// Shared fixtures for the ShardVault tests: a sparse synthetic dataset
// (low degree, so per-shard closures actually shrink with the shard count —
// the regime sharding targets) and a quickly trained vault.
#pragma once

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"

namespace gv {

inline Dataset shard_dataset(std::uint64_t seed, std::uint32_t nodes = 800) {
  SyntheticSpec spec;
  spec.num_nodes = nodes;
  spec.num_classes = 3;
  spec.num_undirected_edges = nodes * 3 / 2;  // avg degree 3
  spec.feature_dim = 80;
  spec.homophily = 0.85;
  spec.feature_signal = 0.45;
  return generate_synthetic(spec, seed);
}

inline TrainedVault shard_vault(const Dataset& ds, std::uint64_t seed = 17,
                                RectifierKind kind = RectifierKind::kParallel) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {16, 8}, {16, 8}, 0.4f};
  cfg.rectifier = kind;
  cfg.backbone_train.epochs = 25;
  cfg.rectifier_train.epochs = 25;
  cfg.seed = seed;
  return train_vault(ds, cfg);
}

}  // namespace gv
