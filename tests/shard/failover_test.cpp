// Replicated failover: shard packages re-sealed under the standby platform
// key, warm label stores, router failover when a shard enclave dies, and
// the channel-audit invariants that keep adjacency inside enclaves.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "shard/replica_manager.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_server.hpp"
#include "../serve/serve_test_util.hpp"

namespace gv {
namespace {

/// The promotion-latency metric lands when the async promotion thread
/// retires, an instant after the fence lifts; poll for it.
void wait_for_promotions(const ShardedVaultServer& server, std::uint64_t n) {
  for (int i = 0; i < 1000 && server.stats().promotions < n; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TrainedVault quick_vault(const Dataset& ds) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {16, 8}, {16, 8}, 0.4f};
  cfg.backbone_train.epochs = 25;
  cfg.rectifier_train.epochs = 25;
  cfg.seed = 23;
  return train_vault(ds, cfg);
}

TEST(ReplicaManager, ResealsUnderStandbyPlatformKey) {
  const Dataset ds = serve_dataset(81);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 2));
  dep.refresh(ds.features);

  ReplicaManager replicas(dep);
  replicas.replicate_all();
  ASSERT_TRUE(replicas.ready(0) && replicas.ready(1));

  for (std::uint32_t s = 0; s < 2; ++s) {
    // The replica's sealed package opens ONLY on the standby platform: the
    // primary enclave (same measurement, different fuse key) must fail.
    const SealedBlob& standby_sealed = replicas.sealed_payload(s);
    ASSERT_FALSE(standby_sealed.ciphertext.empty());
    EXPECT_NO_THROW(replicas.replica_enclave(s).unseal(standby_sealed));
    EXPECT_THROW(dep.shard_enclave(s).unseal(standby_sealed), Error);
    // ...and vice versa for the primary's own sealed package.
    EXPECT_THROW(replicas.replica_enclave(s).unseal(dep.sealed_payload(s)), Error);
    // The replicated package round-trips to the exact shard payload.
    const auto bytes = replicas.replica_enclave(s).unseal(standby_sealed);
    const ShardPayload p = deserialize_shard_payload(bytes);
    EXPECT_EQ(p.shard_index, s);
  }
  // Package + label bytes crossed the REPLICATION channels...
  EXPECT_GT(replicas.package_bytes(), 0u);
  EXPECT_GT(replicas.label_bytes(), 0u);
  // ...and still none on the inter-shard inference channels.
  EXPECT_EQ(dep.halo_package_bytes(), 0u);
  EXPECT_EQ(dep.halo_label_bytes(), 0u);
}

TEST(ShardRouter, FailsOverToReplicaWhenShardDies) {
  const Dataset ds = serve_dataset(82);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  const auto truth = dep.infer_labels(ds.features);

  ReplicaManager replicas(dep);
  replicas.replicate_all();
  ShardRouter router(dep, &replicas);

  std::vector<std::uint32_t> nodes = {0, 7, 19, 42, 63, 7};
  EXPECT_EQ(router.route(nodes),
            (std::vector<std::uint32_t>{truth[0], truth[7], truth[19], truth[42],
                                        truth[63], truth[7]}));
  EXPECT_EQ(router.failovers(), 0u);

  const std::uint32_t victim = dep.owner(7);
  dep.kill_shard(victim);
  EXPECT_FALSE(dep.shard_alive(victim));
  // Same query set, same answers — now via the replica.
  EXPECT_EQ(router.route(nodes),
            (std::vector<std::uint32_t>{truth[0], truth[7], truth[19], truth[42],
                                        truth[63], truth[7]}));
  EXPECT_GE(router.failovers(), 1u);
}

TEST(ShardRouter, DeadShardWithoutReplicaThrows) {
  const Dataset ds = serve_dataset(83);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 2));
  dep.refresh(ds.features);
  ShardRouter router(dep, nullptr);
  dep.kill_shard(0);
  const auto& victim_nodes = dep.plan().shards[0].nodes;
  ASSERT_FALSE(victim_nodes.empty());
  EXPECT_THROW(router.route(std::vector<std::uint32_t>{victim_nodes[0]}), Error);
}

TEST(ShardedVaultServer, ServesThroughKillWithMetricsRecordingFailover) {
  const Dataset ds = serve_dataset(84);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);

  ShardedServerConfig scfg;
  scfg.server.max_batch = 8;
  scfg.server.max_wait = std::chrono::microseconds(500);
  scfg.server.cache_capacity = 0;  // every query reaches a shard enclave
  scfg.replicate = true;
  ShardedVaultServer server(ds, tv, plan, {}, scfg);
  const auto truth = ShardedVaultDeployment(ds, tv, plan).infer_labels(ds.features);

  for (std::uint32_t v = 0; v < 20; ++v) {
    EXPECT_EQ(server.query(v), truth[v]) << "node " << v;
  }
  const std::uint32_t victim = server.deployment().owner(3);
  // Waits for replication internally, fences the shard, and promotes the
  // standby to PRIMARY in the background; queries keep being bit-exact
  // throughout (blocked on the fence, never served from a stale store).
  server.kill_shard(victim);
  for (std::uint32_t v = 0; v < 20; ++v) {
    EXPECT_EQ(server.query(v), truth[v]) << "after failover, node " << v;
  }
  wait_for_promotions(server, 1);
  const auto s = server.stats();
  EXPECT_EQ(s.promotions, 1u);
  EXPECT_GT(s.mean_promotion_ms, 0.0);
  EXPECT_EQ(s.requests, 40u);
  EXPECT_GT(s.requests_per_second, 0.0);
  // The promoted PRIMARY is the shard enclave now, and auto-restaff has
  // already provisioned (and replicated) a gen-2 standby in the slot.
  EXPECT_TRUE(server.deployment().shard_alive(victim));
  EXPECT_EQ(server.replicas()->state(victim), ReplicaState::kStandby);
  EXPECT_TRUE(server.replicas()->ready(victim));
  EXPECT_EQ(s.restaffs, 1u);
}

}  // namespace
}  // namespace gv
