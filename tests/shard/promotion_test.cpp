// Replica promotion to PRIMARY: after a shard enclave dies, the standby
// rebuilds from its re-sealed package, re-handshakes with the surviving
// shards, rejoins the halo exchange, and re-materializes its label store
// from the CURRENT feature snapshot — so a failed-over shard never serves
// stale labels, including after a post-kill update_features.  The router
// fences a PROMOTING shard (block or fail fast), and the state machine
// STANDBY -> PROMOTING -> PRIMARY (-> restaffed STANDBY) is pinned here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/deployment.hpp"
#include "data/catalog.hpp"
#include "shard/replica_manager.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_server.hpp"
#include "../serve/serve_test_util.hpp"

namespace gv {
namespace {

TrainedVault quick_vault(const Dataset& ds) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {16, 8}, {16, 8}, 0.4f};
  cfg.backbone_train.epochs = 25;
  cfg.rectifier_train.epochs = 25;
  cfg.seed = 31;
  return train_vault(ds, cfg);
}

CsrMatrix halve_features(const CsrMatrix& features) {
  CsrMatrix mutated = features;
  for (auto& v : mutated.mutable_values()) v *= 0.5f;
  return mutated;
}

ShardedServerConfig replicated_config() {
  ShardedServerConfig cfg;
  cfg.server.max_batch = 8;
  cfg.server.max_wait = std::chrono::microseconds(500);
  cfg.server.cache_capacity = 0;  // every query reaches a shard enclave
  cfg.replicate = true;
  return cfg;
}

// The acceptance gate: kill -> promotion -> labels bit-identical to the
// single-enclave oracle on all six Table-I dataset twins, INCLUDING after a
// post-kill update_features (which the pre-promotion design could not even
// run: refresh requires every shard alive).
TEST(ReplicaPromotion, KillThenUpdateStaysBitExactOnAllSixDatasets) {
  for (const DatasetId id : all_dataset_ids()) {
    const Dataset ds = load_dataset(id, /*seed=*/7, /*scale=*/0.06);
    TrainedVault tv = quick_vault(ds);
    const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
    VaultDeployment single(ds, tv);
    const auto truth = single.infer_labels(ds.features);

    ShardedVaultServer server(ds, tv, plan, {}, replicated_config());
    const std::uint32_t victim = server.deployment().owner(0);
    server.kill_shard(victim);

    const std::uint32_t step = std::max<std::uint32_t>(1, ds.num_nodes() / 40);
    for (std::uint32_t v = 0; v < ds.num_nodes(); v += step) {
      EXPECT_EQ(server.query(v), truth[v])
          << dataset_name(id) << " node " << v << " after promotion";
    }

    // Post-kill feature update: the promoted PRIMARY takes part in the new
    // refresh like any other shard, and labels track the NEW snapshot.
    const CsrMatrix mutated = halve_features(ds.features);
    const auto new_truth = single.infer_labels(mutated);
    server.update_features(mutated);
    for (std::uint32_t v = 0; v < ds.num_nodes(); v += step) {
      EXPECT_EQ(server.query(v), new_truth[v])
          << dataset_name(id) << " node " << v << " after post-kill update";
    }

    const auto s = server.stats();  // update_features joined the promotion
    EXPECT_EQ(s.promotions, 1u) << dataset_name(id);
    EXPECT_GT(s.mean_promotion_ms, 0.0) << dataset_name(id);
    EXPECT_EQ(s.feature_updates, 1u) << dataset_name(id);
  }
}

TEST(ReplicaPromotion, StateMachineAndSealedOwnership) {
  const Dataset ds = serve_dataset(101);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 2));
  const auto truth = dep.infer_labels(ds.features);

  ReplicaManager replicas(dep);
  // Promoting before replication / while the primary is alive both throw.
  EXPECT_THROW(replicas.begin_promotion(0), Error);
  replicas.replicate_all();
  ASSERT_EQ(replicas.state(0), ReplicaState::kStandby);
  EXPECT_THROW(replicas.begin_promotion(0), Error);  // primary still alive

  dep.kill_shard(0);
  replicas.begin_promotion(0);
  EXPECT_EQ(replicas.state(0), ReplicaState::kPromoting);
  EXPECT_THROW(replicas.begin_promotion(0), Error);  // no double fence
  // The fenced standby refuses label reads mid-promotion.
  const auto& owned = dep.plan().shards[0].nodes;
  ASSERT_FALSE(owned.empty());
  EXPECT_THROW(
      replicas.lookup(0, std::vector<std::uint32_t>{owned.front()}), Error);

  const double ms =
      replicas.promote(0, [&] { dep.refresh(ds.features); });
  EXPECT_GT(ms, 0.0);
  EXPECT_EQ(replicas.state(0), ReplicaState::kPrimary);
  EXPECT_TRUE(replicas.await_promotion(0, std::chrono::milliseconds(0)));
  EXPECT_TRUE(dep.shard_alive(0));

  // The promoted PRIMARY serves bit-exact labels through the normal path...
  EXPECT_EQ(dep.infer_labels(ds.features), truth);
  // ...its at-rest package is the blob RE-SEALED under the standby platform
  // key, which now opens inside the (promoted) shard enclave and nowhere
  // else...
  EXPECT_NO_THROW(dep.shard_enclave(0).unseal(dep.sealed_payload(0)));
  EXPECT_THROW(dep.shard_enclave(1).unseal(dep.sealed_payload(0)), Error);
  // ...and the empty replica slot refuses lookups and re-promotion.
  EXPECT_THROW(
      replicas.lookup(0, std::vector<std::uint32_t>{owned.front()}), Error);
  EXPECT_THROW(replicas.promote(0, [] {}), Error);
}

TEST(ReplicaPromotion, RouterFencesPromotingShardAndFailsFastOnTimeout) {
  const Dataset ds = serve_dataset(102);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  const auto truth = dep.infer_labels(ds.features);

  ReplicaManager replicas(dep);
  replicas.replicate_all();
  ShardRouter router(dep, &replicas);

  const std::uint32_t node = 11;
  const std::uint32_t victim = dep.owner(node);
  dep.kill_shard(victim);
  replicas.begin_promotion(victim);

  // Fail-fast policy: a zero fence timeout rejects rather than blocks.
  router.set_fence_timeout(std::chrono::milliseconds(0));
  EXPECT_THROW(router.route(std::vector<std::uint32_t>{node}), Error);

  // Blocking policy: the routed batch waits out the promotion and is served
  // by the new PRIMARY — never by the pre-promotion store.
  router.set_fence_timeout(std::chrono::seconds(30));
  std::vector<std::uint32_t> routed;
  std::atomic<bool> routing{false};
  std::thread client([&] {
    routing.store(true);
    routed = router.route(std::vector<std::uint32_t>{node, 0, 1});
  });
  // Give the client a moment to land on the fence, then promote.  (Even if
  // the client is slow and only checks the state after the flip, the route
  // stays correct — the assertion below would merely see fenced()==0, so
  // wait for the client to at least be inside route().)
  while (!routing.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  replicas.promote(victim, [&] { dep.refresh(ds.features); });
  client.join();
  EXPECT_EQ(routed,
            (std::vector<std::uint32_t>{truth[node], truth[0], truth[1]}));
  EXPECT_GE(router.fenced(), 1u);
  EXPECT_GE(router.failovers(), 1u);
}

// A standby that missed a feature refresh must refuse to serve rather than
// hand out labels from the superseded snapshot.
TEST(ReplicaPromotion, StaleStandbyRefusesToServe) {
  const Dataset ds = serve_dataset(103);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 2));
  dep.refresh(ds.features);

  ReplicaManager replicas(dep);
  replicas.replicate_all();
  ShardRouter router(dep, &replicas);

  // A refresh the replicas never saw (no sync_labels): their stores are one
  // epoch behind.
  dep.refresh(halve_features(ds.features));
  dep.kill_shard(0);
  const auto& owned = dep.plan().shards[0].nodes;
  ASSERT_FALSE(owned.empty());
  EXPECT_THROW(
      replicas.lookup(0, std::vector<std::uint32_t>{owned.front()}), Error);
  EXPECT_THROW(router.route(std::vector<std::uint32_t>{owned.front()}), Error);

  // sync_labels repairs the staleness for live shards; after a re-kill the
  // warm path serves again.  (Shard 0 is dead, so first bring it back via
  // promotion, then verify the epoch-fresh standby of shard 1 serves.)
  replicas.promote(0, [&] { dep.refresh(halve_features(ds.features)); });
  replicas.sync_labels();
  dep.kill_shard(1);
  const auto& owned1 = dep.plan().shards[1].nodes;
  ASSERT_FALSE(owned1.empty());
  EXPECT_NO_THROW(
      replicas.lookup(1, std::vector<std::uint32_t>{owned1.front()}));
}

// A promotion rejected BEFORE adoption (here: a halo neighbor died too)
// must leave the slot a fully functional warm standby — including its
// replicated label store, which the warm-adopt fast path must not have
// consumed on the way in.
TEST(ReplicaPromotion, RejectedAdoptionKeepsWarmStandbyLabels) {
  const Dataset ds = serve_dataset(106);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 2));
  const auto truth = dep.infer_labels(ds.features);

  ReplicaManager replicas(dep);
  replicas.replicate_all();
  dep.kill_shard(0);
  dep.kill_shard(1);  // the halo neighbor: adoption preconditions now fail
  EXPECT_THROW(replicas.promote(0, [] {}), Error);
  EXPECT_EQ(replicas.state(0), ReplicaState::kStandby);
  ASSERT_TRUE(replicas.ready(0));

  // The warm standby still serves its (epoch-fresh) replicated labels.
  const auto& owned = dep.plan().shards[0].nodes;
  ASSERT_FALSE(owned.empty());
  const auto got =
      replicas.lookup(0, std::vector<std::uint32_t>{owned.front()});
  EXPECT_EQ(got, (std::vector<std::uint32_t>{truth[owned.front()]}));
}

// After a promotion the empty replica slot can be restaffed with a fresh
// standby on a new platform, and a SECOND failover of the same shard works.
TEST(ReplicaPromotion, SecondFailoverAfterRestaff) {
  const Dataset ds = serve_dataset(104);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  const auto truth = dep.infer_labels(ds.features);

  ReplicaManager replicas(dep);
  replicas.replicate_all();
  ShardRouter router(dep, &replicas);

  const std::uint32_t node = 7;
  const std::uint32_t victim = dep.owner(node);
  dep.kill_shard(victim);
  replicas.promote(victim, [&] { dep.refresh(ds.features); });
  EXPECT_EQ(router.route(std::vector<std::uint32_t>{node}),
            (std::vector<std::uint32_t>{truth[node]}));

  // Cannot restaff a shard whose replica never promoted; can restaff ours.
  const std::uint32_t other = (victim + 1) % dep.num_shards();
  Sha256 h;
  h.update(std::string("gnnvault-simulated-standby-cpu-fuse-key-gen2"));
  const Sha256Digest gen2_key = h.finish();
  EXPECT_THROW(replicas.restaff(other, gen2_key), Error);
  replicas.restaff(victim, gen2_key);
  EXPECT_EQ(replicas.state(victim), ReplicaState::kStandby);
  EXPECT_FALSE(replicas.ready(victim));
  replicas.replicate_all();
  ASSERT_TRUE(replicas.ready(victim));

  // Second failover: the promoted PRIMARY dies; the gen-2 standby (package
  // re-sealed under the gen-2 platform key) takes over bit-exactly.
  dep.kill_shard(victim);
  ASSERT_FALSE(replicas.sealed_payload(victim).ciphertext.empty());
  EXPECT_NO_THROW(
      replicas.replica_enclave(victim).unseal(replicas.sealed_payload(victim)));
  replicas.promote(victim, [&] { dep.refresh(ds.features); });
  EXPECT_EQ(router.route(std::vector<std::uint32_t>{node}),
            (std::vector<std::uint32_t>{truth[node]}));
  EXPECT_EQ(replicas.state(victim), ReplicaState::kPrimary);
}

// Satellite: update_features racing a failover — labels filed under the NEW
// digest must come from the NEW snapshot (extends the snapshot-pinning
// guard in sharded_server.cpp's execute_batch).
TEST(ReplicaPromotion, UpdateFeaturesRacingFailoverFilesFreshLabels) {
  const Dataset ds = serve_dataset(105);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
  const CsrMatrix mutated = halve_features(ds.features);
  VaultDeployment single(ds, tv);
  const auto old_truth = single.infer_labels(ds.features);
  const auto new_truth = single.infer_labels(mutated);

  ShardedServerConfig cfg;
  cfg.server.max_batch = 1024;
  cfg.server.max_wait = std::chrono::seconds(30);  // only flush() releases
  cfg.server.cache_capacity = 64;
  cfg.replicate = true;
  ShardedVaultServer server(ds, tv, plan, {}, cfg);

  const std::uint32_t victim = server.deployment().owner(5);
  // Warm the cache against the old snapshot, then park a batch mid-queue.
  EXPECT_EQ(server.query(5), old_truth[5]);
  auto parked = server.submit(6);
  server.kill_shard(victim);       // fence + async promotion
  server.update_features(mutated); // joins the promotion, then re-refreshes
  server.flush();
  // The parked batch executed after the swap: it pinned the NEW snapshot,
  // so its labels pair with the NEW digests.
  EXPECT_EQ(parked.get(), new_truth[6]);
  // Cache probes under the new digests see only new-snapshot labels (a
  // stale entry would be a digest mismatch and self-evict).
  EXPECT_EQ(server.query(5), new_truth[5]);
  EXPECT_EQ(server.query(6), new_truth[6]);
  EXPECT_EQ(server.stats().promotions, 1u);
}

}  // namespace
}  // namespace gv
