// Cold cross-shard subset inference: labels for an arbitrary node subset
// computed on demand by walking the L-hop frontier ACROSS shard boundaries
// (halo pulls over the attested channels), with the materialized stores
// acting as a cache rather than the only source of truth.  Pinned here:
//   * bit-exactness vs the single-enclave oracle AND vs the post-refresh
//     stores on all six Table-I dataset twins — fully cold (no refresh
//     ever) and warm (store-served halo pulls);
//   * subsets whose frontier spans >= 3 shards, and queries whose frontier
//     stays inside one shard leave the rest of the fleet untouched;
//   * the router serves un-materialized stores through the cold path
//     (cold-start server) instead of failing;
//   * incremental promotion re-materialization (rematerialize_shard) and a
//     cold query racing a promotion: fence or consistent labels, never
//     stale ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "core/deployment.hpp"
#include "data/catalog.hpp"
#include "shard/replica_manager.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_server.hpp"
#include "shard_test_util.hpp"

namespace gv {
namespace {

TrainedVault quick_vault(const Dataset& ds,
                         RectifierKind kind = RectifierKind::kParallel) {
  VaultTrainConfig cfg;
  cfg.spec = ModelSpec{"T", {16, 8}, {16, 8}, 0.4f};
  cfg.rectifier = kind;
  cfg.backbone_train.epochs = 25;
  cfg.rectifier_train.epochs = 25;
  cfg.seed = 29;
  return train_vault(ds, cfg);
}

/// A query mix with cross-shard spread, a contiguous run, and duplicates.
std::vector<std::uint32_t> mixed_queries(const Dataset& ds) {
  std::vector<std::uint32_t> q;
  const std::uint32_t step = std::max<std::uint32_t>(1, ds.num_nodes() / 23);
  for (std::uint32_t v = 0; v < ds.num_nodes(); v += step) q.push_back(v);
  for (std::uint32_t v = 0; v < std::min<std::uint32_t>(6, ds.num_nodes()); ++v) {
    q.push_back(v);
  }
  q.push_back(q.front());  // duplicate
  return q;
}

TEST(ColdSubset, BitExactOnAllSixDatasetsColdAndWarm) {
  for (const DatasetId id : all_dataset_ids()) {
    const Dataset ds = load_dataset(id, /*seed=*/7, /*scale=*/0.06);
    TrainedVault tv = quick_vault(ds);
    const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
    ShardedVaultDeployment dep(ds, tv, plan);

    const auto q = mixed_queries(ds);
    const auto oracle = tv.predict_rectified_subset(ds.features, q);

    // FULLY COLD: no refresh has ever run — no label stores, no retained
    // boundary activations; the frontier walk recurses across boundaries.
    ColdSubsetStats cold_stats;
    const auto got_cold =
        dep.infer_labels_subset_cold(ds.features, q, &cold_stats);
    EXPECT_EQ(got_cold, oracle) << dataset_name(id) << " (cold-start fleet)";
    EXPECT_FALSE(dep.refreshed());
    EXPECT_GE(cold_stats.shards_computed, 1u);

    // WARM: refresh materializes the stores; the cold path must agree with
    // both the oracle and the stores it is a fallback for.
    const auto truth = dep.infer_labels(ds.features);
    ColdSubsetStats warm_stats;
    const auto got_warm =
        dep.infer_labels_subset_cold(ds.features, q, &warm_stats);
    EXPECT_EQ(got_warm, oracle) << dataset_name(id) << " (warm fleet)";
    for (std::size_t i = 0; i < q.size(); ++i) {
      EXPECT_EQ(got_warm[i], truth[q[i]])
          << dataset_name(id) << " query " << q[i] << " vs materialized store";
    }
    EXPECT_TRUE(warm_stats.backbone_cache_hit) << dataset_name(id);
  }
}

TEST(ColdSubset, WorksForCascadedAndSeriesRectifiers) {
  const Dataset ds = shard_dataset(61);
  for (const RectifierKind kind :
       {RectifierKind::kCascaded, RectifierKind::kSeries}) {
    TrainedVault tv = quick_vault(ds, kind);
    ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
    const auto q = mixed_queries(ds);
    const auto oracle = tv.predict_rectified_subset(ds.features, q);
    EXPECT_EQ(dep.infer_labels_subset_cold(ds.features, q), oracle)
        << rectifier_kind_name(kind) << " cold-start";
    dep.refresh(ds.features);
    EXPECT_EQ(dep.infer_labels_subset_cold(ds.features, q), oracle)
        << rectifier_kind_name(kind) << " warm";
  }
}

TEST(ColdSubset, FrontierSpansThreeShardsAndAuditsStayClean) {
  const Dataset ds = shard_dataset(62);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 4));
  dep.refresh(ds.features);
  const std::uint64_t label_bytes_before = dep.halo_label_bytes();
  const std::uint64_t package_bytes_before = dep.halo_package_bytes();

  // One query node from each of three different shards: at least those
  // three owners compute, so the frontier provably spans >= 3 shards.
  std::vector<std::uint32_t> q;
  for (std::uint32_t s = 0; s < 3; ++s) {
    ASSERT_FALSE(dep.plan().shards[s].nodes.empty());
    q.push_back(dep.plan().shards[s].nodes.front());
  }
  ColdSubsetStats st;
  const auto got = dep.infer_labels_subset_cold(ds.features, q, &st);
  EXPECT_EQ(got, tv.predict_rectified_subset(ds.features, q));
  EXPECT_GE(st.shards_computed, 3u);
  EXPECT_GE(st.shards_touched, st.shards_computed);
  EXPECT_GT(st.halo_embedding_bytes + st.halo_request_bytes, 0u);

  // The cold path moves embeddings and requests ONLY: no labels, no
  // packages ever ride the inter-shard channels.
  EXPECT_EQ(dep.halo_label_bytes(), label_bytes_before);
  EXPECT_EQ(dep.halo_package_bytes(), package_bytes_before);
}

TEST(ColdSubset, InteriorQueryLeavesDisjointShardsUntouched) {
  const Dataset ds = shard_dataset(63);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 4));
  dep.refresh(ds.features);

  // An interior node: its whole (L-1)-hop neighbourhood shares its shard,
  // so the warm frontier never crosses a boundary (halo pulls happen for
  // the input frontiers of layers 1..L-1, whose deepest reach is L-1 hops).
  const CsrMatrix& adj = *tv.real_adj;
  const std::size_t hops = tv.rectifier->config().channels.size() - 1;
  std::uint32_t interior = ds.num_nodes();
  for (std::uint32_t v = 0; v < ds.num_nodes() && interior == ds.num_nodes();
       ++v) {
    const std::uint32_t s = dep.owner(v);
    std::vector<std::uint32_t> ball{v};
    bool inside = true;
    for (std::size_t h = 0; h < hops && inside; ++h) {
      std::vector<std::uint32_t> next;
      for (const auto u : ball) {
        for (std::int64_t i = adj.row_ptr()[u]; i < adj.row_ptr()[u + 1]; ++i) {
          const std::uint32_t w = adj.col_idx()[i];
          inside = inside && dep.owner(w) == s;
          next.push_back(w);
        }
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      ball.swap(next);
    }
    if (inside) interior = v;
  }
  ASSERT_LT(interior, ds.num_nodes()) << "test graph has no interior node";

  ColdSubsetStats st;
  const auto got = dep.infer_labels_subset_cold(
      ds.features, std::vector<std::uint32_t>{interior}, &st);
  EXPECT_EQ(got, tv.predict_rectified_subset(
                     ds.features, std::vector<std::uint32_t>{interior}));
  // Empty-intersection shards are never touched: one owner computes, and
  // with the frontier inside the shard there is nobody to pull from.
  EXPECT_EQ(st.shards_computed, 1u);
  EXPECT_EQ(st.shards_touched, 1u);
  EXPECT_EQ(st.halo_embedding_bytes, 0u);
  EXPECT_EQ(st.halo_request_bytes, 0u);
}

TEST(ColdSubset, RouterServesUnmaterializedStoresThroughColdPath) {
  const Dataset ds = shard_dataset(64);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  ShardRouter router(dep);
  router.set_cold_path([&](std::span<const std::uint32_t> nodes) {
    return dep.infer_labels_subset_cold(ds.features, nodes);
  });

  // No refresh ever ran: a direct lookup refuses, the router goes cold.
  ASSERT_FALSE(dep.store_materialized(0));
  const auto q = mixed_queries(ds);
  EXPECT_EQ(router.route(q), tv.predict_rectified_subset(ds.features, q));
  EXPECT_GE(router.cold_batches(), 1u);

  // After a refresh the stores are materialized and the router goes warm
  // again: the cold counter stops moving.
  dep.refresh(ds.features);
  const std::uint64_t cold_before = router.cold_batches();
  EXPECT_EQ(router.route(q), tv.predict_rectified_subset(ds.features, q));
  EXPECT_EQ(router.cold_batches(), cold_before);
}

TEST(ColdSubset, ColdStartServerServesAndMaterializesOnUpdate) {
  const Dataset ds = shard_dataset(65);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
  const auto oracle = tv.predict_rectified(ds.features);

  ShardedServerConfig cfg;
  cfg.server.max_batch = 8;
  cfg.server.max_wait = std::chrono::microseconds(500);
  cfg.server.cache_capacity = 0;  // every query reaches the router
  cfg.materialize_on_start = false;
  ShardedVaultServer server(ds, tv, plan, {}, cfg);

  const std::uint32_t step = std::max<std::uint32_t>(1, ds.num_nodes() / 29);
  for (std::uint32_t v = 0; v < ds.num_nodes(); v += step) {
    EXPECT_EQ(server.query(v), oracle[v]) << "cold-start node " << v;
  }
  EXPECT_GE(server.stats().cold_batches, 1u);

  // update_features materializes the stores; serving goes warm.
  server.update_features(ds.features);
  const std::uint64_t cold_before = server.stats().cold_batches;
  for (std::uint32_t v = 0; v < ds.num_nodes(); v += step) {
    EXPECT_EQ(server.query(v), oracle[v]) << "post-update node " << v;
  }
  EXPECT_EQ(server.stats().cold_batches, cold_before);
}

// Killing a shard on a COLD-START fleet (no refresh ever ran): promotion
// has no store to re-materialize — the adopted PRIMARY serves demand-driven
// through the cold path like everyone else, and a later update_features
// still materializes the whole fleet.
TEST(ColdSubset, ColdStartServerSurvivesKillAndPromotion) {
  const Dataset ds = shard_dataset(69);
  TrainedVault tv = quick_vault(ds);
  const ShardPlan plan = ShardPlanner::plan(ds, tv, 3);
  const auto oracle = tv.predict_rectified(ds.features);

  ShardedServerConfig cfg;
  cfg.server.max_batch = 8;
  cfg.server.max_wait = std::chrono::microseconds(500);
  cfg.server.cache_capacity = 0;
  cfg.materialize_on_start = false;
  cfg.replicate = true;
  ShardedVaultServer server(ds, tv, plan, {}, cfg);

  const std::uint32_t victim = server.deployment().owner(3);
  server.kill_shard(victim);

  const std::uint32_t step = std::max<std::uint32_t>(1, ds.num_nodes() / 31);
  for (std::uint32_t v = 0; v < ds.num_nodes(); v += step) {
    EXPECT_EQ(server.query(v), oracle[v]) << "post-kill cold node " << v;
  }
  EXPECT_GE(server.stats().cold_batches, 1u);
  EXPECT_EQ(server.stats().promotions, 1u);

  server.update_features(ds.features);  // materializes every store
  for (std::uint32_t v = 0; v < ds.num_nodes(); v += step) {
    EXPECT_EQ(server.query(v), oracle[v]) << "post-update node " << v;
  }
}

TEST(ColdSubset, RematerializeShardRebuildsOneStoreWithoutEpochBump) {
  const Dataset ds = shard_dataset(66);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  const auto truth = dep.infer_labels(ds.features);
  const std::uint64_t epoch = dep.refresh_epoch();

  // Shard-local re-materialization is idempotent on a healthy shard and
  // leaves the refresh epoch alone (the snapshot did not move).
  dep.rematerialize_shard(1, ds.features);
  EXPECT_EQ(dep.refresh_epoch(), epoch);
  const auto& owned = dep.plan().shards[1].nodes;
  ASSERT_FALSE(owned.empty());
  const auto labels = dep.lookup(1, owned);
  for (std::size_t i = 0; i < owned.size(); ++i) {
    EXPECT_EQ(labels[i], truth[owned[i]]) << "node " << owned[i];
  }

  // The fingerprint guard: a different snapshot must go through refresh().
  CsrMatrix mutated = ds.features;
  for (auto& v : mutated.mutable_values()) v *= 0.5f;
  EXPECT_THROW(dep.rematerialize_shard(1, mutated), Error);
}

TEST(ColdSubset, StalePromotionUsesShardLocalForwardBitExactly) {
  const Dataset ds = shard_dataset(67);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  const auto truth = dep.infer_labels(ds.features);

  ReplicaManager replicas(dep);
  replicas.replicate_all();
  ShardRouter router(dep, &replicas);

  // A refresh the standbys never see: promote() cannot warm-adopt and must
  // run the shard-local re-materialization callback.
  dep.refresh(ds.features);
  const std::uint64_t epoch = dep.refresh_epoch();
  const std::uint32_t victim = 0;
  dep.kill_shard(victim);
  bool callback_ran = false;
  replicas.promote(victim, [&] {
    callback_ran = true;
    dep.rematerialize_shard(victim, ds.features);
  });
  EXPECT_TRUE(callback_ran);
  EXPECT_EQ(dep.refresh_epoch(), epoch);  // no fleet-wide refresh

  const auto q = mixed_queries(ds);
  const auto got = router.route(q);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(got[i], truth[q[i]]) << "node " << q[i] << " after promotion";
  }
}

// A cold query racing a promotion must fence (or fail) and then serve
// labels consistent with the current snapshot — never a stale or partially
// re-materialized store.
TEST(ColdSubset, ColdQueryRacingPromotionServesConsistentLabels) {
  const Dataset ds = shard_dataset(68);
  TrainedVault tv = quick_vault(ds);
  ShardedVaultDeployment dep(ds, tv, ShardPlanner::plan(ds, tv, 3));
  const auto truth = dep.infer_labels(ds.features);

  ReplicaManager replicas(dep);
  replicas.replicate_all();
  ShardRouter router(dep, &replicas);
  router.set_cold_path([&](std::span<const std::uint32_t> nodes) {
    return dep.infer_labels_subset_cold(ds.features, nodes);
  });
  router.set_fence_timeout(std::chrono::seconds(30));

  dep.refresh(ds.features);  // stale-ify: force the shard-local path
  const std::uint32_t victim = 0;
  dep.kill_shard(victim);
  replicas.begin_promotion(victim);

  const auto q = mixed_queries(ds);  // spans the victim and the survivors
  std::atomic<bool> racing{false};
  std::vector<std::uint32_t> routed;
  std::thread client([&] {
    racing.store(true);
    routed = router.route(q);  // fences on the PROMOTING victim
  });
  while (!racing.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Direct cold queries against a surviving shard while the promotion is
  // in flight: either a clean failure (dead frontier shard) or labels that
  // match the current snapshot — never stale ones.
  const auto& survivors = dep.plan().shards[1].nodes;
  ASSERT_FALSE(survivors.empty());
  std::vector<std::uint32_t> probe(survivors.begin(),
                                   survivors.begin() +
                                       std::min<std::size_t>(8, survivors.size()));
  for (int attempt = 0; attempt < 3; ++attempt) {
    try {
      const auto got = dep.infer_labels_subset_cold(ds.features, probe);
      for (std::size_t i = 0; i < probe.size(); ++i) {
        EXPECT_EQ(got[i], truth[probe[i]]) << "racing cold query, node "
                                           << probe[i];
      }
    } catch (const Error&) {
      // The probe's frontier reached the dead shard before adoption — the
      // allowed outcome; the router covers retry-after-fence.
    }
  }

  replicas.promote(victim,
                   [&] { dep.rematerialize_shard(victim, ds.features); });
  client.join();
  ASSERT_EQ(routed.size(), q.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(routed[i], truth[q[i]]) << "fenced route, node " << q[i];
  }
  EXPECT_GE(router.fenced(), 1u);
}

}  // namespace
}  // namespace gv
