#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/stats.hpp"
#include "tensor/ops.hpp"

namespace gv {
namespace {

SyntheticSpec small_spec() {
  SyntheticSpec s;
  s.name = "test";
  s.num_nodes = 500;
  s.num_classes = 5;
  s.num_undirected_edges = 1500;
  s.feature_dim = 200;
  s.homophily = 0.8;
  s.features_per_node = 20;
  return s;
}

TEST(Synthetic, MatchesRequestedCounts) {
  const Dataset ds = generate_synthetic(small_spec(), 1);
  EXPECT_EQ(ds.num_nodes(), 500u);
  EXPECT_EQ(ds.graph.num_edges(), 1500u);
  EXPECT_EQ(ds.feature_dim(), 200u);
  EXPECT_EQ(ds.num_classes, 5u);
}

TEST(Synthetic, HomophilyNearTarget) {
  const Dataset ds = generate_synthetic(small_spec(), 2);
  const double h = ds.graph.edge_homophily(ds.labels);
  EXPECT_NEAR(h, 0.8, 0.05);
}

TEST(Synthetic, LowHomophilySpecRespected) {
  auto spec = small_spec();
  spec.homophily = 0.3;
  const Dataset ds = generate_synthetic(spec, 3);
  EXPECT_NEAR(ds.graph.edge_homophily(ds.labels), 0.3, 0.06);
}

TEST(Synthetic, BalancedClasses) {
  const Dataset ds = generate_synthetic(small_spec(), 4);
  const auto ls = compute_label_stats(ds.graph, ds.labels, ds.num_classes);
  for (const auto c : ls.class_counts) EXPECT_EQ(c, 100u);
}

TEST(Synthetic, DeterministicGivenSeed) {
  const Dataset a = generate_synthetic(small_spec(), 42);
  const Dataset b = generate_synthetic(small_spec(), 42);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.features.nnz(), b.features.nnz());
  EXPECT_EQ(a.split.train, b.split.train);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const Dataset a = generate_synthetic(small_spec(), 1);
  const Dataset b = generate_synthetic(small_spec(), 2);
  EXPECT_NE(a.graph.edges(), b.graph.edges());
}

TEST(Synthetic, FeatureSparsityNearTarget) {
  const Dataset ds = generate_synthetic(small_spec(), 5);
  const double avg_nnz =
      static_cast<double>(ds.features.nnz()) / ds.num_nodes();
  EXPECT_NEAR(avg_nnz, 20.0, 4.0);
}

TEST(Synthetic, EveryNodeHasFeatures) {
  const Dataset ds = generate_synthetic(small_spec(), 6);
  for (std::size_t r = 0; r < ds.num_nodes(); ++r) {
    EXPECT_GE(ds.features.row_nnz(r), 3u) << "node " << r;
  }
}

TEST(Synthetic, DegreeDistributionIsSkewed) {
  auto spec = small_spec();
  spec.degree_alpha = 1.8;
  const Dataset ds = generate_synthetic(spec, 7);
  const auto stats = compute_stats(ds.graph);
  EXPECT_GT(stats.degree_gini, 0.15);  // heavier than uniform
  EXPECT_GT(stats.max_degree, 3 * static_cast<std::uint32_t>(stats.avg_degree));
}

TEST(Synthetic, SplitFollowsTrainPerClass) {
  const Dataset ds = generate_synthetic(small_spec(), 8);
  EXPECT_EQ(ds.split.train.size(), 5u * 20u);
  EXPECT_EQ(ds.split.test.size(), 500u - 100u);
}

TEST(Synthetic, ValidatesInternally) {
  const Dataset ds = generate_synthetic(small_spec(), 9);
  EXPECT_NO_THROW(ds.validate());
}

TEST(Synthetic, RejectsDegenerateSpecs) {
  auto spec = small_spec();
  spec.num_classes = 1;
  EXPECT_THROW(generate_synthetic(spec, 1), Error);
  spec = small_spec();
  spec.num_nodes = 5;  // < 2 per class
  EXPECT_THROW(generate_synthetic(spec, 1), Error);
  spec = small_spec();
  spec.homophily = 1.5;
  EXPECT_THROW(generate_synthetic(spec, 1), Error);
}

TEST(Synthetic, FeaturesPredictClasses) {
  // Class-conditional features must make same-class rows more similar;
  // this is the property the KNN substitute graph exploits.
  const Dataset ds = generate_synthetic(small_spec(), 10);
  const Matrix dense = ds.dense_features();
  double same = 0.0, diff = 0.0;
  std::size_t n_same = 0, n_diff = 0;
  Rng rng(11);
  for (int t = 0; t < 4000; ++t) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes()));
    const auto b = static_cast<std::uint32_t>(rng.uniform_index(ds.num_nodes()));
    if (a == b) continue;
    const float cs = row_cosine(dense, a, b);
    if (ds.labels[a] == ds.labels[b]) {
      same += cs;
      ++n_same;
    } else {
      diff += cs;
      ++n_diff;
    }
  }
  EXPECT_GT(same / n_same, diff / n_diff + 0.05);
}

TEST(ScaledSpec, ShrinksButKeepsClassFloor) {
  auto spec = small_spec();
  const auto s = scaled_spec(spec, 0.1);
  EXPECT_LT(s.num_nodes, spec.num_nodes);
  EXPECT_GE(s.num_nodes, spec.num_classes * 40u);
  EXPECT_GE(s.feature_dim, 64u);
}

TEST(ScaledSpec, RejectsBadFactor) {
  EXPECT_THROW(scaled_spec(small_spec(), 0.0), Error);
  EXPECT_THROW(scaled_spec(small_spec(), 1.5), Error);
}

}  // namespace
}  // namespace gv
