#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace gv {
namespace {

Dataset tiny_dataset() {
  Dataset ds;
  ds.name = "tiny";
  ds.graph = Graph(6);
  ds.graph.add_edge(0, 1);
  ds.graph.add_edge(2, 3);
  ds.graph.add_edge(4, 5);
  ds.features = CsrMatrix::from_coo(6, 4, {{0, 0, 1}, {1, 1, 1}, {2, 2, 1},
                                           {3, 3, 1}, {4, 0, 1}, {5, 1, 1}});
  ds.labels = {0, 0, 1, 1, 0, 1};
  ds.num_classes = 2;
  ds.split.train = {0, 2};
  ds.split.test = {1, 3, 4, 5};
  return ds;
}

TEST(Dataset, ValidatePassesOnConsistentData) {
  EXPECT_NO_THROW(tiny_dataset().validate());
}

TEST(Dataset, ValidateCatchesFeatureRowMismatch) {
  auto ds = tiny_dataset();
  ds.features = CsrMatrix::from_coo(5, 4, {});
  EXPECT_THROW(ds.validate(), Error);
}

TEST(Dataset, ValidateCatchesLabelOutOfRange) {
  auto ds = tiny_dataset();
  ds.labels[2] = 9;
  EXPECT_THROW(ds.validate(), Error);
}

TEST(Dataset, ValidateCatchesSplitOverlap) {
  auto ds = tiny_dataset();
  ds.split.test.push_back(0);  // 0 is in train
  EXPECT_THROW(ds.validate(), Error);
}

TEST(Dataset, ValidateCatchesSplitOutOfRange) {
  auto ds = tiny_dataset();
  ds.split.test.push_back(17);
  EXPECT_THROW(ds.validate(), Error);
}

TEST(Split, TwentyPerClassConvention) {
  std::vector<std::uint32_t> labels(300);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 3;
  Rng rng(1);
  const Split s = make_semi_supervised_split(labels, 3, 20, rng);
  EXPECT_EQ(s.train.size(), 60u);
  EXPECT_EQ(s.test.size(), 240u);
  // Exactly 20 per class.
  std::vector<int> per_class(3, 0);
  for (const auto v : s.train) per_class[labels[v]] += 1;
  for (const auto c : per_class) EXPECT_EQ(c, 20);
}

TEST(Split, HandlesClassSmallerThanQuota) {
  std::vector<std::uint32_t> labels = {0, 0, 0, 1};  // class 1 has one node
  Rng rng(2);
  const Split s = make_semi_supervised_split(labels, 2, 2, rng);
  std::vector<int> per_class(2, 0);
  for (const auto v : s.train) per_class[labels[v]] += 1;
  EXPECT_EQ(per_class[0], 2);
  EXPECT_EQ(per_class[1], 1);
}

TEST(Split, TrainAndTestPartitionAllNodes) {
  std::vector<std::uint32_t> labels(100);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 5;
  Rng rng(3);
  const Split s = make_semi_supervised_split(labels, 5, 4, rng);
  EXPECT_EQ(s.train.size() + s.test.size(), 100u);
  std::vector<std::uint32_t> all;
  all.insert(all.end(), s.train.begin(), s.train.end());
  all.insert(all.end(), s.test.begin(), s.test.end());
  std::sort(all.begin(), all.end());
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(all[i], i);
}

TEST(Split, DeterministicGivenSeed) {
  std::vector<std::uint32_t> labels(60);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 2;
  Rng a(7), b(7);
  const Split s1 = make_semi_supervised_split(labels, 2, 10, a);
  const Split s2 = make_semi_supervised_split(labels, 2, 10, b);
  EXPECT_EQ(s1.train, s2.train);
}

TEST(Accuracy, PerfectAndWorst) {
  const std::vector<std::uint32_t> labels = {0, 1, 2};
  const std::vector<std::uint32_t> nodes = {0, 1, 2};
  EXPECT_DOUBLE_EQ(accuracy_on({0, 1, 2}, labels, nodes), 1.0);
  EXPECT_DOUBLE_EQ(accuracy_on({1, 2, 0}, labels, nodes), 0.0);
}

TEST(Accuracy, SubsetOnly) {
  const std::vector<std::uint32_t> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(accuracy_on({0, 0, 0, 0}, labels, {0, 1}), 0.5);
}

TEST(Accuracy, EmptySetThrows) {
  EXPECT_THROW(accuracy_on({0}, {0}, {}), Error);
}

}  // namespace
}  // namespace gv
