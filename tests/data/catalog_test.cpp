#include "data/catalog.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gv {
namespace {

TEST(Catalog, SixDatasetsInTableOrder) {
  const auto& ids = all_dataset_ids();
  ASSERT_EQ(ids.size(), 6u);
  EXPECT_EQ(dataset_name(ids[0]), "Cora");
  EXPECT_EQ(dataset_name(ids[5]), "CoraFull");
}

TEST(Catalog, SpecsMatchTableOne) {
  // Node / directed-edge / feature / class counts from the paper's Table I.
  struct Expect {
    DatasetId id;
    std::uint32_t nodes, feats, classes;
    std::size_t directed_edges;
  };
  const Expect expect[] = {
      {DatasetId::kCora, 2708, 1433, 7, 10556},
      {DatasetId::kCiteseer, 3327, 3703, 6, 9104},
      {DatasetId::kPubmed, 19717, 500, 3, 88648},
      {DatasetId::kComputer, 13752, 767, 10, 491722},
      {DatasetId::kPhoto, 7650, 745, 8, 238162},
      {DatasetId::kCoraFull, 19793, 8710, 70, 126842},
  };
  for (const auto& e : expect) {
    const auto spec = dataset_spec(e.id);
    EXPECT_EQ(spec.num_nodes, e.nodes) << dataset_name(e.id);
    EXPECT_EQ(spec.feature_dim, e.feats) << dataset_name(e.id);
    EXPECT_EQ(spec.num_classes, e.classes) << dataset_name(e.id);
    EXPECT_EQ(spec.num_undirected_edges * 2, e.directed_edges) << dataset_name(e.id);
  }
}

TEST(Catalog, ScaledLoadIsSmallerButValid) {
  const Dataset ds = load_dataset(DatasetId::kCora, 42, 0.15);
  EXPECT_LT(ds.num_nodes(), 2708u);
  EXPECT_NO_THROW(ds.validate());
  EXPECT_EQ(ds.num_classes, 7u);
  EXPECT_EQ(ds.name, "Cora");
}

TEST(Catalog, FullScaleCoraMatchesCounts) {
  const Dataset ds = load_dataset(DatasetId::kCora, 42, 1.0);
  EXPECT_EQ(ds.num_nodes(), 2708u);
  EXPECT_EQ(ds.graph.num_directed_edges(), 10556u);
  EXPECT_EQ(ds.feature_dim(), 1433u);
}

TEST(Catalog, DifferentDatasetsGetDifferentSeeds) {
  const Dataset cora = load_dataset(DatasetId::kCora, 42, 0.15);
  const Dataset cite = load_dataset(DatasetId::kCiteseer, 42, 0.12);
  EXPECT_NE(cora.graph.num_edges(), cite.graph.num_edges());
}

TEST(Catalog, TableOneRowDenseAdjacencyScale) {
  const Dataset ds = load_dataset(DatasetId::kCora, 42, 1.0);
  const auto row = table_one_row(ds);
  EXPECT_EQ(row.nodes, 2708u);
  // float64 dense adjacency ~56 MB; already approaching the 96 MB EPC for
  // the SMALLEST dataset — the Table I memory argument.
  EXPECT_NEAR(row.dense_adj_mb, 55.9, 0.5);
}

}  // namespace
}  // namespace gv
